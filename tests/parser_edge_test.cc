// Additional SAX parser edge cases: byte order marks, file input,
// DOCTYPE/PI corners, and positional bookkeeping under chunking.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "xml/events.h"
#include "xml/sax_parser.h"

namespace xsq::xml {
namespace {

std::vector<Event> ParseOk(std::string_view text) {
  RecordingHandler handler;
  SaxParser parser(&handler);
  Status status = parser.Parse(text);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return handler.element_events();
}

TEST(ParserEdgeTest, Utf8BomIsSkipped) {
  auto events = ParseOk("\xef\xbb\xbf<a>x</a>");
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].tag, "a");
}

TEST(ParserEdgeTest, BomSplitAcrossChunks) {
  RecordingHandler handler;
  SaxParser parser(&handler);
  ASSERT_TRUE(parser.Feed("\xef").ok());
  ASSERT_TRUE(parser.Feed("\xbb").ok());
  ASSERT_TRUE(parser.Feed("\xbf<a/>").ok());
  ASSERT_TRUE(parser.Finish().ok());
  ASSERT_EQ(handler.element_events().size(), 2u);
}

TEST(ParserEdgeTest, BomOnlyDocumentIsStillEmpty) {
  RecordingHandler handler;
  SaxParser parser(&handler);
  ASSERT_TRUE(parser.Feed("\xef\xbb\xbf").ok());
  EXPECT_FALSE(parser.Finish().ok());  // no root element
}

TEST(ParserEdgeTest, NonBomLeadingEfByteIsAnError) {
  RecordingHandler handler;
  SaxParser parser(&handler);
  Status status = parser.Parse("\xef\x01\x02<a/>");
  EXPECT_FALSE(status.ok());
}

TEST(ParserEdgeTest, ParseFileReadsInChunks) {
  const char* path = "xsq_parse_file_test.xml";
  {
    std::ofstream out(path, std::ios::binary);
    out << "<r>";
    for (int i = 0; i < 50000; ++i) out << "<e>" << i << "</e>";
    out << "</r>";
  }
  RecordingHandler handler;
  Status status = ParseFile(path, &handler);
  std::remove(path);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(handler.element_events().size(), 2u + 3u * 50000u);
}

TEST(ParserEdgeTest, ParseFileMissingFile) {
  RecordingHandler handler;
  Status status = ParseFile("definitely/not/here.xml", &handler);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

// --- entity-reference diagnostics (regression) ---
// The decoder used to answer "unterminated entity reference" whenever
// the ';' was more than 12 bytes away — even when it was present.

std::string ParseError(std::string_view text) {
  RecordingHandler handler;
  SaxParser parser(&handler);
  Status status = parser.Parse(text);
  EXPECT_FALSE(status.ok()) << "expected a parse error";
  return status.ToString();
}

TEST(ParserEdgeTest, LongTerminatedEntityIsTooLongNotUnterminated) {
  std::string doc = "<a>&" + std::string(80, 'x') + ";</a>";
  std::string message = ParseError(doc);
  EXPECT_NE(message.find("entity reference too long"), std::string::npos)
      << message;
  EXPECT_EQ(message.find("unterminated"), std::string::npos) << message;
}

TEST(ParserEdgeTest, MissingSemicolonIsUnterminated) {
  std::string message = ParseError("<a>&amp oops</a>");
  EXPECT_NE(message.find("unterminated entity reference"), std::string::npos)
      << message;
}

TEST(ParserEdgeTest, EmptyCharacterReferenceHasPreciseMessage) {
  for (const char* doc : {"<a>&#;</a>", "<a>&#x;</a>", "<a>&#X;</a>"}) {
    std::string message = ParseError(doc);
    EXPECT_NE(message.find("empty character reference"), std::string::npos)
        << doc << " -> " << message;
  }
}

TEST(ParserEdgeTest, ZeroPaddedCharacterReferenceDecodes) {
  // Valid but longer than the old 12-byte window: must decode, not error.
  auto events = ParseOk("<a>&#0000000000000065;</a>");
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[1].text, "A");
}

TEST(ParserEdgeTest, LongHexCharacterReferenceDecodes) {
  auto events = ParseOk("<a>&#x00000000000000042;</a>");
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[1].text, "B");
}

TEST(ParserEdgeTest, PiBetweenTextKeepsRunTogether) {
  auto events = ParseOk("<a>x<?pi data?>y</a>");
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[1].text, "xy");
}

TEST(ParserEdgeTest, DoctypeQuotedBracketDoesNotConfuseSubset) {
  auto events = ParseOk(
      "<!DOCTYPE a [ <!ENTITY weird \"]>\"> ]><a/>");
  ASSERT_EQ(events.size(), 2u);
}

TEST(ParserEdgeTest, CommentBeforeAndAfterRoot) {
  auto events = ParseOk("<!-- pre --><a/><!-- post -->");
  ASSERT_EQ(events.size(), 2u);
}

TEST(ParserEdgeTest, WhitespaceAfterRootOk) {
  auto events = ParseOk("<a/>\n\n  \t");
  ASSERT_EQ(events.size(), 2u);
}

TEST(ParserEdgeTest, SelfClosingWithAttributes) {
  auto events = ParseOk("<a><b x=\"1\" y=\"2\"/></a>");
  ASSERT_GE(events.size(), 2u);
  ASSERT_EQ(events[1].attributes.size(), 2u);
}

TEST(ParserEdgeTest, TagSpanningManyChunks) {
  RecordingHandler handler;
  SaxParser parser(&handler);
  const std::string doc = "<element attribute=\"value with spaces\">text"
                          "</element>";
  for (size_t i = 0; i < doc.size(); i += 3) {
    ASSERT_TRUE(parser.Feed(std::string_view(doc).substr(i, 3)).ok());
  }
  ASSERT_TRUE(parser.Finish().ok());
  std::vector<Event> events = handler.element_events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].attributes[0].value, "value with spaces");
}

TEST(ParserEdgeTest, BytesConsumedCountsBom) {
  RecordingHandler handler;
  SaxParser parser(&handler);
  ASSERT_TRUE(parser.Parse("\xef\xbb\xbf<a/>").ok());
  EXPECT_EQ(parser.bytes_consumed(), 7u);
}

// --- comment/CDATA well-formedness (regression) ---
// The parser used to accept "--" inside comments and a bare "]]>" in
// character data, both forbidden by XML 1.0 (§2.5, §2.4).

TEST(ParserEdgeTest, DoubleHyphenInCommentRejected) {
  std::string message = ParseError("<a><!-- x -- y --></a>");
  EXPECT_NE(message.find("'--' is not allowed within a comment"),
            std::string::npos)
      << message;
  // The position points at the "--" itself, not at the comment start.
  EXPECT_NE(message.find("line 1, column 11"), std::string::npos) << message;
}

TEST(ParserEdgeTest, CommentEndingInHyphenRejected) {
  std::string message = ParseError("<a><!--a---></a>");
  EXPECT_NE(message.find("comment content may not end with '-'"),
            std::string::npos)
      << message;
}

TEST(ParserEdgeTest, SingleHyphensInCommentStillFine) {
  auto events = ParseOk("<a><!-- a - b - c --></a>");
  ASSERT_EQ(events.size(), 2u);
}

TEST(ParserEdgeTest, BareCdataCloseInTextRejected) {
  std::string message = ParseError("<a>x]]>y</a>");
  EXPECT_NE(message.find("']]>' is not allowed in character data"),
            std::string::npos)
      << message;
}

TEST(ParserEdgeTest, CdataCloseSplitAcrossChunksStillRejected) {
  RecordingHandler handler;
  SaxParser parser(&handler);
  ASSERT_TRUE(parser.Feed("<a>x]").ok());
  ASSERT_TRUE(parser.Feed("]").ok());
  Status status = parser.Feed(">y</a>");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("']]>' is not allowed in character data"),
            std::string::npos)
      << status.ToString();
}

TEST(ParserEdgeTest, LoneAndDoubleBracketsInTextAreFine) {
  auto events = ParseOk("<a>x ] y ]] z</a>");
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[1].text, "x ] y ]] z");
}

// --- retained-markup budget (regression) ---
// Only DOCTYPE used to be capped; an unterminated comment, CDATA
// section, PI or tag fed chunk-wise grew pending_ without bound.

TEST(ParserEdgeTest, UnterminatedMarkupTripsRetainedBudget) {
  for (const char* opener :
       {"<a><!-- never closed ", "<a><![CDATA[ never closed ",
        "<a><?pi never closed ", "<a><b attr=\"never closed "}) {
    RecordingHandler handler;
    ParserLimits limits;
    limits.max_retained_markup = 4096;
    SaxParser parser(&handler, limits);
    ASSERT_TRUE(parser.Feed(opener).ok()) << opener;
    Status status = Status::OK();
    const std::string chunk(512, 'x');
    for (int i = 0; i < 64 && status.ok(); ++i) status = parser.Feed(chunk);
    ASSERT_FALSE(status.ok()) << opener << ": budget never tripped";
    EXPECT_EQ(status.code(), StatusCode::kLimitExceeded) << opener;
    EXPECT_NE(status.ToString().find("retained budget"), std::string::npos)
        << opener << " -> " << status.ToString();
  }
}

TEST(ParserEdgeTest, LargeCdataUnderBudgetStillParses) {
  RecordingHandler handler;
  ParserLimits limits;
  limits.max_retained_markup = 1u << 20;
  SaxParser parser(&handler, limits);
  std::string body(100000, 'x');
  std::string doc = "<a><![CDATA[" + body + "]]></a>";
  for (size_t i = 0; i < doc.size(); i += 512) {
    ASSERT_TRUE(parser.Feed(std::string_view(doc).substr(i, 512)).ok());
  }
  ASSERT_TRUE(parser.Finish().ok());
  std::vector<Event> events = handler.element_events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[1].text, body);
}

// --- columns count code points (regression) ---
// Error columns used to advance one per *byte*, so any multi-byte
// UTF-8 character before the error skewed every position after it.

TEST(ParserEdgeTest, ErrorColumnCountsCodepointsNotBytes) {
  // "αβγ" is 3 code points in 6 bytes; the "]]>"  sits at column 7
  // (after "<a>" and three characters), not at byte offset 10.
  std::string message = ParseError("<a>\xce\xb1\xce\xb2\xce\xb3]]>x</a>");
  EXPECT_NE(message.find("line 1, column 7"), std::string::npos) << message;
}

TEST(ParserEdgeTest, ErrorColumnCodepointsAfterNewline) {
  // Two 2-byte "é" on line 2 put the error at column 3, not 5.
  std::string message = ParseError("<a>\n\xc3\xa9\xc3\xa9]]></a>");
  EXPECT_NE(message.find("line 2, column 3"), std::string::npos) << message;
}

TEST(ParserEdgeTest, ColumnAccessorCountsCodepoints) {
  RecordingHandler handler;
  SaxParser parser(&handler);
  // "<a>é</a>" is 9 bytes but 8 code points: the cursor lands on 9.
  ASSERT_TRUE(parser.Parse("<a>\xc3\xa9</a>").ok());
  EXPECT_EQ(parser.line(), 1);
  EXPECT_EQ(parser.column(), 9);
  EXPECT_EQ(parser.bytes_consumed(), 9u);
}

TEST(ParserEdgeTest, DepthAccessorDuringStreaming) {
  class DepthProbe : public SaxHandler {
   public:
    explicit DepthProbe(SaxParser** parser) : parser_(parser) {}
    void OnBegin(std::string_view, const std::vector<Attribute>&,
                 int depth) override {
      EXPECT_EQ((*parser_)->depth(), depth);
    }
    void OnEnd(std::string_view, int) override {}
    void OnText(std::string_view, std::string_view, int) override {}

   private:
    SaxParser** parser_;
  };
  SaxParser* handle = nullptr;
  DepthProbe probe(&handle);
  SaxParser parser(&probe);
  handle = &parser;
  ASSERT_TRUE(parser.Parse("<a><b><c/></b></a>").ok());
}

}  // namespace
}  // namespace xsq::xml
