// The OnDoctype callback bridges the parser and the DTD module: a
// document that carries its schema in the internal subset can be
// validated or analyzed without any out-of-band configuration.
#include <gtest/gtest.h>

#include <optional>

#include "dtd/dtd.h"
#include "dtd/optimizer.h"
#include "dtd/validator.h"
#include "xml/events.h"
#include "xml/sax_parser.h"
#include "xpath/ast.h"

namespace xsq {
namespace {

class DoctypeCapture : public xml::RecordingHandler {
 public:
  void OnDoctype(std::string_view name,
                 std::string_view internal_subset) override {
    doctype_name = std::string(name);
    subset = std::string(internal_subset);
  }

  std::string doctype_name;
  std::string subset;
};

constexpr const char* kDocWithDtd = R"(<?xml version="1.0"?>
<!DOCTYPE lib [
  <!ELEMENT lib (book*)>
  <!ELEMENT book (title)>
  <!ATTLIST book id CDATA #REQUIRED>
  <!ELEMENT title (#PCDATA)>
]>
<lib><book id="1"><title>T</title></book></lib>)";

TEST(DoctypeTest, ReportsNameAndInternalSubset) {
  DoctypeCapture handler;
  xml::SaxParser parser(&handler);
  ASSERT_TRUE(parser.Parse(kDocWithDtd).ok());
  EXPECT_EQ(handler.doctype_name, "lib");
  EXPECT_NE(handler.subset.find("<!ELEMENT book (title)>"),
            std::string::npos);
  // Events still flow normally after the DOCTYPE.
  std::vector<xml::Event> events = handler.element_events();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events[0].tag, "lib");
}

TEST(DoctypeTest, DoctypeWithoutSubset) {
  DoctypeCapture handler;
  xml::SaxParser parser(&handler);
  ASSERT_TRUE(parser.Parse("<!DOCTYPE a SYSTEM \"a.dtd\"><a/>").ok());
  EXPECT_EQ(handler.doctype_name, "a");
  EXPECT_TRUE(handler.subset.empty());
}

TEST(DoctypeTest, CapturedSubsetParsesAsDtd) {
  DoctypeCapture handler;
  xml::SaxParser parser(&handler);
  ASSERT_TRUE(parser.Parse(kDocWithDtd).ok());
  Result<dtd::Dtd> dtd = dtd::Dtd::Parse(handler.subset);
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  EXPECT_EQ(dtd->element_count(), 3u);
  EXPECT_FALSE(dtd->IsRecursive());
}

TEST(DoctypeTest, EndToEndSelfDescribingDocument) {
  // Capture the schema from the document itself, then validate the
  // same document against it and optimize a query with it.
  DoctypeCapture handler;
  xml::SaxParser parser(&handler);
  ASSERT_TRUE(parser.Parse(kDocWithDtd).ok());
  Result<dtd::Dtd> dtd = dtd::Dtd::Parse(handler.subset);
  ASSERT_TRUE(dtd.ok());

  EXPECT_TRUE(
      dtd::ValidateDocument(*dtd, kDocWithDtd, handler.doctype_name).ok());

  Result<xpath::Query> query = xpath::ParseQuery("//title/text()");
  ASSERT_TRUE(query.ok());
  Result<dtd::QueryAnalysis> analysis =
      dtd::AnalyzeQuery(*dtd, handler.doctype_name, *query);
  ASSERT_TRUE(analysis.ok());
  ASSERT_TRUE(analysis->closure_free_rewrite.has_value());
  EXPECT_EQ(analysis->closure_free_rewrite->ToString(),
            "/lib/book/title/text()");
}

TEST(DoctypeTest, ChunkedDoctypeStillReported) {
  DoctypeCapture handler;
  xml::SaxParser parser(&handler);
  const std::string doc = kDocWithDtd;
  for (char c : doc) {
    ASSERT_TRUE(parser.Feed(std::string_view(&c, 1)).ok());
  }
  ASSERT_TRUE(parser.Finish().ok());
  EXPECT_EQ(handler.doctype_name, "lib");
  EXPECT_FALSE(handler.subset.empty());
}

}  // namespace
}  // namespace xsq
