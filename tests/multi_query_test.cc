#include "core/multi_query.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "xml/sax_parser.h"

namespace xsq::core {
namespace {

constexpr const char* kDoc =
    "<lib>"
    "<book id=\"1\"><title>Streams</title><price>10</price></book>"
    "<book id=\"2\"><title>Trees</title><price>30</price></book>"
    "<cd><title>Tunes</title></cd>"
    "</lib>";

TEST(MultiQueryTest, IndependentResultsPerQuery) {
  MultiQueryEngine multi;
  CollectingSink titles;
  CollectingSink cheap;
  CollectingSink count;
  ASSERT_TRUE(multi.AddQuery("//title/text()", &titles).ok());
  ASSERT_TRUE(multi.AddQuery("/lib/book[price<20]/title/text()", &cheap).ok());
  ASSERT_TRUE(multi.AddQuery("//book/count()", &count).ok());
  EXPECT_EQ(multi.query_count(), 3u);

  xml::SaxParser parser(&multi);
  ASSERT_TRUE(parser.Parse(kDoc).ok());
  ASSERT_TRUE(multi.status().ok());

  EXPECT_EQ(titles.items,
            (std::vector<std::string>{"Streams", "Trees", "Tunes"}));
  EXPECT_EQ(cheap.items, std::vector<std::string>{"Streams"});
  ASSERT_TRUE(count.aggregate.has_value());
  EXPECT_DOUBLE_EQ(*count.aggregate, 2.0);
}

TEST(MultiQueryTest, BadQueryIsRejectedWithoutPoisoningOthers) {
  MultiQueryEngine multi;
  CollectingSink sink;
  EXPECT_FALSE(multi.AddQuery("not a query", &sink).ok());
  ASSERT_TRUE(multi.AddQuery("//title/text()", &sink).ok());
  EXPECT_EQ(multi.query_count(), 1u);
  xml::SaxParser parser(&multi);
  ASSERT_TRUE(parser.Parse(kDoc).ok());
  EXPECT_EQ(sink.items.size(), 3u);
}

TEST(MultiQueryTest, SharedParseMatchesIndividualRuns) {
  // Property: N queries through one parse produce exactly what each
  // produces alone.
  const char* queries[] = {
      "//book/@id",
      "/lib/*/title/text()",
      "//book[price>20]",
      "//book/price/sum()",
      "/lib/cd/title/text()",
  };
  const std::string doc = kDoc;

  std::vector<CollectingSink> shared_sinks(std::size(queries));
  MultiQueryEngine multi;
  for (size_t i = 0; i < std::size(queries); ++i) {
    ASSERT_TRUE(multi.AddQuery(queries[i], &shared_sinks[i]).ok());
  }
  xml::SaxParser parser(&multi);
  ASSERT_TRUE(parser.Parse(doc).ok());
  ASSERT_TRUE(multi.status().ok());

  for (size_t i = 0; i < std::size(queries); ++i) {
    Result<QueryResult> alone = RunQuery(queries[i], doc);
    ASSERT_TRUE(alone.ok()) << queries[i];
    EXPECT_EQ(shared_sinks[i].items, alone->items) << queries[i];
    EXPECT_EQ(shared_sinks[i].aggregate.has_value(),
              alone->aggregate.has_value())
        << queries[i];
    if (alone->aggregate.has_value()) {
      EXPECT_DOUBLE_EQ(*shared_sinks[i].aggregate, *alone->aggregate);
    }
  }
}

class MultiQueryPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MultiQueryPropertyTest, RandomQueriesOverRandomDocuments) {
  const uint64_t seed = GetParam();
  const std::string doc = testutil::RandomDocument(seed + 500);
  MultiQueryEngine multi;
  std::vector<CollectingSink> sinks(6);
  std::vector<std::string> queries;
  for (size_t i = 0; i < sinks.size(); ++i) {
    queries.push_back(testutil::RandomQuery(seed * 31 + i));
    ASSERT_TRUE(multi.AddQuery(queries.back(), &sinks[i]).ok());
  }
  xml::SaxParser parser(&multi);
  ASSERT_TRUE(parser.Parse(doc).ok());
  ASSERT_TRUE(multi.status().ok());
  for (size_t i = 0; i < sinks.size(); ++i) {
    Result<QueryResult> alone = RunQuery(queries[i], doc);
    ASSERT_TRUE(alone.ok());
    EXPECT_EQ(sinks[i].items, alone->items)
        << queries[i] << "\ndoc: " << doc;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiQueryPropertyTest,
                         ::testing::Range(uint64_t{0}, uint64_t{15}));

TEST(MultiQueryTest, ReusableAcrossDocuments) {
  MultiQueryEngine multi;
  CollectingSink sink;
  ASSERT_TRUE(multi.AddQuery("//a/text()", &sink).ok());
  for (const char* doc : {"<r><a>1</a></r>", "<r><a>2</a></r>"}) {
    xml::SaxParser parser(&multi);
    ASSERT_TRUE(parser.Parse(doc).ok());
  }
  EXPECT_EQ(sink.items, (std::vector<std::string>{"1", "2"}));
}

TEST(MultiQueryTest, PerQueryEngineIntrospection) {
  MultiQueryEngine multi;
  CollectingSink sink;
  Result<int> id = multi.AddQuery("//a[b]/text()", &sink);
  ASSERT_TRUE(id.ok());
  xml::SaxParser parser(&multi);
  ASSERT_TRUE(parser.Parse("<r><a><b/>x</a></r>").ok());
  EXPECT_GT(multi.engine(*id).stats().items_emitted, 0u);
  EXPECT_GE(multi.total_peak_buffered_bytes(), 0u);
}

}  // namespace
}  // namespace xsq::core
