// Shared helpers for the XSQ++ test suite: deterministic random XML
// documents and random queries for differential testing of the streaming
// engines against the DOM oracle.
#ifndef XSQ_TESTS_TEST_UTIL_H_
#define XSQ_TESTS_TEST_UTIL_H_

#include <optional>
#include <string>
#include <vector>

#include "common/strings.h"

namespace xsq::testutil {

struct RandomDocOptions {
  int max_depth = 6;
  int max_children = 5;
  double text_probability = 0.5;
  double attr_probability = 0.4;
  // Small tag/value pools maximize collisions, which is what stresses
  // closures, recursion, and predicate logic.
  std::vector<std::string> tags = {"a", "b", "c", "d"};
  std::vector<std::string> attr_names = {"id", "x"};
  std::vector<std::string> values = {"1", "2", "3", "10", "foo", "bar"};
};

// Generates a random well-formed document. Deterministic in `seed`.
std::string RandomDocument(uint64_t seed, const RandomDocOptions& options = {});

// Generates a random query over the same tag/value pools: 1-4 steps,
// random axes, wildcards, the five predicate categories, all output
// kinds. Deterministic in `seed`.
std::string RandomQuery(uint64_t seed, const RandomDocOptions& options = {});

}  // namespace xsq::testutil

#endif  // XSQ_TESTS_TEST_UTIL_H_
