#include "datagen/generators.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "dom/builder.h"
#include "xml/sax_parser.h"

namespace xsq::datagen {
namespace {

void ExpectWellFormed(const std::string& xml) {
  Result<dom::Document> doc = dom::BuildFromString(xml);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
}

size_t CountItems(std::string_view query, const std::string& xml) {
  Result<core::QueryResult> result = core::RunQuery(query, xml);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result->items.size();
}

TEST(DatagenTest, AllGeneratorsProduceWellFormedXml) {
  ExpectWellFormed(GenerateShake(50000, 1));
  ExpectWellFormed(GenerateNasa(50000, 1));
  ExpectWellFormed(GenerateDblp(50000, 1));
  ExpectWellFormed(GeneratePsd(50000, 1));
  ExpectWellFormed(GenerateRecursivePubs(50000, 1));
  ExpectWellFormed(GenerateOrderingDataset(50000, 20));
  ExpectWellFormed(GenerateColorDataset(50000, 1));
}

TEST(DatagenTest, GeneratorsAreDeterministic) {
  EXPECT_EQ(GenerateShake(20000, 7), GenerateShake(20000, 7));
  EXPECT_NE(GenerateShake(20000, 7), GenerateShake(20000, 8));
  EXPECT_EQ(GenerateDblp(20000, 3), GenerateDblp(20000, 3));
  EXPECT_EQ(GenerateRecursivePubs(20000, 5), GenerateRecursivePubs(20000, 5));
}

TEST(DatagenTest, SizeScalesWithTarget) {
  std::string small = GenerateDblp(20000, 1);
  std::string large = GenerateDblp(200000, 1);
  EXPECT_GE(small.size(), 20000u);
  EXPECT_GE(large.size(), 200000u);
  EXPECT_LT(small.size(), 60000u);  // does not wildly overshoot
  EXPECT_GT(large.size(), 5 * small.size() / 2);
}

TEST(DatagenTest, ShakeSupportsThePaperQueries) {
  std::string xml = GenerateShake(120000, 42);
  size_t all_speakers =
      CountItems("/PLAY/ACT/SCENE/SPEECH/SPEAKER/text()", xml);
  size_t love_speakers =
      CountItems("/PLAY/ACT/SCENE/SPEECH[LINE%love]/SPEAKER/text()", xml);
  size_t closure_speakers = CountItems("//ACT//SPEAKER/text()", xml);
  EXPECT_GT(all_speakers, 50u);
  EXPECT_GT(love_speakers, 0u);         // some lines mention love...
  EXPECT_LT(love_speakers, all_speakers);  // ...but not all
  EXPECT_EQ(closure_speakers, all_speakers);
}

TEST(DatagenTest, DblpHasRecordsWithAndWithoutAuthors) {
  std::string xml = GenerateDblp(150000, 42);
  size_t all = CountItems("/dblp/inproceedings/title/text()", xml);
  size_t with_author =
      CountItems("/dblp/inproceedings[author]/title/text()", xml);
  EXPECT_GT(all, 10u);
  EXPECT_GT(with_author, 0u);
  EXPECT_LT(with_author, all);  // ~10% lack authors
  EXPECT_GT(CountItems("/dblp/article/title/text()", xml), 0u);
}

TEST(DatagenTest, NasaAndPsdSupportTheirQueries) {
  EXPECT_GT(CountItems("/datasets/dataset/reference/source/other/name/text()",
                       GenerateNasa(100000, 1)),
            0u);
  EXPECT_GT(CountItems("/ProteinDatabase/ProteinEntry/reference/refinfo"
                       "/authors/author/text()",
                       GeneratePsd(100000, 1)),
            0u);
}

TEST(DatagenTest, RecursivePubsNestAndSupportClosureQuery) {
  RecursiveOptions options;
  options.nested_levels = 8;
  std::string xml = GenerateRecursivePubs(200000, 9, options);
  Result<DatasetStats> stats = ComputeStats(xml);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->max_depth, 4);  // genuinely recursive
  EXPECT_GT(CountItems("//pub[year]//book[@id]/title/text()", xml), 0u);
}

TEST(DatagenTest, OrderingDatasetQueriesAllReturnEmpty) {
  std::string xml = GenerateOrderingDataset(60000, 25);
  EXPECT_EQ(CountItems("/data/a[prior=0]", xml), 0u);
  EXPECT_EQ(CountItems("/data/a[posterior=0]", xml), 0u);
  EXPECT_EQ(CountItems("/data/a[@id=0]", xml), 0u);
  EXPECT_GT(CountItems("/data/a[prior=1]", xml), 0u);
}

TEST(DatagenTest, ColorDatasetHasRoughlyPaperProportions) {
  std::string xml = GenerateColorDataset(300000, 5);
  double red = static_cast<double>(CountItems("/a/Red/text()", xml));
  double green = static_cast<double>(CountItems("/a/Green/text()", xml));
  double blue = static_cast<double>(CountItems("/a/Blue/text()", xml));
  double total = red + green + blue;
  ASSERT_GT(total, 1000);
  EXPECT_NEAR(red / total, 0.10, 0.03);
  EXPECT_NEAR(green / total, 0.30, 0.04);
  EXPECT_NEAR(blue / total, 0.60, 0.04);
}

TEST(DatagenTest, GenericGeneratorHonorsItsParameters) {
  GenericOptions options;
  options.nested_levels = 5;
  options.max_repeats = 4;
  options.tags = {"x", "y"};
  std::string xml = GenerateGeneric(80000, 3, options);
  Result<DatasetStats> stats = ComputeStats(xml);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_LE(stats->max_depth, 5);
  EXPECT_GE(stats->max_depth, 3);  // deep enough to be interesting
  EXPECT_GT(stats->element_count, 100u);
  // Only the configured vocabulary (plus the <gen> root) appears.
  EXPECT_EQ(xml.find("<n0"), std::string::npos);
  EXPECT_NE(xml.find("<x"), std::string::npos);
  EXPECT_NE(xml.find("<y"), std::string::npos);
}

TEST(DatagenTest, GenericGeneratorIsDeterministicAndQueryable) {
  EXPECT_EQ(GenerateGeneric(30000, 9), GenerateGeneric(30000, 9));
  EXPECT_NE(GenerateGeneric(30000, 9), GenerateGeneric(30000, 10));
  std::string xml = GenerateGeneric(60000, 4);
  EXPECT_GT(CountItems("//n0[@id]", xml), 0u);
}

TEST(DatagenTest, ComputeStatsMatchesFigure15Shape) {
  Result<DatasetStats> stats = ComputeStats("<a><b>xy</b><b>z</b></a>");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->element_count, 3u);
  EXPECT_EQ(stats->text_bytes, 3u);
  EXPECT_EQ(stats->max_depth, 2);
  EXPECT_NEAR(stats->avg_depth, (1 + 2 + 2) / 3.0, 1e-9);
  EXPECT_NEAR(stats->avg_tag_length, 1.0, 1e-9);
  EXPECT_GT(stats->bytes, 0u);
}

TEST(DatagenTest, ComputeStatsRejectsMalformedInput) {
  EXPECT_FALSE(ComputeStats("<a><b></a>").ok());
}

}  // namespace
}  // namespace xsq::datagen
