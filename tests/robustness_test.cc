// Robustness properties: malformed input must produce a clean parse
// error (never a crash, hang, or engine-internal error), and extreme but
// well-formed structure (very deep nesting, huge attributes, long text)
// must be handled gracefully by every layer.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/strings.h"
#include "core/engine.h"
#include "datagen/generators.h"
#include "core/engine_nc.h"
#include "core/result_sink.h"
#include "core/streaming_query.h"
#include "dom/builder.h"
#include "dom/evaluator.h"
#include "test_util.h"
#include "xml/sax_parser.h"
#include "xml/scan.h"

namespace xsq {
namespace {

class MutationFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MutationFuzzTest, MutatedDocumentsNeverBreakTheEngine) {
  const uint64_t seed = GetParam();
  SplitMix64 rng(seed * 7919 + 13);
  std::string doc = testutil::RandomDocument(seed);

  for (int round = 0; round < 30; ++round) {
    std::string mutated = doc;
    int mutations = 1 + static_cast<int>(rng.Below(4));
    for (int m = 0; m < mutations; ++m) {
      if (mutated.empty()) break;
      size_t pos = rng.Below(mutated.size());
      switch (rng.Below(4)) {
        case 0:  // flip a byte to a random printable character
          mutated[pos] = static_cast<char>(' ' + rng.Below(94));
          break;
        case 1:  // delete a byte
          mutated.erase(pos, 1);
          break;
        case 2:  // duplicate a byte
          mutated.insert(pos, 1, mutated[pos]);
          break;
        case 3:  // insert a metacharacter
          mutated.insert(pos, 1, "<>&\"'/!["[rng.Below(8)]);
          break;
      }
    }
    // The engine either processes the stream or reports a parse error;
    // its internal status must never trip.
    Result<xpath::Query> query = xpath::ParseQuery("//a[b]/text()");
    ASSERT_TRUE(query.ok());
    core::CollectingSink sink;
    auto engine = core::XsqEngine::Create(*query, &sink);
    ASSERT_TRUE(engine.ok());
    xml::SaxParser parser(engine->get());
    Status status = parser.Parse(mutated);
    if (status.ok()) {
      EXPECT_TRUE((*engine)->status().ok())
          << "engine invariant violated on: " << mutated;
    } else {
      EXPECT_EQ(status.code(), StatusCode::kParseError) << mutated;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationFuzzTest,
                         ::testing::Range(uint64_t{0}, uint64_t{20}));

TEST(ExtremeInputTest, VeryDeepNesting) {
  const int depth = 5000;
  std::string doc;
  doc.reserve(static_cast<size_t>(depth) * 8);
  for (int i = 0; i < depth; ++i) doc += "<d>";
  doc += "x";
  for (int i = 0; i < depth; ++i) doc += "</d>";

  // Parser and XSQ-F (closure query: one chain per ancestor is the
  // worst case; the spine dedup keeps it linear).
  Result<core::QueryResult> result = core::RunQuery("//d//d/count()", doc);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_DOUBLE_EQ(*result->aggregate, depth - 1.0);
}

TEST(ExtremeInputTest, DeepNestingThroughDomOracle) {
  const int depth = 2000;
  std::string doc;
  for (int i = 0; i < depth; ++i) doc += "<d>";
  for (int i = 0; i < depth; ++i) doc += "</d>";
  Result<dom::Document> document = dom::BuildFromString(doc);
  ASSERT_TRUE(document.ok());
  Result<xpath::Query> query = xpath::ParseQuery("//d/count()");
  ASSERT_TRUE(query.ok());
  Result<dom::EvalResult> eval = dom::Evaluate(*document, *query);
  ASSERT_TRUE(eval.ok());
  EXPECT_DOUBLE_EQ(*eval->aggregate, static_cast<double>(depth));
}

TEST(ExtremeInputTest, LongTextRunsAcrossTinyChunks) {
  std::string text(200000, 'x');
  text[100000] = '&';  // will be an entity start
  text.replace(100000, 1, "&amp;");
  const std::string doc = "<a>" + text + "</a>";
  core::CollectingSink sink;
  Result<xpath::Query> query = xpath::ParseQuery("/a/text()");
  ASSERT_TRUE(query.ok());
  auto engine = core::XsqEngine::Create(*query, &sink);
  ASSERT_TRUE(engine.ok());
  xml::SaxParser parser(engine->get());
  for (size_t pos = 0; pos < doc.size(); pos += 4096) {
    ASSERT_TRUE(
        parser.Feed(std::string_view(doc).substr(pos, 4096)).ok());
  }
  ASSERT_TRUE(parser.Finish().ok());
  ASSERT_EQ(sink.items.size(), 1u);
  EXPECT_EQ(sink.items[0].size(), text.size() - 4);  // &amp; decoded to &
}

TEST(ExtremeInputTest, ManySiblingsManyAttributes) {
  std::string doc = "<r>";
  for (int i = 0; i < 20000; ++i) {
    doc += "<e a" + std::to_string(i % 7) + "=\"" + std::to_string(i) +
           "\"/>";
  }
  doc += "</r>";
  Result<core::QueryResult> result = core::RunQuery("/r/e[@a0]/count()", doc);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(*result->aggregate, 0.0);
}

TEST(ExtremeInputTest, HugeAttributeValue) {
  std::string value(100000, 'v');
  std::string doc = "<a x=\"" + value + "\"/>";
  Result<core::QueryResult> result = core::RunQuery("/a/@x", doc);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->items.size(), 1u);
  EXPECT_EQ(result->items[0].size(), value.size());
}

TEST(ExtremeInputTest, PathologicalCommentAndCdata) {
  // Many hyphens inside a comment terminated properly — but never two
  // in a row, which XML 1.0 forbids ("--" must not occur in a comment).
  std::string doc = "<a><!--";
  for (int i = 0; i < 25000; ++i) doc += "- ";
  doc += "--><![CDATA[";
  doc.append(50000, ']');
  doc += "]]></a>";
  xml::RecordingHandler handler;
  xml::SaxParser parser(&handler);
  EXPECT_TRUE(parser.Parse(doc).ok());
}

// A streaming parser must be chunk-transparent: the final status of a
// document — well-formed, malformed, or truncated — cannot depend on
// where the network happened to split it. Sweep every byte boundary.
Status RunChunked(std::string_view doc, size_t split) {
  auto query = core::StreamingQuery::Open("//a[b]/text()");
  EXPECT_TRUE(query.ok());
  Status status = (*query)->Push(doc.substr(0, split));
  if (status.ok()) status = (*query)->Push(doc.substr(split));
  if (status.ok()) status = (*query)->Close();
  return status;
}

TEST(ChunkSplitSweepTest, SplitPointNeverChangesTheFinalStatus) {
  const std::vector<std::string> docs = {
      "<r><a><b>x</b>text</a></r>",           // well-formed control
      "<r><a>text</a></b></r>",               // mismatched close tag
      "<r><a>truncated",                      // ends mid-document
      "<r><a p=>bad attr</a></r>",            // malformed attribute
      "<r><a>&bogus;</a></r>",                // unknown entity
      "<r><a><![CDATA[never closed</a></r>",  // unterminated CDATA
      "<r><a>text</a><!-- broken comment",    // unterminated comment
  };
  for (const std::string& doc : docs) {
    const Status reference = RunChunked(doc, doc.size());
    for (size_t split = 0; split <= doc.size(); ++split) {
      Status status = RunChunked(doc, split);
      EXPECT_EQ(status.code(), reference.code())
          << "doc '" << doc << "' split at " << split << ": "
          << status.ToString() << " vs " << reference.ToString();
      EXPECT_EQ(status.message(), reference.message())
          << "doc '" << doc << "' split at " << split;
    }
  }
}

// --- scan-loop robustness ---
// The parser classifies bytes in 8/16-byte gulps, so the dangerous
// split points are the ones that land a structural byte exactly on a
// gulp edge or straddle a multi-byte token ("]]>", "&amp;", "-->")
// across two Feeds. The event stream must not depend on chunking or on
// which scan implementation the build selected.

std::string EventDigest(const std::string& doc, size_t chunk) {
  class Digest : public xml::SaxHandler {
   public:
    void OnBegin(std::string_view tag, const std::vector<xml::Attribute>& attrs,
                 int depth) override {
      out += "B " + std::string(tag) + " " + std::to_string(depth);
      for (const xml::Attribute& attr : attrs) {
        out += " " + std::string(attr.name) + "=" + std::string(attr.value);
      }
      out += "\n";
    }
    void OnEnd(std::string_view tag, int depth) override {
      out += "E " + std::string(tag) + " " + std::to_string(depth) + "\n";
    }
    void OnText(std::string_view tag, std::string_view text,
                int depth) override {
      out += "T " + std::string(tag) + " " + std::to_string(depth) + " " +
             std::string(text) + "\n";
    }
    std::string out;
  };
  Digest digest;
  xml::SaxParser parser(&digest);
  if (chunk == 0) {
    if (!parser.Parse(doc).ok()) return "<parse error>";
    return digest.out;
  }
  for (size_t pos = 0; pos < doc.size(); pos += chunk) {
    if (!parser.Feed(std::string_view(doc).substr(pos, chunk)).ok()) {
      return "<parse error>";
    }
  }
  if (!parser.Finish().ok()) return "<parse error>";
  return digest.out;
}

std::vector<xml::ScanImpl> AllScanImpls() {
  std::vector<xml::ScanImpl> impls = {xml::ScanImpl::kScalar,
                                      xml::ScanImpl::kSwar};
  if (xml::SimdScanAvailable()) impls.push_back(xml::ScanImpl::kSimd);
  return impls;
}

TEST(ScanLoopTest, ChunkSplitsCrossingGulpBoundaries) {
  // Pad the prefix so structural bytes drift across every position of
  // an 8- and 16-byte gulp; entity and CDATA tokens sit near the pads.
  std::string doc = "<root>";
  for (size_t pad = 0; pad < 40; ++pad) {
    doc += "<e" + std::to_string(pad) + ">" + std::string(pad, 'x') +
           "&amp;" + std::string(pad, ']') + "<![CDATA[" +
           std::string(pad, '<') + "]]></e" + std::to_string(pad) + ">";
  }
  doc += "</root>";
  const std::string reference = EventDigest(doc, 0);
  ASSERT_NE(reference, "<parse error>");
  const xml::ScanImpl saved = xml::CurrentScanImpl();
  for (xml::ScanImpl impl : AllScanImpls()) {
    ASSERT_TRUE(xml::SetScanImpl(impl));
    // 1..17 crosses both gulp widths; 8/16 land splits exactly on them.
    for (size_t chunk = 1; chunk <= 17; ++chunk) {
      EXPECT_EQ(EventDigest(doc, chunk), reference)
          << "impl=" << static_cast<int>(impl) << " chunk=" << chunk;
    }
  }
  xml::SetScanImpl(saved);
}

TEST(ScanLoopTest, ImplementationsAgreeOnGeneratedCorpora) {
  const std::vector<std::pair<const char*, std::string>> corpora = {
      {"shake", datagen::GenerateShake(96 * 1024, 7)},
      {"nasa", datagen::GenerateNasa(96 * 1024, 7)},
      {"dblp", datagen::GenerateDblp(96 * 1024, 7)},
      {"psd", datagen::GeneratePsd(96 * 1024, 7)},
      {"recursive", datagen::GenerateRecursivePubs(96 * 1024, 7)},
  };
  const xml::ScanImpl saved = xml::CurrentScanImpl();
  for (const auto& [name, doc] : corpora) {
    std::string reference;
    for (xml::ScanImpl impl : AllScanImpls()) {
      ASSERT_TRUE(xml::SetScanImpl(impl));
      for (size_t chunk : {size_t{0}, size_t{4096}, size_t{7}}) {
        std::string digest = EventDigest(doc, chunk);
        ASSERT_NE(digest, "<parse error>") << name;
        if (reference.empty()) {
          reference = digest;
        } else {
          EXPECT_EQ(digest, reference)
              << name << " impl=" << static_cast<int>(impl)
              << " chunk=" << chunk;
        }
      }
    }
  }
  xml::SetScanImpl(saved);
}

TEST(ExtremeInputTest, EngineStatusCatchesDesyncedEvents) {
  // Driving the engine with an inconsistent event stream directly (not
  // through the parser) must flag Internal, not crash.
  Result<xpath::Query> query = xpath::ParseQuery("/a/text()");
  ASSERT_TRUE(query.ok());
  core::CollectingSink sink;
  auto engine = core::XsqEngine::Create(*query, &sink);
  ASSERT_TRUE(engine.ok());
  (*engine)->OnDocumentBegin();
  (*engine)->OnBegin("a", {}, /*depth=*/3);  // wrong depth
  EXPECT_FALSE((*engine)->status().ok());
  EXPECT_EQ((*engine)->status().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace xsq
