#include <gtest/gtest.h>

#include "dom/builder.h"
#include "dom/evaluator.h"
#include "xpath/ast.h"

namespace xsq::dom {
namespace {

// Figure 1 of the paper (whitespace removed for exact text matching).
constexpr const char* kFig1 =
    "<root><pub>"
    "<book id=\"1\"><price>12.00</price><name>First</name>"
    "<author>A</author><price type=\"discount\">10.00</price></book>"
    "<book id=\"2\"><price>14.00</price><name>Second</name>"
    "<author>A</author><author>B</author>"
    "<price type=\"discount\">12.00</price></book>"
    "<year>2002</year>"
    "</pub></root>";

// Figure 2 of the paper: recursive structure (pub inside book).
constexpr const char* kFig2 =
    "<root><pub>"
    "<book><name>X</name><author>A</author></book>"
    "<book><name>Y</name>"
    "<pub><book><name>Z</name><author>B</author></book>"
    "<year>1999</year></pub>"
    "</book>"
    "<year>2002</year>"
    "</pub></root>";

EvalResult Eval(std::string_view xml, std::string_view query_text) {
  Result<Document> doc = BuildFromString(xml);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  Result<xpath::Query> query = xpath::ParseQuery(query_text);
  EXPECT_TRUE(query.ok()) << query.status().ToString();
  Result<EvalResult> result = Evaluate(*doc, *query);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return *std::move(result);
}

TEST(DomBuilderTest, BuildsTree) {
  Result<Document> doc = BuildFromString("<a x=\"1\"><b>t</b><c/></a>");
  ASSERT_TRUE(doc.ok());
  const Node* root = doc->root();
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->tag(), "a");
  ASSERT_NE(root->FindAttribute("x"), nullptr);
  EXPECT_EQ(*root->FindAttribute("x"), "1");
  EXPECT_EQ(root->FindAttribute("nope"), nullptr);
  ASSERT_EQ(root->children().size(), 2u);
  const Node* b = root->children()[0].get();
  EXPECT_EQ(b->tag(), "b");
  ASSERT_EQ(b->children().size(), 1u);
  EXPECT_TRUE(b->children()[0]->is_text());
  EXPECT_EQ(b->children()[0]->text(), "t");
  EXPECT_EQ(b->parent(), root);
}

TEST(DomBuilderTest, OrderIndexesAreDocumentOrder) {
  Result<Document> doc = BuildFromString("<a><b/><c><d/></c></a>");
  ASSERT_TRUE(doc.ok());
  const Node* a = doc->root();
  const Node* b = a->children()[0].get();
  const Node* c = a->children()[1].get();
  const Node* d = c->children()[0].get();
  EXPECT_LT(a->order_index(), b->order_index());
  EXPECT_LT(b->order_index(), c->order_index());
  EXPECT_LT(c->order_index(), d->order_index());
}

TEST(DomBuilderTest, DirectTextConcatenatesOnlyDirectChildren) {
  Result<Document> doc = BuildFromString("<a>1<b>skip</b>2</a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root()->DirectText(), "12");
}

TEST(DomEvaluatorTest, PaperExample1) {
  EvalResult r = Eval(kFig1, "/root/pub[year=2002]/book[price<11]/author");
  ASSERT_EQ(r.items.size(), 1u);
  EXPECT_EQ(r.items[0], "<author>A</author>");
}

TEST(DomEvaluatorTest, PaperExample2) {
  EvalResult r = Eval(kFig2, "//pub[year=2002]//book[author]//name");
  ASSERT_EQ(r.items.size(), 2u);
  EXPECT_EQ(r.items[0], "<name>X</name>");
  EXPECT_EQ(r.items[1], "<name>Z</name>");
}

TEST(DomEvaluatorTest, ClosureMatchesAllDepths) {
  EvalResult r = Eval("<a><b><a><b/></a></b></a>", "//b");
  EXPECT_EQ(r.match_count, 2u);
}

TEST(DomEvaluatorTest, ClosureIsStrictDescendantOfPreviousStep) {
  // //a//a: the outer a is not its own descendant.
  EvalResult r = Eval("<a><a/></a>", "//a//a");
  EXPECT_EQ(r.match_count, 1u);
}

TEST(DomEvaluatorTest, ChildAxisRequiresDirectChild) {
  EvalResult r = Eval("<a><x><b/></x></a>", "/a/b");
  EXPECT_EQ(r.match_count, 0u);
}

TEST(DomEvaluatorTest, WildcardStep) {
  EvalResult r = Eval("<a><x><b/></x><y><b/></y></a>", "/a/*/b");
  EXPECT_EQ(r.match_count, 2u);
}

TEST(DomEvaluatorTest, AttributePredicates) {
  const char* doc = "<r><a id=\"3\"/><a id=\"7\"/><a/></r>";
  EXPECT_EQ(Eval(doc, "/r/a[@id]").match_count, 2u);
  EXPECT_EQ(Eval(doc, "/r/a[@id=3]").match_count, 1u);
  EXPECT_EQ(Eval(doc, "/r/a[@id>2]").match_count, 2u);
  EXPECT_EQ(Eval(doc, "/r/a[@id!=3]").match_count, 1u);
}

TEST(DomEvaluatorTest, TextPredicates) {
  const char* doc = "<r><a>5</a><a>x</a><a/></r>";
  EXPECT_EQ(Eval(doc, "/r/a[text()]").match_count, 2u);
  EXPECT_EQ(Eval(doc, "/r/a[text()=5]").match_count, 1u);
  EXPECT_EQ(Eval(doc, "/r/a[text()%x]").match_count, 1u);
}

TEST(DomEvaluatorTest, ChildPredicates) {
  const char* doc =
      "<r><a><b id=\"1\">5</b></a><a><b>9</b></a><a><c/></a></r>";
  EXPECT_EQ(Eval(doc, "/r/a[b]").match_count, 2u);
  EXPECT_EQ(Eval(doc, "/r/a[b@id]").match_count, 1u);
  EXPECT_EQ(Eval(doc, "/r/a[b@id=1]").match_count, 1u);
  EXPECT_EQ(Eval(doc, "/r/a[b>6]").match_count, 1u);
  EXPECT_EQ(Eval(doc, "/r/a[*]").match_count, 3u);
}

TEST(DomEvaluatorTest, ExistentialChildSemantics) {
  // One failing child does not refute the predicate if another passes.
  EvalResult r = Eval("<r><a><p>20</p><p>5</p></a></r>", "/r/a[p<11]");
  EXPECT_EQ(r.match_count, 1u);
}

TEST(DomEvaluatorTest, MultiplePredicatesAreConjunctive) {
  const char* doc = "<r><a id=\"1\"><b/></a><a id=\"1\"/><a><b/></a></r>";
  EXPECT_EQ(Eval(doc, "/r/a[@id][b]").match_count, 1u);
}

TEST(DomEvaluatorTest, TextOutputEmitsPerTextNode) {
  EvalResult r = Eval("<r><a>x<b/>y</a></r>", "/r/a/text()");
  ASSERT_EQ(r.items.size(), 2u);
  EXPECT_EQ(r.items[0], "x");
  EXPECT_EQ(r.items[1], "y");
}

TEST(DomEvaluatorTest, AttributeOutput) {
  EvalResult r = Eval("<r><a id=\"1\"/><a/><a id=\"2\"/></r>", "/r/a/@id");
  ASSERT_EQ(r.items.size(), 2u);
  EXPECT_EQ(r.items[0], "1");
  EXPECT_EQ(r.items[1], "2");
}

TEST(DomEvaluatorTest, ElementOutputSerializesSubtree) {
  EvalResult r =
      Eval("<r><a x=\"1\">t<b>u</b></a></r>", "/r/a");
  ASSERT_EQ(r.items.size(), 1u);
  EXPECT_EQ(r.items[0], "<a x=\"1\">t<b>u</b></a>");
}

TEST(DomEvaluatorTest, ElementOutputEscapesText) {
  EvalResult r = Eval("<r><a>a&amp;b</a></r>", "/r/a");
  ASSERT_EQ(r.items.size(), 1u);
  EXPECT_EQ(r.items[0], "<a>a&amp;b</a>");
}

TEST(DomEvaluatorTest, NestedMatchesBothOutput) {
  EvalResult r = Eval("<a><a>x</a></a>", "//a");
  ASSERT_EQ(r.items.size(), 2u);
  EXPECT_EQ(r.items[0], "<a><a>x</a></a>");
  EXPECT_EQ(r.items[1], "<a>x</a>");
}

TEST(DomEvaluatorTest, Aggregations) {
  const char* doc = "<r><a>1</a><a>2.5</a><a>x</a><a>4</a></r>";
  EXPECT_DOUBLE_EQ(*Eval(doc, "/r/a/count()").aggregate, 4.0);
  EXPECT_DOUBLE_EQ(*Eval(doc, "/r/a/sum()").aggregate, 7.5);
  EXPECT_DOUBLE_EQ(*Eval(doc, "/r/a/avg()").aggregate, 2.5);
  EXPECT_DOUBLE_EQ(*Eval(doc, "/r/a/min()").aggregate, 1.0);
  EXPECT_DOUBLE_EQ(*Eval(doc, "/r/a/max()").aggregate, 4.0);
}

TEST(DomEvaluatorTest, AggregationsOnEmptyMatchSet) {
  const char* doc = "<r><b/></r>";
  EXPECT_DOUBLE_EQ(*Eval(doc, "/r/a/count()").aggregate, 0.0);
  EXPECT_DOUBLE_EQ(*Eval(doc, "/r/a/sum()").aggregate, 0.0);
  EXPECT_FALSE(Eval(doc, "/r/a/avg()").aggregate.has_value());
  EXPECT_FALSE(Eval(doc, "/r/a/min()").aggregate.has_value());
}

TEST(DomEvaluatorTest, AggregationOverNonNumericOnly) {
  const char* doc = "<r><a>x</a></r>";
  EXPECT_DOUBLE_EQ(*Eval(doc, "/r/a/sum()").aggregate, 0.0);
  EXPECT_FALSE(Eval(doc, "/r/a/avg()").aggregate.has_value());
  EXPECT_DOUBLE_EQ(*Eval(doc, "/r/a/count()").aggregate, 1.0);
}

TEST(DomEvaluatorTest, MissingAttributeYieldsNoItem) {
  EvalResult r = Eval("<r><a/></r>", "/r/a/@id");
  EXPECT_EQ(r.match_count, 1u);
  EXPECT_TRUE(r.items.empty());
}

TEST(DomEvaluatorTest, DocumentOrderWithClosure) {
  EvalResult r = Eval(
      "<r><a><n>1</n></a><b><a><n>2</n></a></b><a><n>3</n></a></r>",
      "//a/n/text()");
  ASSERT_EQ(r.items.size(), 3u);
  EXPECT_EQ(r.items[0], "1");
  EXPECT_EQ(r.items[1], "2");
  EXPECT_EQ(r.items[2], "3");
}

TEST(DomEvaluatorTest, ApproxBytesGrowsWithDocument) {
  Result<Document> small = BuildFromString("<a/>");
  Result<Document> large =
      BuildFromString("<a><b>some text content here</b><c x=\"y\"/></a>");
  ASSERT_TRUE(small.ok() && large.ok());
  EXPECT_GT(large->ApproxBytes(), small->ApproxBytes());
}

}  // namespace
}  // namespace xsq::dom
