#include "test_util.h"

#include "common/strings.h"

namespace xsq::testutil {

namespace {

void EmitElement(std::string* out, SplitMix64* rng,
                 const RandomDocOptions& options, int depth) {
  const std::string& tag = options.tags[rng->Below(options.tags.size())];
  out->push_back('<');
  out->append(tag);
  if (rng->Chance(options.attr_probability)) {
    const std::string& name =
        options.attr_names[rng->Below(options.attr_names.size())];
    out->push_back(' ');
    out->append(name);
    out->append("=\"");
    out->append(options.values[rng->Below(options.values.size())]);
    out->push_back('"');
  }
  out->push_back('>');
  int children = depth >= options.max_depth
                     ? 0
                     : static_cast<int>(rng->Below(
                           static_cast<uint64_t>(options.max_children) + 1));
  for (int i = 0; i < children; ++i) {
    if (rng->Chance(options.text_probability)) {
      out->append(options.values[rng->Below(options.values.size())]);
    }
    EmitElement(out, rng, options, depth + 1);
  }
  if (rng->Chance(options.text_probability)) {
    out->append(options.values[rng->Below(options.values.size())]);
  }
  out->append("</");
  out->append(tag);
  out->push_back('>');
}

}  // namespace

std::string RandomDocument(uint64_t seed, const RandomDocOptions& options) {
  SplitMix64 rng(seed * 2654435761ULL + 1);
  std::string out = "<r>";
  int top = 1 + static_cast<int>(rng.Below(3));
  for (int i = 0; i < top; ++i) {
    EmitElement(&out, &rng, options, 1);
  }
  out += "</r>";
  return out;
}

std::string RandomQuery(uint64_t seed, const RandomDocOptions& options) {
  SplitMix64 rng(seed * 0x9e3779b97f4a7c15ULL + 17);
  std::string query;
  int steps = 1 + static_cast<int>(rng.Below(4));
  bool first = true;
  for (int s = 0; s < steps; ++s) {
    query += rng.Chance(0.5) ? "//" : "/";
    if (first && query == "/") {
      // Child-axis first step: target the known root tag half the time
      // so queries are not trivially empty.
      query += rng.Chance(0.5) ? "r" : options.tags[rng.Below(
                                           options.tags.size())];
    } else if (rng.Chance(0.1)) {
      query += "*";
    } else {
      query += options.tags[rng.Below(options.tags.size())];
    }
    first = false;
    if (rng.Chance(0.5)) {
      // One predicate, occasionally two.
      int predicates = rng.Chance(0.15) ? 2 : 1;
      for (int p = 0; p < predicates; ++p) {
        query += "[";
        int kind = static_cast<int>(rng.Below(5));
        const std::string& value =
            options.values[rng.Below(options.values.size())];
        const std::string& child = options.tags[rng.Below(options.tags.size())];
        const std::string& attr =
            options.attr_names[rng.Below(options.attr_names.size())];
        static constexpr const char* kOps[] = {"=", "!=", "<", "<=",
                                               ">", ">=", "%"};
        const char* op = kOps[rng.Below(7)];
        switch (kind) {
          case 0:  // attribute
            query += "@" + attr;
            if (rng.Chance(0.7)) query += std::string(op) + value;
            break;
          case 1:  // text
            query += "text()";
            if (rng.Chance(0.7)) query += std::string(op) + value;
            break;
          case 2:  // child existence
            query += child;
            break;
          case 3:  // child attribute
            query += child + "@" + attr;
            if (rng.Chance(0.7)) query += std::string(op) + value;
            break;
          case 4:  // child text
            query += child + std::string(op) + value;
            break;
        }
        query += "]";
      }
    }
  }
  int output = static_cast<int>(rng.Below(6));
  switch (output) {
    case 0:
      break;  // element output
    case 1:
      query += "/text()";
      break;
    case 2:
      query += "/@" + options.attr_names[rng.Below(options.attr_names.size())];
      break;
    case 3:
      query += "/count()";
      break;
    case 4:
      query += "/sum()";
      break;
    case 5:
      query += "/avg()";
      break;
  }
  return query;
}

}  // namespace xsq::testutil
