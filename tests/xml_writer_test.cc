#include "xml/writer.h"

#include <gtest/gtest.h>

#include "xml/sax_parser.h"

namespace xsq::xml {
namespace {

TEST(XmlWriterTest, BasicElementWithAttributes) {
  XmlWriter writer;
  writer.BeginElement("a", {{"x", "1"}, {"y", "two"}});
  writer.Text("hi");
  writer.EndElement("a");
  EXPECT_EQ(writer.str(), "<a x=\"1\" y=\"two\">hi</a>");
}

TEST(XmlWriterTest, EscapesTextAndAttributeValues) {
  XmlWriter writer;
  writer.BeginElement("a", {{"v", "x<y&\"q\""}});
  writer.Text("1 < 2 & 'three'");
  writer.EndElement("a");
  EXPECT_EQ(writer.str(),
            "<a v=\"x&lt;y&amp;&quot;q&quot;\">"
            "1 &lt; 2 &amp; &apos;three&apos;</a>");
}

TEST(XmlWriterTest, NestedElements) {
  XmlWriter writer;
  writer.BeginElement("r");
  writer.TextElement("a", "1");
  writer.BeginElement("b");
  writer.EndElement("b");
  writer.EndElement("r");
  EXPECT_EQ(writer.str(), "<r><a>1</a><b></b></r>");
}

TEST(XmlWriterTest, PrettyModeIndents) {
  XmlWriter writer(/*pretty=*/true);
  writer.BeginElement("r");
  writer.TextElement("a", "1");
  writer.EndElement("r");
  std::string out = writer.str();
  EXPECT_NE(out.find("\n  <a>1</a>"), std::string::npos);
}

TEST(XmlWriterTest, ClearResets) {
  XmlWriter writer;
  writer.BeginElement("a");
  writer.EndElement("a");
  writer.Clear();
  EXPECT_EQ(writer.size(), 0u);
  writer.TextElement("b", "x");
  EXPECT_EQ(writer.str(), "<b>x</b>");
}

TEST(XmlWriterTest, TakeStringMoves) {
  XmlWriter writer;
  writer.TextElement("a", "v");
  std::string out = writer.TakeString();
  EXPECT_EQ(out, "<a>v</a>");
}

TEST(SerializeEventsTest, RoundTripsThroughParser) {
  const char* doc = "<r a=\"1\">x<b>y&amp;z</b><c/>w</r>";
  RecordingHandler first;
  SaxParser parser(&first);
  ASSERT_TRUE(parser.Parse(doc).ok());
  std::string serialized = SerializeEvents(first.events);
  RecordingHandler second;
  SaxParser reparser(&second);
  ASSERT_TRUE(reparser.Parse(serialized).ok());
  ASSERT_EQ(first.events.size(), second.events.size());
  for (size_t i = 0; i < first.events.size(); ++i) {
    EXPECT_EQ(first.events[i].type, second.events[i].type);
    EXPECT_EQ(first.events[i].tag, second.events[i].tag);
    EXPECT_EQ(first.events[i].text, second.events[i].text);
  }
}

TEST(SerializeEventsTest, SelfClosingBecomesExplicitPair) {
  RecordingHandler handler;
  SaxParser parser(&handler);
  ASSERT_TRUE(parser.Parse("<a><b/></a>").ok());
  EXPECT_EQ(SerializeEvents(handler.events), "<a><b></b></a>");
}

TEST(SerializeEventsTest, DoctypeRoundTrips) {
  const char* doc = "<!DOCTYPE r [<!ELEMENT r (#PCDATA)>]><r>x</r>";
  RecordingHandler first;
  SaxParser parser(&first);
  ASSERT_TRUE(parser.Parse(doc).ok());
  std::string serialized = SerializeEvents(first.events);
  EXPECT_NE(serialized.find("<!DOCTYPE r ["), std::string::npos);
  RecordingHandler second;
  SaxParser reparser(&second);
  ASSERT_TRUE(reparser.Parse(serialized).ok()) << serialized;
  ASSERT_EQ(first.events.size(), second.events.size());
  for (size_t i = 0; i < first.events.size(); ++i) {
    EXPECT_TRUE(first.events[i] == second.events[i]) << i;
  }
}

}  // namespace
}  // namespace xsq::xml
