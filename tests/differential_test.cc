// Differential property tests: every streaming engine must agree with
// the DOM oracle (dom::Evaluate) on randomized documents and queries.
// This is the strongest correctness evidence in the suite - the random
// pools are deliberately tiny so documents are deeply recursive and
// queries with closures produce many overlapping match chains (the hard
// cases of paper Examples 1 and 2).
#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/engine_nc.h"
#include "core/result_sink.h"
#include "dom/builder.h"
#include "dom/evaluator.h"
#include "lazydfa/lazy_dfa_engine.h"
#include "naive/naive_engine.h"
#include "test_util.h"
#include "xml/sax_parser.h"
#include "xpath/ast.h"

namespace xsq {
namespace {

struct StreamOutcome {
  std::vector<std::string> items;
  std::optional<double> aggregate;
};

template <typename Engine>
StreamOutcome RunStreaming(Engine* engine, std::string_view xml) {
  xml::SaxParser parser(engine);
  Status status = parser.Parse(xml);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return {};
}

void ExpectAgreesWithOracle(const std::string& query_text,
                            const std::string& xml) {
  Result<xpath::Query> query = xpath::ParseQuery(query_text);
  ASSERT_TRUE(query.ok()) << query_text;

  Result<dom::Document> doc = dom::BuildFromString(xml);
  ASSERT_TRUE(doc.ok()) << xml;
  Result<dom::EvalResult> oracle = dom::Evaluate(*doc, *query);
  ASSERT_TRUE(oracle.ok());

  // XSQ-F handles everything.
  {
    core::CollectingSink sink;
    auto engine = core::XsqEngine::Create(*query, &sink);
    ASSERT_TRUE(engine.ok());
    xml::SaxParser parser(engine->get());
    ASSERT_TRUE(parser.Parse(xml).ok());
    ASSERT_TRUE((*engine)->status().ok())
        << (*engine)->status().ToString() << "\nquery: " << query_text
        << "\ndoc: " << xml;
    EXPECT_EQ(sink.items, oracle->items)
        << "XSQ-F mismatch\nquery: " << query_text << "\ndoc: " << xml;
    EXPECT_EQ(sink.aggregate.has_value(), oracle->aggregate.has_value())
        << "query: " << query_text << "\ndoc: " << xml;
    if (sink.aggregate.has_value() && oracle->aggregate.has_value()) {
      EXPECT_DOUBLE_EQ(*sink.aggregate, *oracle->aggregate)
          << "query: " << query_text << "\ndoc: " << xml;
    }
    EXPECT_EQ((*engine)->memory().current_bytes(), 0u)
        << "buffer not drained\nquery: " << query_text;
  }

  // XSQ-NC handles closure-free queries.
  if (!query->HasClosure()) {
    core::CollectingSink sink;
    auto engine = core::XsqNcEngine::Create(*query, &sink);
    ASSERT_TRUE(engine.ok());
    xml::SaxParser parser(engine->get());
    ASSERT_TRUE(parser.Parse(xml).ok());
    ASSERT_TRUE((*engine)->status().ok());
    EXPECT_EQ(sink.items, oracle->items)
        << "XSQ-NC mismatch\nquery: " << query_text << "\ndoc: " << xml;
    if (sink.aggregate.has_value() && oracle->aggregate.has_value()) {
      EXPECT_DOUBLE_EQ(*sink.aggregate, *oracle->aggregate) << query_text;
    }
  }

  // The naive subtree-buffering engine handles everything.
  {
    core::CollectingSink sink;
    auto engine = naive::NaiveEngine::Create(*query, &sink);
    ASSERT_TRUE(engine.ok());
    xml::SaxParser parser(engine->get());
    ASSERT_TRUE(parser.Parse(xml).ok());
    ASSERT_TRUE((*engine)->status().ok());
    EXPECT_EQ(sink.items, oracle->items)
        << "naive mismatch\nquery: " << query_text << "\ndoc: " << xml;
    if (sink.aggregate.has_value() && oracle->aggregate.has_value()) {
      EXPECT_DOUBLE_EQ(*sink.aggregate, *oracle->aggregate) << query_text;
    }
  }

  // The lazy-DFA engine handles predicate-free, non-aggregating queries.
  if (!query->HasPredicates() && !xpath::IsAggregation(query->output.kind)) {
    core::CollectingSink sink;
    auto engine = lazydfa::LazyDfaEngine::Create(*query, &sink);
    ASSERT_TRUE(engine.ok());
    xml::SaxParser parser(engine->get());
    ASSERT_TRUE(parser.Parse(xml).ok());
    ASSERT_TRUE((*engine)->status().ok());
    EXPECT_EQ(sink.items, oracle->items)
        << "lazy-DFA mismatch\nquery: " << query_text << "\ndoc: " << xml;
  }
}

class RandomDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomDifferentialTest, EnginesMatchOracle) {
  const uint64_t seed = GetParam();
  // Several query/document pairings per seed.
  for (uint64_t i = 0; i < 4; ++i) {
    const std::string doc = testutil::RandomDocument(seed * 41 + i);
    const std::string query = testutil::RandomQuery(seed * 97 + i * 13);
    ExpectAgreesWithOracle(query, doc);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDifferentialTest,
                         ::testing::Range(uint64_t{0}, uint64_t{60}));

class DeepRecursionDifferentialTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeepRecursionDifferentialTest, ClosureHeavyQueriesOnDeepDocs) {
  const uint64_t seed = GetParam();
  testutil::RandomDocOptions options;
  options.max_depth = 12;
  options.max_children = 3;
  options.tags = {"a", "b"};  // maximal tag collisions -> many chains
  const std::string doc = testutil::RandomDocument(seed + 1000, options);
  const char* queries[] = {
      "//a//a",          "//a//b//a/text()", "//a[b]//a/text()",
      "//a[@id]//b",     "//b[a]//a/count()", "//a//a//a//a/count()",
      "//a[text()]//b/text()", "//*//a/sum()",
  };
  for (const char* query : queries) {
    ExpectAgreesWithOracle(query, doc);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeepRecursionDifferentialTest,
                         ::testing::Range(uint64_t{0}, uint64_t{20}));

// Hand-picked regression documents exercising specific orderings.
TEST(DirectedDifferentialTest, PredicateAfterResult) {
  ExpectAgreesWithOracle("//a[b]//c/text()",
                         "<r><a><c>1</c><b/><c>2</c></a></r>");
}

TEST(DirectedDifferentialTest, SiblingRecursionWithSharedTags) {
  ExpectAgreesWithOracle(
      "//a[b=1]//b/text()",
      "<a><b>0</b><a><b>1</b></a><b>1</b><a><b>2</b></a></a>");
}

TEST(DirectedDifferentialTest, WildcardsEverywhere) {
  ExpectAgreesWithOracle("//*[*]/*/text()",
                         "<r><a><b>x</b></a><c>y</c></r>");
}

TEST(DirectedDifferentialTest, AggregateOverRecursiveMatches) {
  ExpectAgreesWithOracle("//a//a/sum()",
                         "<a>1<a>2<a>3</a></a><a>4</a></a>");
}

TEST(DirectedDifferentialTest, AttributeOutputWithClosure) {
  ExpectAgreesWithOracle(
      "//a[b]//c/@id",
      "<r><a><b/><c id=\"1\"/><a><c id=\"2\"/><b/></a></a></r>");
}

TEST(DirectedDifferentialTest, ElementOutputNestedMatches) {
  ExpectAgreesWithOracle("//a[@x]",
                         "<a x=\"1\"><a><a x=\"2\">t</a></a></a>");
}

}  // namespace
}  // namespace xsq
