// Tests for the cluster front tier (src/cluster/): ShardMap consistent
// hashing, Backend pooling + circuit breaking, HealthProber
// transitions, and the Router end to end against three in-process xsqd
// shards (QueryService + net::Server each), including scatter-gather
// merge equality, dead-shard key remapping, and disconnect-driven
// cross-shard cancellation.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/backend_pool.h"
#include "cluster/health.h"
#include "cluster/router.h"
#include "cluster/shard_map.h"
#include "common/status.h"
#include "gtest/gtest.h"
#include "net/client.h"
#include "net/line_protocol.h"
#include "net/server.h"
#include "obs/exposition.h"
#include "service/query_service.h"
#include "service/stats.h"

namespace xsq {
namespace {

using cluster::Backend;
using cluster::BackendConfig;
using cluster::HttpGet;
using cluster::Router;
using cluster::RouterConfig;
using cluster::ShardAddress;
using cluster::ShardHealth;
using cluster::ShardMap;
using net::Client;
using net::ClientConfig;
using net::LineProtocol;
using net::Server;
using net::ServerConfig;
using service::QueryService;
using service::ServiceConfig;

// Binds an ephemeral port, reads it back, releases it. The caller gets
// a port nothing listens on (until it binds it itself).
uint16_t ReserveEphemeralPort() {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

template <typename Predicate>
bool WaitFor(Predicate predicate, int timeout_ms = 5000) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return predicate();
}

// ---------------------------------------------------------------------------
// ShardMap: consistent hashing with virtual nodes.

TEST(ShardMapTest, OwnerIsDeterministicAndUsesEveryShard) {
  ShardMap map(3, 64);
  std::vector<size_t> per_shard(3, 0);
  for (int i = 0; i < 1000; ++i) {
    std::string key = "doc-" + std::to_string(i);
    std::optional<size_t> owner = map.Owner(key);
    ASSERT_TRUE(owner.has_value());
    EXPECT_EQ(map.Owner(key), owner);  // stable across calls
    ++per_shard[*owner];
  }
  // Virtual nodes smooth the distribution: every shard owns a
  // non-trivial slice (the bound is loose on purpose — the point is
  // "no starved shard", not a balance SLO).
  for (size_t shard = 0; shard < 3; ++shard) {
    EXPECT_GT(per_shard[shard], 100u) << "shard " << shard;
  }
}

TEST(ShardMapTest, MaskRemapsOnlyTheDeadShardsKeys) {
  ShardMap map(3, 64);
  const std::vector<bool> all = {true, true, true};
  std::vector<bool> without_one = {true, false, true};
  size_t moved = 0;
  for (int i = 0; i < 1000; ++i) {
    std::string key = "doc-" + std::to_string(i);
    size_t before = *map.Owner(key, all);
    size_t after = *map.Owner(key, without_one);
    if (before == 1) {
      // A dead shard's keys remap to a survivor...
      EXPECT_NE(after, 1u);
      ++moved;
    } else {
      // ...and nobody else's keys move at all.
      EXPECT_EQ(after, before) << key;
    }
  }
  EXPECT_GT(moved, 0u);
}

TEST(ShardMapTest, NoServingShardMeansNoOwner) {
  ShardMap map(2, 8);
  EXPECT_FALSE(map.Owner("doc", {false, false}).has_value());
  EXPECT_EQ(*map.Owner("doc", {false, true}), 1u);
}

// ---------------------------------------------------------------------------
// Backend: pooled requests and the circuit breaker.

TEST(BackendTest, CircuitBreakerOpensFailsFastAndRecovers) {
  uint16_t port = ReserveEphemeralPort();
  BackendConfig config;
  config.breaker_threshold = 2;
  config.breaker_cooldown_ms = 100;
  config.connect_timeout_ms = 200;
  config.request_timeout_ms = 1000;
  config.client_max_retries = 0;  // count transport attempts exactly
  Backend backend({"127.0.0.1", port}, config);

  // Nothing listens: two consecutive transport failures trip the
  // breaker, and the next request fails fast instead of burning a
  // connect timeout.
  EXPECT_FALSE(backend.Request("STATS").ok());
  EXPECT_FALSE(backend.Request("STATS").ok());
  EXPECT_TRUE(backend.circuit_open());
  auto rejected = backend.Request("STATS");
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  Backend::Counters counters = backend.counters();
  EXPECT_GE(counters.failures, 2u);
  EXPECT_GE(counters.breaker_opens, 1u);
  EXPECT_GE(counters.breaker_rejects, 1u);

  // Bring a real shard up on that port: after the cooldown the
  // half-open probe goes through and closes the circuit.
  QueryService service{ServiceConfig()};
  ServerConfig server_config;
  server_config.port = port;
  auto server = Server::Create(&service, server_config);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  EXPECT_TRUE(WaitFor([&] {
    auto response = backend.Request("STATS");
    return response.ok() && response->status.ok();
  }));
  EXPECT_FALSE(backend.circuit_open());
  EXPECT_EQ(backend.outstanding(), 0u);
  (*server)->Stop();
  service.Shutdown();
}

TEST(BackendTest, ErrRepliesNeverTripTheBreaker) {
  QueryService service{ServiceConfig()};
  auto server = Server::Create(&service, ServerConfig());
  ASSERT_TRUE(server.ok());
  BackendConfig config;
  config.breaker_threshold = 2;
  Backend backend({"127.0.0.1", (*server)->port()}, config);
  // An ERR reply is a healthy transport — the shard answered.
  for (int i = 0; i < 5; ++i) {
    auto response = backend.Request("PUSH 99 <r/>");
    ASSERT_TRUE(response.ok());
    EXPECT_FALSE(response->status.ok());
  }
  EXPECT_FALSE(backend.circuit_open());
  EXPECT_EQ(backend.counters().failures, 0u);
  (*server)->Stop();
  service.Shutdown();
}

// ---------------------------------------------------------------------------
// The in-process cluster: N shards (QueryService + net::Server each)
// and a Router over them. The prober runs only when a test says so
// (start_prober=false + ProbeNow), so health transitions are
// deterministic.

struct ClusterHarness {
  explicit ClusterHarness(size_t n, RouterConfig base = RouterConfig(),
                          std::vector<ServiceConfig> shard_configs = {}) {
    for (size_t i = 0; i < n; ++i) {
      ServiceConfig service_config =
          i < shard_configs.size() ? shard_configs[i] : ServiceConfig();
      services.push_back(std::make_unique<QueryService>(service_config));
      auto server = Server::Create(services.back().get(), ServerConfig());
      EXPECT_TRUE(server.ok()) << server.status().ToString();
      servers.push_back(*std::move(server));
      base.shards.push_back({"127.0.0.1", servers.back()->port()});
    }
    base.start_prober = false;
    auto created = Router::Create(std::move(base));
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    router = *std::move(created);
    router->ProbeNow();
  }

  ~ClusterHarness() {
    router.reset();  // pools + prober close before the shards stop
    for (size_t i = 0; i < servers.size(); ++i) {
      if (servers[i] != nullptr) servers[i]->Stop();
      services[i]->Shutdown();
    }
  }

  // SIGKILL-equivalent from the router's perspective: the shard's
  // sockets die and its port stops answering.
  void KillShard(size_t i) {
    servers[i]->Stop();
    services[i]->Shutdown();
  }

  // Restart a killed shard on its old port (fresh state, same address).
  void RestartShard(size_t i) {
    uint16_t port = servers[i]->port();
    services[i] = std::make_unique<QueryService>(ServiceConfig());
    ServerConfig config;
    config.port = port;
    auto server = Server::Create(services[i].get(), config);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    servers[i] = *std::move(server);
  }

  uint64_t SumStat(uint64_t service::StatsSnapshot::*field) const {
    uint64_t sum = 0;
    for (const auto& service : services) sum += service->stats().*field;
    return sum;
  }

  size_t ActiveSessions() const {
    size_t active = 0;
    for (const auto& service : services) active += service->active_sessions();
    return active;
  }

  std::vector<std::unique_ptr<QueryService>> services;
  std::vector<std::unique_ptr<Server>> servers;
  std::unique_ptr<Router> router;
};

TEST(RouterTest, SessionRoundTripLandsOnExactlyOneShard) {
  ClusterHarness cluster(3);
  auto handler = cluster.router->MakeHandler();
  std::string out;
  ASSERT_TRUE(handler->HandleLine("OPEN //a/text()", &out));
  EXPECT_EQ(out, "OK 1\n");
  out.clear();
  handler->HandleLine("PUSH 1 <r><a>one</a><a>two</a></r>", &out);
  handler->HandleLine("CLOSE 1", &out);
  EXPECT_EQ(out, "OK\nITEM one\nITEM two\nOK\n");

  EXPECT_EQ(cluster.SumStat(&service::StatsSnapshot::sessions_opened), 1u);
  EXPECT_EQ(cluster.router->own_counters().sessions_opened, 1u);
  EXPECT_FALSE(cluster.router->FindSession(1).has_value());
}

TEST(RouterTest, TranscriptMatchesSingleNodeByteForByte) {
  // Zero result diffs: the same command sequence through one xsqd
  // (LineProtocol over a local service) and through the 3-shard router
  // must produce identical bytes — session ids, items, RECORD summary,
  // everything.
  const std::string commands[] = {
      "OPEN //a/text()",
      "PUSH 1 <r><a>one</a><a>two</a></r>",
      "CLOSE 1",
      "RECORD dblp <r><a>x</a><a>y</a></r>",
      "OPEN //a/text()",
      "RUNCACHED 2 dblp",
      "CLOSE 2",
      "EVICT dblp",
      "RUNCACHED 99 dblp",  // unknown session: deterministic ERR
  };

  std::string expected;
  {
    QueryService local_service{ServiceConfig()};
    LineProtocol local(&local_service);
    for (const std::string& command : commands) {
      local.HandleLine(command, &expected);
    }
    local.ReleaseAll();
    local_service.Shutdown();
  }

  ClusterHarness cluster(3);
  auto handler = cluster.router->MakeHandler();
  std::string actual;
  for (const std::string& command : commands) {
    handler->HandleLine(command, &actual);
  }
  EXPECT_EQ(actual, expected);
}

TEST(RouterTest, RecordRunCachedAndEvictFollowTheRingOwner) {
  ClusterHarness cluster(3);
  auto handler = cluster.router->MakeHandler();
  std::string out;
  handler->HandleLine("RECORD dblp <r><a>x</a><a>y</a></r>", &out);
  EXPECT_EQ(out.rfind("OK ", 0), 0u) << out;

  size_t owner = *cluster.router->OwnerOf("dblp");
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(cluster.services[i]->stats().doc_cache_documents,
              i == owner ? 1u : 0u)
        << "shard " << i;
  }

  // RUNCACHED binds the session on the owner shard and replays there.
  out.clear();
  handler->HandleLine("OPEN //a/text()", &out);
  ASSERT_EQ(out, "OK 1\n");
  out.clear();
  handler->HandleLine("RUNCACHED 1 dblp", &out);
  EXPECT_EQ(out, "ITEM x\nITEM y\nOK\n");
  EXPECT_EQ(cluster.services[owner]->stats().tape_replays, 1u);

  // EVICT routes to the same owner; a later RUNCACHED relays the
  // shard's ERR (the client's cue to re-RECORD).
  out.clear();
  handler->HandleLine("EVICT dblp", &out);
  EXPECT_EQ(out, "OK\n");
  EXPECT_EQ(cluster.services[owner]->stats().doc_cache_explicit_evictions,
            1u);
  out.clear();
  handler->HandleLine("RUNCACHED 1 dblp", &out);
  EXPECT_EQ(out.rfind("ERR ", 0), 0u) << out;
  out.clear();
  handler->HandleLine("CLOSE 1", &out);
}

TEST(RouterTest, DeadShardFailsOverAndKeysRemapWithinOneProbePass) {
  RouterConfig base;
  base.probe.fail_threshold = 1;  // one missed probe marks a shard dead
  base.backend.connect_timeout_ms = 300;
  base.backend.client_max_retries = 0;
  ClusterHarness cluster(3, base);
  auto handler = cluster.router->MakeHandler();

  std::string out;
  handler->HandleLine("RECORD remap-me <r><a>z</a></r>", &out);
  EXPECT_EQ(out.rfind("OK ", 0), 0u) << out;
  size_t victim = *cluster.router->OwnerOf("remap-me");

  cluster.KillShard(victim);

  // Before any probe notices, the idempotent RECORD already fails over:
  // the transport failure excludes the dead owner locally and the ring
  // walks to the next live shard.
  out.clear();
  handler->HandleLine("RECORD remap-me <r><a>z</a></r>", &out);
  EXPECT_EQ(out.rfind("OK ", 0), 0u) << out;
  EXPECT_GE(cluster.router->own_counters().failovers_total, 1u);

  // One probe pass marks the shard dead and remaps its keys — and only
  // its keys (ShardMapTest pins the only-its-keys half).
  cluster.router->ProbeNow();
  EXPECT_EQ(cluster.router->shard_health(victim), ShardHealth::kDead);
  size_t new_owner = *cluster.router->OwnerOf("remap-me");
  EXPECT_NE(new_owner, victim);
  EXPECT_EQ(cluster.services[new_owner]->stats().doc_cache_documents, 1u);

  // The ring heals: one good probe resurrects a restarted shard and
  // the key moves home.
  cluster.RestartShard(victim);
  cluster.router->ProbeNow();
  EXPECT_EQ(cluster.router->shard_health(victim), ShardHealth::kServing);
  EXPECT_EQ(*cluster.router->OwnerOf("remap-me"), victim);
}

TEST(RouterTest, ProberDistinguishesSheddingFromDead) {
  ServiceConfig tiny;
  tiny.max_sessions = 1;
  ClusterHarness cluster(2, RouterConfig(), {tiny});

  // Saturate shard 0: its /healthz answers 503 shedding (served even
  // while protocol connections would be shed — that is the net-layer
  // fix this tier depends on).
  ClientConfig config;
  config.port = cluster.servers[0]->port();
  Client occupant(config);
  auto open = occupant.Request("OPEN //a");
  ASSERT_TRUE(open.ok() && open->status.ok());

  cluster.router->ProbeNow();
  EXPECT_EQ(cluster.router->shard_health(0), ShardHealth::kShedding);
  EXPECT_EQ(cluster.router->shard_health(1), ShardHealth::kServing);
  // Shedding: off the session-placement mask, still on the ring.
  EXPECT_EQ(*cluster.router->PickSessionShard(), 1u);
  std::vector<bool> alive = cluster.router->AliveMask();
  EXPECT_TRUE(alive[0] && alive[1]);

  // Capacity freed: the next probe pass restores full membership.
  occupant.Close();
  ASSERT_TRUE(WaitFor([&] { return cluster.ActiveSessions() == 0; }));
  cluster.router->ProbeNow();
  EXPECT_EQ(cluster.router->shard_health(0), ShardHealth::kServing);
}

TEST(RouterTest, ScatterGatherMergesStatsAndMetricsExactly) {
  ClusterHarness cluster(3);
  auto handler = cluster.router->MakeHandler();
  std::string out;
  // Non-trivial, spread-out work: a session, a recorded tape, a replay.
  handler->HandleLine("OPEN //a/text()", &out);
  handler->HandleLine("PUSH 1 <r><a>one</a></r>", &out);
  handler->HandleLine("CLOSE 1", &out);
  handler->HandleLine("RECORD doc <r><a>x</a></r>", &out);
  handler->HandleLine("OPEN //a/text()", &out);
  handler->HandleLine("RUNCACHED 2 doc", &out);
  handler->HandleLine("CLOSE 2", &out);

  // Expected sums read straight from the in-process services (exact;
  // the STATS/METRICS scatter below moves none of these counters).
  uint64_t sessions = cluster.SumStat(&service::StatsSnapshot::sessions_opened);
  uint64_t items = cluster.SumStat(&service::StatsSnapshot::items_emitted);
  uint64_t replays = cluster.SumStat(&service::StatsSnapshot::tape_replays);
  uint64_t high_water = 0;
  for (const auto& service : cluster.services) {
    high_water = std::max(high_water, service->stats().queue_high_water);
  }
  ASSERT_GE(sessions, 2u);
  ASSERT_GE(replays, 1u);

  service::StatsSnapshot merged = cluster.router->ClusterStats();
  EXPECT_EQ(merged.sessions_opened, sessions);
  EXPECT_EQ(merged.items_emitted, items);
  EXPECT_EQ(merged.tape_replays, replays);
  EXPECT_EQ(merged.queue_high_water, high_water);

  obs::Exposition metrics = cluster.router->ClusterMetrics();
  const obs::ExpositionSeries* opened = metrics.Find("xsq_sessions_opened");
  ASSERT_NE(opened, nullptr);
  EXPECT_EQ(opened->value, sessions);
  const obs::ExpositionSeries* replay_hist =
      metrics.Find("xsq_tape_replay_us");
  ASSERT_NE(replay_hist, nullptr);
  ASSERT_TRUE(replay_hist->is_histogram);
  // Merged histogram count == sum of the per-shard counts (each shard
  // records one sample per tape replay).
  EXPECT_EQ(replay_hist->hist.count, replays);

  // No scatter failures against an all-healthy roster, and the router's
  // /metrics body carries the merged families plus its own section.
  EXPECT_EQ(cluster.router->own_counters().scatter_failures_total, 0u);
  std::string body = cluster.router->MetricsText();
  EXPECT_NE(body.find("xsq_sessions_opened"), std::string::npos);
  EXPECT_NE(body.find("xsq_router_requests_total"), std::string::npos);
  EXPECT_NE(body.find("xsq_router_shards_serving 3"), std::string::npos);
  EXPECT_NE(body.find("xsq_router_backend_request_us"), std::string::npos);
}

TEST(RouterTest, StatsVerbReportsTheMergedClusterView) {
  ClusterHarness cluster(3);
  auto handler = cluster.router->MakeHandler();
  std::string out;
  handler->HandleLine("OPEN //a/text()", &out);
  handler->HandleLine("PUSH 1 <r><a>v</a></r>", &out);
  handler->HandleLine("CLOSE 1", &out);
  uint64_t sessions = cluster.SumStat(&service::StatsSnapshot::sessions_opened);

  out.clear();
  handler->HandleLine("STATS", &out);
  EXPECT_NE(out.find("STAT sessions_opened " + std::to_string(sessions)),
            std::string::npos)
      << out;
  EXPECT_NE(out.rfind("OK\n"), std::string::npos);
}

TEST(RouterTest, ClusterMetricsFallsBackToTheProbersCachedScrape) {
  ClusterHarness cluster(2);  // ProbeNow in the ctor cached both scrapes
  auto handler = cluster.router->MakeHandler();
  std::string out;
  handler->HandleLine("OPEN //a/text()", &out);
  handler->HandleLine("CLOSE 1", &out);

  cluster.KillShard(0);
  // The dead shard cannot be scraped live, but the prober's cached
  // exposition keeps it present in the merged view (stale beats
  // absent mid-incident), so nothing is counted as a scatter failure.
  obs::Exposition merged = cluster.router->ClusterMetrics();
  EXPECT_NE(merged.Find("xsq_sessions_opened"), nullptr);
  EXPECT_EQ(cluster.router->own_counters().scatter_failures_total, 0u);
}

TEST(RouterTest, DisconnectEnqueuesCancelsAndLeaseClosureReleasesSessions) {
  ClusterHarness cluster(3);
  auto handler = cluster.router->MakeHandler();
  std::string out;
  handler->HandleLine("OPEN //a/text()", &out);
  ASSERT_EQ(out, "OK 1\n");
  ASSERT_TRUE(WaitFor([&] { return cluster.ActiveSessions() == 1; }));

  // The server's disconnect sequence: CancelAll (poll thread — must
  // not block on the network, so it only enqueues), ReleaseAll, then
  // the handler is destroyed and its leases close — each shard sees a
  // disconnect and releases everything opened on it.
  EXPECT_EQ(handler->CancelAll(), 1u);
  EXPECT_GE(cluster.router->own_counters().cancels_enqueued, 1u);
  handler->ReleaseAll();
  handler.reset();
  EXPECT_TRUE(WaitFor([&] { return cluster.ActiveSessions() == 0; }));
  EXPECT_FALSE(cluster.router->FindSession(1).has_value());
}

TEST(RouterTest, CancelWorksCrossConnectionAndPubSubIsNotRouted) {
  ClusterHarness cluster(3);
  auto first = cluster.router->MakeHandler();
  auto second = cluster.router->MakeHandler();
  std::string out;
  first->HandleLine("OPEN //a/text()", &out);
  ASSERT_EQ(out, "OK 1\n");

  // CANCEL is cross-connection by design (routed over pooled
  // connections, like single-node xsqd).
  out.clear();
  second->HandleLine("CANCEL 1", &out);
  EXPECT_EQ(out, "OK\n");

  // Session verbs are connection-scoped: the second connection cannot
  // drive the first's session.
  out.clear();
  second->HandleLine("PUSH 1 <r><a>x</a></r>", &out);
  EXPECT_EQ(out.rfind("ERR InvalidArgument: unknown session id", 0), 0u)
      << out;

  // Pub/sub is per-shard state and not routed.
  out.clear();
  second->HandleLine("SUBSCRIBE //a/text()", &out);
  EXPECT_EQ(out.rfind("ERR NotSupported", 0), 0u) << out;

  out.clear();
  first->HandleLine("CLOSE 1", &out);
}

TEST(RouterTest, ServesTheLineProtocolAndHttpOverTcp) {
  // The full stack: router behind its own net::Server, spoken to with
  // the ordinary client and scraped over HTTP like any xsqd.
  ClusterHarness cluster(3);
  auto server = Server::Create(cluster.router->MakeServerApp(),
                               ServerConfig());
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  ClientConfig config;
  config.port = (*server)->port();
  Client client(config);
  auto open = client.Request("OPEN //a/text()");
  ASSERT_TRUE(open.ok() && open->status.ok());
  client.Request("PUSH " + open->ok_payload + " <r><a>via-router</a></r>");
  auto close = client.Request("CLOSE " + open->ok_payload);
  ASSERT_TRUE(close.ok() && close->status.ok());
  ASSERT_EQ(close->lines.size(), 1u);
  EXPECT_EQ(close->lines[0], "ITEM via-router");

  auto healthz = HttpGet({"127.0.0.1", (*server)->port()}, "/healthz", 2000);
  ASSERT_TRUE(healthz.ok()) << healthz.status().ToString();
  EXPECT_EQ(healthz->code, 200);
  auto metrics = HttpGet({"127.0.0.1", (*server)->port()}, "/metrics", 2000);
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->code, 200);
  EXPECT_NE(metrics->body.find("xsq_sessions_opened"), std::string::npos);
  EXPECT_NE(metrics->body.find("xsq_router_sessions_opened_total 1"),
            std::string::npos);

  (*server)->Stop();
}

}  // namespace
}  // namespace xsq
