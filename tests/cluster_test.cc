// Tests for the cluster front tier (src/cluster/): ShardMap consistent
// hashing, Backend pooling + circuit breaking, HealthProber
// transitions, and the Router end to end against three in-process xsqd
// shards (QueryService + net::Server each), including scatter-gather
// merge equality, dead-shard key remapping, and disconnect-driven
// cross-shard cancellation.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/backend_pool.h"
#include "cluster/gossip.h"
#include "cluster/health.h"
#include "cluster/router.h"
#include "cluster/shard_map.h"
#include "common/failpoints.h"
#include "common/status.h"
#include "gtest/gtest.h"
#include "net/client.h"
#include "net/line_protocol.h"
#include "net/server.h"
#include "obs/exposition.h"
#include "service/query_service.h"
#include "service/stats.h"

namespace xsq {
namespace {

using cluster::Backend;
using cluster::BackendConfig;
using cluster::HttpGet;
using cluster::Replicator;
using cluster::Router;
using cluster::RouterConfig;
using cluster::ShardAddress;
using cluster::ShardHealth;
using cluster::ShardMap;
using net::Client;
using net::ClientConfig;
using net::LineProtocol;
using net::Server;
using net::ServerConfig;
using service::QueryService;
using service::ServiceConfig;

// Binds an ephemeral port, reads it back, releases it. The caller gets
// a port nothing listens on (until it binds it itself).
uint16_t ReserveEphemeralPort() {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

template <typename Predicate>
bool WaitFor(Predicate predicate, int timeout_ms = 5000) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return predicate();
}

// ---------------------------------------------------------------------------
// ShardMap: consistent hashing with virtual nodes.

TEST(ShardMapTest, OwnerIsDeterministicAndUsesEveryShard) {
  ShardMap map(3, 64);
  std::vector<size_t> per_shard(3, 0);
  for (int i = 0; i < 1000; ++i) {
    std::string key = "doc-" + std::to_string(i);
    std::optional<size_t> owner = map.Owner(key);
    ASSERT_TRUE(owner.has_value());
    EXPECT_EQ(map.Owner(key), owner);  // stable across calls
    ++per_shard[*owner];
  }
  // Virtual nodes smooth the distribution: every shard owns a
  // non-trivial slice (the bound is loose on purpose — the point is
  // "no starved shard", not a balance SLO).
  for (size_t shard = 0; shard < 3; ++shard) {
    EXPECT_GT(per_shard[shard], 100u) << "shard " << shard;
  }
}

TEST(ShardMapTest, MaskRemapsOnlyTheDeadShardsKeys) {
  ShardMap map(3, 64);
  const std::vector<bool> all = {true, true, true};
  std::vector<bool> without_one = {true, false, true};
  size_t moved = 0;
  for (int i = 0; i < 1000; ++i) {
    std::string key = "doc-" + std::to_string(i);
    size_t before = *map.Owner(key, all);
    size_t after = *map.Owner(key, without_one);
    if (before == 1) {
      // A dead shard's keys remap to a survivor...
      EXPECT_NE(after, 1u);
      ++moved;
    } else {
      // ...and nobody else's keys move at all.
      EXPECT_EQ(after, before) << key;
    }
  }
  EXPECT_GT(moved, 0u);
}

TEST(ShardMapTest, NoServingShardMeansNoOwner) {
  ShardMap map(2, 8);
  EXPECT_FALSE(map.Owner("doc", {false, false}).has_value());
  EXPECT_EQ(*map.Owner("doc", {false, true}), 1u);
}

// ---------------------------------------------------------------------------
// Backend: pooled requests and the circuit breaker.

TEST(BackendTest, CircuitBreakerOpensFailsFastAndRecovers) {
  uint16_t port = ReserveEphemeralPort();
  BackendConfig config;
  config.breaker_threshold = 2;
  config.breaker_cooldown_ms = 100;
  config.connect_timeout_ms = 200;
  config.request_timeout_ms = 1000;
  config.client_max_retries = 0;  // count transport attempts exactly
  Backend backend({"127.0.0.1", port}, config);

  // Nothing listens: two consecutive transport failures trip the
  // breaker, and the next request fails fast instead of burning a
  // connect timeout.
  EXPECT_FALSE(backend.Request("STATS").ok());
  EXPECT_FALSE(backend.Request("STATS").ok());
  EXPECT_TRUE(backend.circuit_open());
  auto rejected = backend.Request("STATS");
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  Backend::Counters counters = backend.counters();
  EXPECT_GE(counters.failures, 2u);
  EXPECT_GE(counters.breaker_opens, 1u);
  EXPECT_GE(counters.breaker_rejects, 1u);

  // Bring a real shard up on that port: after the cooldown the
  // half-open probe goes through and closes the circuit.
  QueryService service{ServiceConfig()};
  ServerConfig server_config;
  server_config.port = port;
  auto server = Server::Create(&service, server_config);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  EXPECT_TRUE(WaitFor([&] {
    auto response = backend.Request("STATS");
    return response.ok() && response->status.ok();
  }));
  EXPECT_FALSE(backend.circuit_open());
  EXPECT_EQ(backend.outstanding(), 0u);
  (*server)->Stop();
  service.Shutdown();
}

TEST(BackendTest, ErrRepliesNeverTripTheBreaker) {
  QueryService service{ServiceConfig()};
  auto server = Server::Create(&service, ServerConfig());
  ASSERT_TRUE(server.ok());
  BackendConfig config;
  config.breaker_threshold = 2;
  Backend backend({"127.0.0.1", (*server)->port()}, config);
  // An ERR reply is a healthy transport — the shard answered.
  for (int i = 0; i < 5; ++i) {
    auto response = backend.Request("PUSH 99 <r/>");
    ASSERT_TRUE(response.ok());
    EXPECT_FALSE(response->status.ok());
  }
  EXPECT_FALSE(backend.circuit_open());
  EXPECT_EQ(backend.counters().failures, 0u);
  (*server)->Stop();
  service.Shutdown();
}

// ---------------------------------------------------------------------------
// The in-process cluster: N shards (QueryService + net::Server each)
// and a Router over them. The prober runs only when a test says so
// (start_prober=false + ProbeNow), so health transitions are
// deterministic.

struct ClusterHarness {
  explicit ClusterHarness(size_t n, RouterConfig base = RouterConfig(),
                          std::vector<ServiceConfig> shard_configs = {}) {
    for (size_t i = 0; i < n; ++i) {
      ServiceConfig service_config =
          i < shard_configs.size() ? shard_configs[i] : ServiceConfig();
      services.push_back(std::make_unique<QueryService>(service_config));
      auto server = Server::Create(services.back().get(), ServerConfig());
      EXPECT_TRUE(server.ok()) << server.status().ToString();
      servers.push_back(*std::move(server));
      base.shards.push_back({"127.0.0.1", servers.back()->port()});
    }
    base.start_prober = false;
    auto created = Router::Create(std::move(base));
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    router = *std::move(created);
    router->ProbeNow();
  }

  ~ClusterHarness() {
    router.reset();  // pools + prober close before the shards stop
    for (size_t i = 0; i < servers.size(); ++i) {
      if (servers[i] != nullptr) servers[i]->Stop();
      services[i]->Shutdown();
    }
  }

  // SIGKILL-equivalent from the router's perspective: the shard's
  // sockets die and its port stops answering.
  void KillShard(size_t i) {
    servers[i]->Stop();
    services[i]->Shutdown();
  }

  // Restart a killed shard on its old port (fresh state, same address).
  void RestartShard(size_t i) {
    uint16_t port = servers[i]->port();
    services[i] = std::make_unique<QueryService>(ServiceConfig());
    ServerConfig config;
    config.port = port;
    auto server = Server::Create(services[i].get(), config);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    servers[i] = *std::move(server);
  }

  uint64_t SumStat(uint64_t service::StatsSnapshot::*field) const {
    uint64_t sum = 0;
    for (const auto& service : services) sum += service->stats().*field;
    return sum;
  }

  size_t ActiveSessions() const {
    size_t active = 0;
    for (const auto& service : services) active += service->active_sessions();
    return active;
  }

  std::vector<std::unique_ptr<QueryService>> services;
  std::vector<std::unique_ptr<Server>> servers;
  std::unique_ptr<Router> router;
};

TEST(RouterTest, SessionRoundTripLandsOnExactlyOneShard) {
  ClusterHarness cluster(3);
  auto handler = cluster.router->MakeHandler();
  std::string out;
  ASSERT_TRUE(handler->HandleLine("OPEN //a/text()", &out));
  EXPECT_EQ(out, "OK 1\n");
  out.clear();
  handler->HandleLine("PUSH 1 <r><a>one</a><a>two</a></r>", &out);
  handler->HandleLine("CLOSE 1", &out);
  EXPECT_EQ(out, "OK\nITEM one\nITEM two\nOK\n");

  EXPECT_EQ(cluster.SumStat(&service::StatsSnapshot::sessions_opened), 1u);
  EXPECT_EQ(cluster.router->own_counters().sessions_opened, 1u);
  EXPECT_FALSE(cluster.router->FindSession(1).has_value());
}

TEST(RouterTest, TranscriptMatchesSingleNodeByteForByte) {
  // Zero result diffs: the same command sequence through one xsqd
  // (LineProtocol over a local service) and through the 3-shard router
  // must produce identical bytes — session ids, items, RECORD summary,
  // everything.
  const std::string commands[] = {
      "OPEN //a/text()",
      "PUSH 1 <r><a>one</a><a>two</a></r>",
      "CLOSE 1",
      "RECORD dblp <r><a>x</a><a>y</a></r>",
      "OPEN //a/text()",
      "RUNCACHED 2 dblp",
      "CLOSE 2",
      "EVICT dblp",
      "RUNCACHED 99 dblp",  // unknown session: deterministic ERR
  };

  std::string expected;
  {
    QueryService local_service{ServiceConfig()};
    LineProtocol local(&local_service);
    for (const std::string& command : commands) {
      local.HandleLine(command, &expected);
    }
    local.ReleaseAll();
    local_service.Shutdown();
  }

  ClusterHarness cluster(3);
  auto handler = cluster.router->MakeHandler();
  std::string actual;
  for (const std::string& command : commands) {
    handler->HandleLine(command, &actual);
  }
  EXPECT_EQ(actual, expected);
}

TEST(RouterTest, RecordRunCachedAndEvictFollowTheRingOwner) {
  ClusterHarness cluster(3);
  auto handler = cluster.router->MakeHandler();
  std::string out;
  handler->HandleLine("RECORD dblp <r><a>x</a><a>y</a></r>", &out);
  EXPECT_EQ(out.rfind("OK ", 0), 0u) << out;

  size_t owner = *cluster.router->OwnerOf("dblp");
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(cluster.services[i]->stats().doc_cache_documents,
              i == owner ? 1u : 0u)
        << "shard " << i;
  }

  // RUNCACHED binds the session on the owner shard and replays there.
  out.clear();
  handler->HandleLine("OPEN //a/text()", &out);
  ASSERT_EQ(out, "OK 1\n");
  out.clear();
  handler->HandleLine("RUNCACHED 1 dblp", &out);
  EXPECT_EQ(out, "ITEM x\nITEM y\nOK\n");
  EXPECT_EQ(cluster.services[owner]->stats().tape_replays, 1u);

  // EVICT routes to the same owner; a later RUNCACHED relays the
  // shard's ERR (the client's cue to re-RECORD).
  out.clear();
  handler->HandleLine("EVICT dblp", &out);
  EXPECT_EQ(out, "OK\n");
  EXPECT_EQ(cluster.services[owner]->stats().doc_cache_explicit_evictions,
            1u);
  out.clear();
  handler->HandleLine("RUNCACHED 1 dblp", &out);
  EXPECT_EQ(out.rfind("ERR ", 0), 0u) << out;
  out.clear();
  handler->HandleLine("CLOSE 1", &out);
}

TEST(RouterTest, DeadShardFailsOverAndKeysRemapWithinOneProbePass) {
  RouterConfig base;
  base.probe.fail_threshold = 1;  // one missed probe marks a shard dead
  base.backend.connect_timeout_ms = 300;
  base.backend.client_max_retries = 0;
  ClusterHarness cluster(3, base);
  auto handler = cluster.router->MakeHandler();

  std::string out;
  handler->HandleLine("RECORD remap-me <r><a>z</a></r>", &out);
  EXPECT_EQ(out.rfind("OK ", 0), 0u) << out;
  size_t victim = *cluster.router->OwnerOf("remap-me");

  cluster.KillShard(victim);

  // Before any probe notices, the idempotent RECORD already fails over:
  // the transport failure excludes the dead owner locally and the ring
  // walks to the next live shard.
  out.clear();
  handler->HandleLine("RECORD remap-me <r><a>z</a></r>", &out);
  EXPECT_EQ(out.rfind("OK ", 0), 0u) << out;
  EXPECT_GE(cluster.router->own_counters().failovers_total, 1u);

  // One probe pass marks the shard dead and remaps its keys — and only
  // its keys (ShardMapTest pins the only-its-keys half).
  cluster.router->ProbeNow();
  EXPECT_EQ(cluster.router->shard_health(victim), ShardHealth::kDead);
  size_t new_owner = *cluster.router->OwnerOf("remap-me");
  EXPECT_NE(new_owner, victim);
  EXPECT_EQ(cluster.services[new_owner]->stats().doc_cache_documents, 1u);

  // The ring heals: one good probe resurrects a restarted shard and
  // the key moves home.
  cluster.RestartShard(victim);
  cluster.router->ProbeNow();
  EXPECT_EQ(cluster.router->shard_health(victim), ShardHealth::kServing);
  EXPECT_EQ(*cluster.router->OwnerOf("remap-me"), victim);
}

TEST(RouterTest, ProberDistinguishesSheddingFromDead) {
  ServiceConfig tiny;
  tiny.max_sessions = 1;
  ClusterHarness cluster(2, RouterConfig(), {tiny});

  // Saturate shard 0: its /healthz answers 503 shedding (served even
  // while protocol connections would be shed — that is the net-layer
  // fix this tier depends on).
  ClientConfig config;
  config.port = cluster.servers[0]->port();
  Client occupant(config);
  auto open = occupant.Request("OPEN //a");
  ASSERT_TRUE(open.ok() && open->status.ok());

  cluster.router->ProbeNow();
  EXPECT_EQ(cluster.router->shard_health(0), ShardHealth::kShedding);
  EXPECT_EQ(cluster.router->shard_health(1), ShardHealth::kServing);
  // Shedding: off the session-placement mask, still on the ring.
  EXPECT_EQ(*cluster.router->PickSessionShard(), 1u);
  std::vector<bool> alive = cluster.router->AliveMask();
  EXPECT_TRUE(alive[0] && alive[1]);

  // Capacity freed: the next probe pass restores full membership.
  occupant.Close();
  ASSERT_TRUE(WaitFor([&] { return cluster.ActiveSessions() == 0; }));
  cluster.router->ProbeNow();
  EXPECT_EQ(cluster.router->shard_health(0), ShardHealth::kServing);
}

TEST(RouterTest, RiseThresholdKeepsTheRingStableUnderFlap) {
  // Anti-flap hysteresis: a flapping shard (dead, briefly back, dead
  // again) must not rejoin the ring on its first good probe and yank
  // keys back and forth. With rise_threshold=3 the ring changes once
  // on death and once on a *sustained* recovery — two remaps total,
  // not one per flap.
  RouterConfig base;
  base.probe.fail_threshold = 1;
  base.probe.rise_threshold = 3;
  base.backend.connect_timeout_ms = 300;
  base.backend.client_max_retries = 0;
  ClusterHarness cluster(3, base);
  auto handler = cluster.router->MakeHandler();
  std::string out;
  handler->HandleLine("RECORD flappy <r><a>f</a></r>", &out);
  ASSERT_EQ(out.rfind("OK ", 0), 0u) << out;
  size_t victim = *cluster.router->OwnerOf("flappy");

  cluster.KillShard(victim);
  cluster.router->ProbeNow();
  ASSERT_EQ(cluster.router->shard_health(victim), ShardHealth::kDead);
  size_t survivor = *cluster.router->OwnerOf("flappy");
  ASSERT_NE(survivor, victim);

  // The shard comes back, but one good probe is below the threshold:
  // still dead, and the key stays put on the survivor.
  cluster.RestartShard(victim);
  cluster.router->ProbeNow();
  EXPECT_EQ(cluster.router->shard_health(victim), ShardHealth::kDead);
  EXPECT_EQ(*cluster.router->OwnerOf("flappy"), survivor);

  // It flaps again: the success streak resets, so the next good probe
  // after the outage is streak 1, not 3 — the ring never moved.
  cluster.KillShard(victim);
  cluster.router->ProbeNow();
  EXPECT_EQ(cluster.router->shard_health(victim), ShardHealth::kDead);
  cluster.RestartShard(victim);
  cluster.router->ProbeNow();  // streak 1
  EXPECT_EQ(cluster.router->shard_health(victim), ShardHealth::kDead);
  EXPECT_EQ(*cluster.router->OwnerOf("flappy"), survivor);

  // Sustained recovery: the threshold-th consecutive good probe
  // resurrects the shard and the key finally moves home.
  cluster.router->ProbeNow();  // streak 2
  EXPECT_EQ(cluster.router->shard_health(victim), ShardHealth::kDead);
  cluster.router->ProbeNow();  // streak 3: resurrect
  EXPECT_EQ(cluster.router->shard_health(victim), ShardHealth::kServing);
  EXPECT_EQ(*cluster.router->OwnerOf("flappy"), victim);
}

TEST(RouterTest, ScatterGatherMergesStatsAndMetricsExactly) {
  ClusterHarness cluster(3);
  auto handler = cluster.router->MakeHandler();
  std::string out;
  // Non-trivial, spread-out work: a session, a recorded tape, a replay.
  handler->HandleLine("OPEN //a/text()", &out);
  handler->HandleLine("PUSH 1 <r><a>one</a></r>", &out);
  handler->HandleLine("CLOSE 1", &out);
  handler->HandleLine("RECORD doc <r><a>x</a></r>", &out);
  handler->HandleLine("OPEN //a/text()", &out);
  handler->HandleLine("RUNCACHED 2 doc", &out);
  handler->HandleLine("CLOSE 2", &out);

  // Expected sums read straight from the in-process services (exact;
  // the STATS/METRICS scatter below moves none of these counters).
  uint64_t sessions = cluster.SumStat(&service::StatsSnapshot::sessions_opened);
  uint64_t items = cluster.SumStat(&service::StatsSnapshot::items_emitted);
  uint64_t replays = cluster.SumStat(&service::StatsSnapshot::tape_replays);
  uint64_t high_water = 0;
  for (const auto& service : cluster.services) {
    high_water = std::max(high_water, service->stats().queue_high_water);
  }
  ASSERT_GE(sessions, 2u);
  ASSERT_GE(replays, 1u);

  service::StatsSnapshot merged = cluster.router->ClusterStats();
  EXPECT_EQ(merged.sessions_opened, sessions);
  EXPECT_EQ(merged.items_emitted, items);
  EXPECT_EQ(merged.tape_replays, replays);
  EXPECT_EQ(merged.queue_high_water, high_water);

  obs::Exposition metrics = cluster.router->ClusterMetrics();
  const obs::ExpositionSeries* opened = metrics.Find("xsq_sessions_opened");
  ASSERT_NE(opened, nullptr);
  EXPECT_EQ(opened->value, sessions);
  const obs::ExpositionSeries* replay_hist =
      metrics.Find("xsq_tape_replay_us");
  ASSERT_NE(replay_hist, nullptr);
  ASSERT_TRUE(replay_hist->is_histogram);
  // Merged histogram count == sum of the per-shard counts (each shard
  // records one sample per tape replay).
  EXPECT_EQ(replay_hist->hist.count, replays);

  // No scatter failures against an all-healthy roster, and the router's
  // /metrics body carries the merged families plus its own section.
  EXPECT_EQ(cluster.router->own_counters().scatter_failures_total, 0u);
  std::string body = cluster.router->MetricsText();
  EXPECT_NE(body.find("xsq_sessions_opened"), std::string::npos);
  EXPECT_NE(body.find("xsq_router_requests_total"), std::string::npos);
  EXPECT_NE(body.find("xsq_router_shards_serving 3"), std::string::npos);
  EXPECT_NE(body.find("xsq_router_backend_request_us"), std::string::npos);
}

TEST(RouterTest, StatsVerbReportsTheMergedClusterView) {
  ClusterHarness cluster(3);
  auto handler = cluster.router->MakeHandler();
  std::string out;
  handler->HandleLine("OPEN //a/text()", &out);
  handler->HandleLine("PUSH 1 <r><a>v</a></r>", &out);
  handler->HandleLine("CLOSE 1", &out);
  uint64_t sessions = cluster.SumStat(&service::StatsSnapshot::sessions_opened);

  out.clear();
  handler->HandleLine("STATS", &out);
  EXPECT_NE(out.find("STAT sessions_opened " + std::to_string(sessions)),
            std::string::npos)
      << out;
  EXPECT_NE(out.rfind("OK\n"), std::string::npos);
}

TEST(RouterTest, ClusterMetricsFallsBackToTheProbersCachedScrape) {
  ClusterHarness cluster(2);  // ProbeNow in the ctor cached both scrapes
  auto handler = cluster.router->MakeHandler();
  std::string out;
  handler->HandleLine("OPEN //a/text()", &out);
  handler->HandleLine("CLOSE 1", &out);

  cluster.KillShard(0);
  // The dead shard cannot be scraped live, but the prober's cached
  // exposition keeps it present in the merged view (stale beats
  // absent mid-incident), so nothing is counted as a scatter failure.
  obs::Exposition merged = cluster.router->ClusterMetrics();
  EXPECT_NE(merged.Find("xsq_sessions_opened"), nullptr);
  EXPECT_EQ(cluster.router->own_counters().scatter_failures_total, 0u);
}

TEST(RouterTest, DisconnectEnqueuesCancelsAndLeaseClosureReleasesSessions) {
  ClusterHarness cluster(3);
  auto handler = cluster.router->MakeHandler();
  std::string out;
  handler->HandleLine("OPEN //a/text()", &out);
  ASSERT_EQ(out, "OK 1\n");
  ASSERT_TRUE(WaitFor([&] { return cluster.ActiveSessions() == 1; }));

  // The server's disconnect sequence: CancelAll (poll thread — must
  // not block on the network, so it only enqueues), ReleaseAll, then
  // the handler is destroyed and its leases close — each shard sees a
  // disconnect and releases everything opened on it.
  EXPECT_EQ(handler->CancelAll(), 1u);
  EXPECT_GE(cluster.router->own_counters().cancels_enqueued, 1u);
  handler->ReleaseAll();
  handler.reset();
  EXPECT_TRUE(WaitFor([&] { return cluster.ActiveSessions() == 0; }));
  EXPECT_FALSE(cluster.router->FindSession(1).has_value());
}

TEST(RouterTest, CancelWorksCrossConnectionAndPubSubIsNotRouted) {
  ClusterHarness cluster(3);
  auto first = cluster.router->MakeHandler();
  auto second = cluster.router->MakeHandler();
  std::string out;
  first->HandleLine("OPEN //a/text()", &out);
  ASSERT_EQ(out, "OK 1\n");

  // CANCEL is cross-connection by design (routed over pooled
  // connections, like single-node xsqd).
  out.clear();
  second->HandleLine("CANCEL 1", &out);
  EXPECT_EQ(out, "OK\n");

  // Session verbs are connection-scoped: the second connection cannot
  // drive the first's session.
  out.clear();
  second->HandleLine("PUSH 1 <r><a>x</a></r>", &out);
  EXPECT_EQ(out.rfind("ERR InvalidArgument: unknown session id", 0), 0u)
      << out;

  // Pub/sub is per-shard state and not routed.
  out.clear();
  second->HandleLine("SUBSCRIBE //a/text()", &out);
  EXPECT_EQ(out.rfind("ERR NotSupported", 0), 0u) << out;

  out.clear();
  first->HandleLine("CLOSE 1", &out);
}

TEST(RouterTest, ServesTheLineProtocolAndHttpOverTcp) {
  // The full stack: router behind its own net::Server, spoken to with
  // the ordinary client and scraped over HTTP like any xsqd.
  ClusterHarness cluster(3);
  auto server = Server::Create(cluster.router->MakeServerApp(),
                               ServerConfig());
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  ClientConfig config;
  config.port = (*server)->port();
  Client client(config);
  auto open = client.Request("OPEN //a/text()");
  ASSERT_TRUE(open.ok() && open->status.ok());
  client.Request("PUSH " + open->ok_payload + " <r><a>via-router</a></r>");
  auto close = client.Request("CLOSE " + open->ok_payload);
  ASSERT_TRUE(close.ok() && close->status.ok());
  ASSERT_EQ(close->lines.size(), 1u);
  EXPECT_EQ(close->lines[0], "ITEM via-router");

  auto healthz = HttpGet({"127.0.0.1", (*server)->port()}, "/healthz", 2000);
  ASSERT_TRUE(healthz.ok()) << healthz.status().ToString();
  EXPECT_EQ(healthz->code, 200);
  auto metrics = HttpGet({"127.0.0.1", (*server)->port()}, "/metrics", 2000);
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->code, 200);
  EXPECT_NE(metrics->body.find("xsq_sessions_opened"), std::string::npos);
  EXPECT_NE(metrics->body.find("xsq_router_sessions_opened_total 1"),
            std::string::npos);

  (*server)->Stop();
}

// ---------------------------------------------------------------------------
// Replication: owner sets, RECORD fanout, replica failover, read
// repair, anti-entropy, and the REPLPULL shard-to-shard transfer.

TEST(ShardMapTest, OwnersWalkOrderIsTheFailoverOrder) {
  ShardMap map(4, 64);
  const std::vector<bool> all(4, true);
  for (int i = 0; i < 200; ++i) {
    std::string key = "doc-" + std::to_string(i);
    std::vector<size_t> owners = map.Owners(key, 2, all);
    ASSERT_EQ(owners.size(), 2u);
    EXPECT_EQ(owners[0], *map.Owner(key, all));
    EXPECT_NE(owners[0], owners[1]);
    // The property replication leans on: kill the primary and the new
    // Owner() is exactly the replica that received the fanout.
    std::vector<bool> mask = all;
    mask[owners[0]] = false;
    EXPECT_EQ(*map.Owner(key, mask), owners[1]) << key;
  }
}

TEST(ShardMapTest, OwnersClampsToTheServingShards) {
  ShardMap map(3, 32);
  EXPECT_EQ(map.Owners("doc", 5, {true, true, true}).size(), 3u);
  EXPECT_EQ(map.Owners("doc", 2, {false, true, false}),
            std::vector<size_t>{1});
  EXPECT_TRUE(map.Owners("doc", 2, {false, false, false}).empty());
  EXPECT_TRUE(map.Owners("doc", 0, {true, true, true}).empty());
}

RouterConfig ReplicatedConfig(size_t factor = 2) {
  RouterConfig base;
  base.replication.factor = factor;
  base.probe.fail_threshold = 1;
  base.backend.connect_timeout_ms = 300;
  base.backend.client_max_retries = 0;
  return base;
}

TEST(ReplicationTest, RecordFansTapesToExactlyTheOwnerSet) {
  ClusterHarness cluster(3, ReplicatedConfig());
  // The harness's first ProbeNow always reports a mask change and
  // requests the initial sweep; drain it so the exact-count asserts
  // below see only the RECORD fanouts.
  ASSERT_TRUE(cluster.router->replicator()->WaitIdle());
  auto handler = cluster.router->MakeHandler();
  const std::vector<bool> all(3, true);
  std::string out;
  for (int i = 0; i < 8; ++i) {
    out.clear();
    handler->HandleLine(
        "RECORD doc-" + std::to_string(i) + " <r><a>v</a></r>", &out);
    ASSERT_EQ(out.rfind("OK ", 0), 0u) << out;
  }
  ASSERT_TRUE(cluster.router->replicator()->WaitIdle());
  for (int i = 0; i < 8; ++i) {
    std::string key = "doc-" + std::to_string(i);
    std::vector<size_t> owners =
        cluster.router->shard_map().Owners(key, 2, all);
    ASSERT_EQ(owners.size(), 2u);
    for (size_t shard = 0; shard < 3; ++shard) {
      bool is_owner = shard == owners[0] || shard == owners[1];
      EXPECT_EQ(cluster.services[shard]->ServeTape(key).ok(), is_owner)
          << key << " on shard " << shard;
    }
  }
  Replicator::Counters repl = cluster.router->replicator()->counters();
  EXPECT_EQ(repl.fanouts, 8u);
  EXPECT_EQ(repl.repaired, 8u);
  EXPECT_EQ(repl.failed, 0u);
  EXPECT_EQ(cluster.router->replicator()->known_keys(), 8u);
}

TEST(ReplicationTest, DeadPrimaryServesByteIdenticalReplayFromReplica) {
  ClusterHarness cluster(3, ReplicatedConfig());
  auto handler = cluster.router->MakeHandler();
  std::string out;
  handler->HandleLine("RECORD stable <r><a>x</a><a>y</a></r>", &out);
  ASSERT_EQ(out.rfind("OK ", 0), 0u) << out;
  ASSERT_TRUE(cluster.router->replicator()->WaitIdle());
  std::vector<size_t> owners =
      cluster.router->shard_map().Owners("stable", 2, {true, true, true});
  ASSERT_EQ(owners.size(), 2u);

  // Baseline replay through the healthy primary.
  out.clear();
  handler->HandleLine("OPEN //a/text()", &out);
  ASSERT_EQ(out, "OK 1\n");
  out.clear();
  handler->HandleLine("RUNCACHED 1 stable", &out);
  const std::string replay = out;
  EXPECT_EQ(replay, "ITEM x\nITEM y\nOK\n");
  out.clear();
  handler->HandleLine("CLOSE 1", &out);

  cluster.KillShard(owners[0]);
  cluster.router->ProbeNow();
  ASSERT_EQ(cluster.router->shard_health(owners[0]), ShardHealth::kDead);

  // The key's new ring owner is the replica, which already holds the
  // tape: the replay is byte-identical with zero client re-records.
  out.clear();
  handler->HandleLine("OPEN //a/text()", &out);
  ASSERT_EQ(out, "OK 2\n");
  out.clear();
  handler->HandleLine("RUNCACHED 2 stable", &out);
  EXPECT_EQ(out, replay);
  EXPECT_GE(cluster.services[owners[1]]->stats().tape_replays, 1u);
  out.clear();
  handler->HandleLine("CLOSE 2", &out);
}

TEST(ReplicationTest, MissOnTheOwnerFailsOverToTheReplicaAndReadRepairs) {
  ClusterHarness cluster(3, ReplicatedConfig());
  auto handler = cluster.router->MakeHandler();
  std::string out;
  handler->HandleLine("RECORD repairme <r><a>q</a></r>", &out);
  ASSERT_EQ(out.rfind("OK ", 0), 0u) << out;
  ASSERT_TRUE(cluster.router->replicator()->WaitIdle());
  std::vector<size_t> owners =
      cluster.router->shard_map().Owners("repairme", 2, {true, true, true});
  ASSERT_EQ(owners.size(), 2u);

  // The primary silently loses the tape (evicted behind the router's
  // back); the shard itself stays healthy.
  ASSERT_TRUE(cluster.services[owners[0]]->EvictDocument("repairme").ok());

  // RUNCACHED does not relay the miss: the replica owner serves it.
  out.clear();
  handler->HandleLine("OPEN //a/text()", &out);
  ASSERT_EQ(out, "OK 1\n");
  out.clear();
  handler->HandleLine("RUNCACHED 1 repairme", &out);
  EXPECT_EQ(out, "ITEM q\nOK\n");
  EXPECT_GE(cluster.router->own_counters().failovers_total, 1u);

  // ...and read repair pushed the replica's copy back to the primary.
  ASSERT_TRUE(cluster.router->replicator()->WaitIdle());
  EXPECT_TRUE(cluster.services[owners[0]]->ServeTape("repairme").ok());
  EXPECT_GE(cluster.services[owners[0]]->stats().repl_ingests, 1u);
  out.clear();
  handler->HandleLine("CLOSE 1", &out);
}

TEST(ReplicationTest, AntiEntropySweepRestoresTheFactorAfterARestart) {
  ClusterHarness cluster(3, ReplicatedConfig());
  auto handler = cluster.router->MakeHandler();
  std::string out;
  handler->HandleLine("RECORD sweepme <r><a>s</a></r>", &out);
  ASSERT_EQ(out.rfind("OK ", 0), 0u) << out;
  ASSERT_TRUE(cluster.router->replicator()->WaitIdle());
  std::vector<size_t> owners =
      cluster.router->shard_map().Owners("sweepme", 2, {true, true, true});
  ASSERT_EQ(owners.size(), 2u);

  // The replica dies and comes back empty: under-replicated. (The
  // emptiness check sits BEFORE the probe pass that rejoins the shard
  // to the ring — that pass changes the mask and so requests an async
  // sweep, which may repair the copy before this thread looks again.)
  cluster.KillShard(owners[1]);
  cluster.router->ProbeNow();
  cluster.RestartShard(owners[1]);
  ASSERT_FALSE(cluster.services[owners[1]]->ServeTape("sweepme").ok());
  cluster.router->ProbeNow();
  ASSERT_EQ(cluster.router->shard_health(owners[1]), ShardHealth::kServing);

  // One sweep pass detects the missing copy and REPLPULLs it from the
  // surviving holder.
  cluster.router->replicator()->SweepNow();
  ASSERT_TRUE(cluster.router->replicator()->WaitIdle());
  EXPECT_TRUE(cluster.services[owners[1]]->ServeTape("sweepme").ok());
  Replicator::Counters repl = cluster.router->replicator()->counters();
  EXPECT_GE(repl.sweeps, 1u);
  EXPECT_GE(repl.repaired, 2u);  // the fanout + the sweep repair
}

TEST(ReplicationTest, FanoutQueueSurvivesThePrimaryCrashWindow) {
  // The partial-replication window: the client holds an ACK but the
  // replica fan-out has not run yet, and the primary dies. The queue
  // buffered the full RECORD line, so releasing it delivers the bytes
  // to the surviving replica — zero client re-records.
  RouterConfig base = ReplicatedConfig();
  base.replication.start_workers = false;  // freeze the fanout queue
  ClusterHarness cluster(3, base);
  auto handler = cluster.router->MakeHandler();
  std::string out;
  handler->HandleLine("RECORD windowed <r><a>w1</a><a>w2</a></r>", &out);
  ASSERT_EQ(out.rfind("OK ", 0), 0u) << out;
  std::vector<size_t> owners =
      cluster.router->shard_map().Owners("windowed", 2, {true, true, true});
  ASSERT_EQ(owners.size(), 2u);
  ASSERT_FALSE(cluster.services[owners[1]]->ServeTape("windowed").ok());
  EXPECT_EQ(cluster.router->replicator()->counters().pending, 1u);

  cluster.KillShard(owners[0]);  // crash inside the window
  cluster.router->ProbeNow();

  cluster.router->replicator()->Start();  // the queue thaws
  ASSERT_TRUE(cluster.router->replicator()->WaitIdle());
  EXPECT_TRUE(cluster.services[owners[1]]->ServeTape("windowed").ok());

  // Reads succeed from the replica without any client re-record...
  out.clear();
  handler->HandleLine("OPEN //a/text()", &out);
  ASSERT_EQ(out, "OK 1\n");
  out.clear();
  handler->HandleLine("RUNCACHED 1 windowed", &out);
  EXPECT_EQ(out, "ITEM w1\nITEM w2\nOK\n");
  out.clear();
  handler->HandleLine("CLOSE 1", &out);

  // ...and one sweep restores the full factor on the surviving pair.
  cluster.router->replicator()->SweepNow();
  ASSERT_TRUE(cluster.router->replicator()->WaitIdle());
  size_t third = 3 - owners[0] - owners[1];
  EXPECT_TRUE(cluster.services[third]->ServeTape("windowed").ok());
}

TEST(ReplicationTest, EvictFansToEveryOwnerAndReplStatusReports) {
  ClusterHarness cluster(3, ReplicatedConfig());
  auto handler = cluster.router->MakeHandler();
  std::string out;
  handler->HandleLine("RECORD gone <r><a>g</a></r>", &out);
  ASSERT_EQ(out.rfind("OK ", 0), 0u) << out;
  ASSERT_TRUE(cluster.router->replicator()->WaitIdle());
  std::vector<size_t> owners =
      cluster.router->shard_map().Owners("gone", 2, {true, true, true});

  out.clear();
  handler->HandleLine("EVICT gone", &out);
  EXPECT_EQ(out, "OK\n");
  for (size_t owner : owners) {
    EXPECT_FALSE(cluster.services[owner]->ServeTape("gone").ok())
        << "shard " << owner;
  }
  EXPECT_EQ(cluster.router->replicator()->known_keys(), 0u);

  out.clear();
  handler->HandleLine("REPLSTATUS", &out);
  EXPECT_EQ(out.rfind("REPL factor=2 keys=0", 0), 0u) << out;
  EXPECT_NE(out.find("\nOK\n"), std::string::npos) << out;

  // The router's own metrics section carries the replication plane.
  std::string body = cluster.router->MetricsText();
  EXPECT_NE(body.find("xsq_router_repl_pending"), std::string::npos);
  EXPECT_NE(body.find("xsq_router_repl_repaired_total"), std::string::npos);
  EXPECT_NE(body.find("xsq_router_repl_failed_total"), std::string::npos);
}

TEST(ReplicationTest, ReplPullServesPullsAndSurvivesCorruptPayloads) {
  // The shard-side transfer verb, driven directly over TCP.
  QueryService source_service{ServiceConfig()};
  auto source = Server::Create(&source_service, ServerConfig());
  ASSERT_TRUE(source.ok());
  QueryService sink_service{ServiceConfig()};
  auto sink = Server::Create(&sink_service, ServerConfig());
  ASSERT_TRUE(sink.ok());

  ClientConfig source_config;
  source_config.port = (*source)->port();
  Client source_client(source_config);
  auto recorded = source_client.Request("RECORD xfer <r><a>t</a></r>");
  ASSERT_TRUE(recorded.ok() && recorded->status.ok());

  // Serve mode streams one TAPE line; a miss is the canonical ERR.
  auto served = source_client.Request("REPLPULL xfer");
  ASSERT_TRUE(served.ok() && served->status.ok());
  ASSERT_EQ(served->lines.size(), 1u);
  EXPECT_EQ(served->lines[0].rfind("TAPE ", 0), 0u);
  auto missing = source_client.Request("REPLPULL nosuch");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status.code(), StatusCode::kInvalidArgument);

  // Pull mode: the sink fetches from the source and can replay it.
  ClientConfig sink_config;
  sink_config.port = (*sink)->port();
  Client sink_client(sink_config);
  auto pulled = sink_client.Request(
      "REPLPULL xfer 127.0.0.1:" + std::to_string((*source)->port()));
  ASSERT_TRUE(pulled.ok() && pulled->status.ok()) << pulled->status.ToString();
  auto open = sink_client.Request("OPEN //a/text()");
  ASSERT_TRUE(open.ok() && open->status.ok());
  auto replay = sink_client.Request("RUNCACHED " + open->ok_payload + " xfer");
  ASSERT_TRUE(replay.ok() && replay->status.ok());
  ASSERT_EQ(replay->lines.size(), 1u);
  EXPECT_EQ(replay->lines[0], "ITEM t");
  sink_client.Request("CLOSE " + open->ok_payload);

  // A corrupted transfer is rejected by the CRC on ingest and counted.
  std::string tape_bytes = LineProtocol::Unescape(
      std::string_view(served->lines[0]).substr(5));
  tape_bytes[tape_bytes.size() / 2] ^= 0x40;
  auto corrupt = sink_service.IngestTape("xfer", std::move(tape_bytes));
  ASSERT_FALSE(corrupt.ok());
  EXPECT_EQ(corrupt.status().code(), StatusCode::kDataCorruption);

  auto status = sink_client.Request("REPLSTATUS");
  ASSERT_TRUE(status.ok() && status->status.ok());
  ASSERT_EQ(status->lines.size(), 1u);
  EXPECT_EQ(status->lines[0].rfind("DOC xfer ", 0), 0u);
  EXPECT_NE(status->ok_payload.find("ingests=1"), std::string::npos);
  EXPECT_NE(status->ok_payload.find("corrupt=1"), std::string::npos);

  (*source)->Stop();
  source_service.Shutdown();
  (*sink)->Stop();
  sink_service.Shutdown();
}

TEST(ReplicationTest, ReplPullEnforcesTheTapeByteCapOnBothSides) {
  // --max-tape-bytes bounds the shard-to-shard transfer: an oversized
  // tape is refused with a clean ERR LimitExceeded on the serve side
  // AND on the pull side, and the puller never half-installs it.
  ServiceConfig capped;
  capped.max_tape_bytes = 64;  // far below any real tape image
  QueryService source_service{ServiceConfig()};
  auto source = Server::Create(&source_service, ServerConfig());
  ASSERT_TRUE(source.ok());
  QueryService capped_service{capped};
  auto capped_server = Server::Create(&capped_service, ServerConfig());
  ASSERT_TRUE(capped_server.ok());

  ClientConfig source_config;
  source_config.port = (*source)->port();
  Client source_client(source_config);
  auto recorded =
      source_client.Request("RECORD big <r><a>payload-payload</a></r>");
  ASSERT_TRUE(recorded.ok() && recorded->status.ok());

  // Serve side: the capped daemon refuses to *send* an oversized tape.
  ClientConfig capped_config;
  capped_config.port = (*capped_server)->port();
  Client capped_client(capped_config);
  auto r = capped_client.Request("RECORD big <r><a>payload-payload</a></r>");
  ASSERT_TRUE(r.ok() && r->status.ok());
  auto served = capped_client.Request("REPLPULL big");
  ASSERT_TRUE(served.ok());
  EXPECT_EQ(served->status.code(), StatusCode::kLimitExceeded)
      << served->status.ToString();

  // Pull side: the capped daemon refuses to *install* one, and stays
  // clean — no half-installed tape, no ingest counted.
  ASSERT_TRUE(capped_service.EvictDocument("big").ok());
  auto pulled = capped_client.Request(
      "REPLPULL big 127.0.0.1:" + std::to_string((*source)->port()));
  ASSERT_TRUE(pulled.ok());
  EXPECT_EQ(pulled->status.code(), StatusCode::kLimitExceeded)
      << pulled->status.ToString();
  EXPECT_FALSE(capped_service.ServeTape("big").ok());
  EXPECT_EQ(capped_service.stats().repl_ingests, 0u);

  // An uncapped sink pulling the same tape goes through: the cap, not
  // the transfer, is what failed above.
  QueryService sink_service{ServiceConfig()};
  auto sink = Server::Create(&sink_service, ServerConfig());
  ASSERT_TRUE(sink.ok());
  ClientConfig sink_config;
  sink_config.port = (*sink)->port();
  Client sink_client(sink_config);
  auto fine = sink_client.Request(
      "REPLPULL big 127.0.0.1:" + std::to_string((*source)->port()));
  ASSERT_TRUE(fine.ok());
  EXPECT_TRUE(fine->status.ok()) << fine->status.ToString();
  EXPECT_TRUE(sink_service.ServeTape("big").ok());

  (*source)->Stop();
  source_service.Shutdown();
  (*capped_server)->Stop();
  capped_service.Shutdown();
  (*sink)->Stop();
  sink_service.Shutdown();
}

TEST(ReplicationTest, ReplPullDeadlineBoundsAStalledPeer) {
  // A peer that accepts the connection and then never answers must not
  // wedge the pulling shard's worker: --replpull-deadline-ms bounds the
  // fetch and surfaces a clean error.
  int stall_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(stall_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::bind(stall_fd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(stall_fd, 4), 0);
  socklen_t len = sizeof(addr);
  ::getsockname(stall_fd, reinterpret_cast<sockaddr*>(&addr), &len);
  uint16_t stall_port = ntohs(addr.sin_port);

  ServiceConfig bounded;
  bounded.replpull_deadline_ms = 300;
  QueryService service{bounded};
  auto server = Server::Create(&service, ServerConfig());
  ASSERT_TRUE(server.ok());
  ClientConfig config;
  config.port = (*server)->port();
  config.request_timeout_ms = 10000;  // the shard's deadline, not ours
  Client client(config);

  auto start = std::chrono::steady_clock::now();
  auto pulled = client.Request("REPLPULL stuck 127.0.0.1:" +
                               std::to_string(stall_port));
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  ASSERT_TRUE(pulled.ok());
  EXPECT_FALSE(pulled->status.ok());
  // Bounded by the 300ms deadline (plus slack), nowhere near the 5s
  // default or an unbounded hang.
  EXPECT_LT(elapsed, 2500) << "REPLPULL did not honor the deadline";

  ::close(stall_fd);
  (*server)->Stop();
  service.Shutdown();
}

// ---------------------------------------------------------------------------
// The GOSSIP verb on the router's protocol surface. The merge algebra
// and agent semantics live in gossip_test; here we pin the wire-level
// behavior: routing state adopted from a peer's digest changes what
// the router serves, and the metrics section reports the gossip plane.

TEST(RouterTest, GossipVerbMergesARemoteDigestIntoTheRing) {
  RouterConfig base;
  base.gossip.enable = true;
  base.gossip.start = false;  // no background thread: verb-driven only
  ClusterHarness cluster(3, base);
  auto handler = cluster.router->MakeHandler();
  ASSERT_NE(cluster.router->gossip(), nullptr);

  // A peer router observed shard 0 dead at a fresh epoch; its digest
  // arriving over the verb must flip our ring within this one round.
  cluster::GossipDigest remote = cluster.router->gossip()->Snapshot();
  remote.shards[0].epoch += 1;
  remote.shards[0].health = ShardHealth::kDead;
  remote.keys["peer-doc"] = {1, false};
  std::string out;
  ASSERT_TRUE(handler->HandleLine("GOSSIP " + remote.EncodeWire(), &out));
  EXPECT_EQ(out.rfind("DIGEST ", 0), 0u) << out;
  EXPECT_NE(out.find("\nOK adopted=2\n"), std::string::npos) << out;
  EXPECT_EQ(cluster.router->shard_health(0), ShardHealth::kDead);
  EXPECT_EQ(cluster.router->replicator()->known_keys(), 1u);

  // The reply's DIGEST line is our post-merge state: a second delivery
  // of the same digest adopts nothing (idempotent on the wire too).
  out.clear();
  handler->HandleLine("GOSSIP " + remote.EncodeWire(), &out);
  EXPECT_NE(out.find("\nOK adopted=0\n"), std::string::npos) << out;

  // Malformed payloads answer ERR without disturbing the ring.
  out.clear();
  handler->HandleLine("GOSSIP", &out);
  EXPECT_EQ(out.rfind("ERR ", 0), 0u) << out;
  out.clear();
  handler->HandleLine("GOSSIP corrupt-token", &out);
  EXPECT_EQ(out.rfind("ERR ", 0), 0u) << out;
  EXPECT_EQ(cluster.router->shard_health(1), ShardHealth::kServing);

  // The gossip counters ride the router's own metrics section.
  std::string body = cluster.router->MetricsText();
  EXPECT_NE(body.find("xsq_router_gossip_rounds_total"), std::string::npos);
  EXPECT_NE(body.find("xsq_router_gossip_merges_total 2"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("xsq_router_gossip_peer_down_total"),
            std::string::npos);
}

TEST(RouterTest, GossipVerbIsNotSupportedWhenGossipIsOff) {
  ClusterHarness cluster(2);
  auto handler = cluster.router->MakeHandler();
  std::string out;
  handler->HandleLine("GOSSIP anything", &out);
  EXPECT_EQ(out.rfind("ERR NotSupported", 0), 0u) << out;
  // The metrics section still exposes the (zeroed) gossip families so
  // dashboards need no conditional scrape config.
  std::string body = cluster.router->MetricsText();
  EXPECT_NE(body.find("xsq_router_gossip_rounds_total 0"),
            std::string::npos);
}

TEST(ClusterReplFailPointsTest, ArmedSendSiteDropsJobsAndSweepHeals) {
  if (!kFailPointsCompiledIn) {
    GTEST_SKIP() << "failpoints compiled out (-DXSQ_FAILPOINTS=OFF)";
  }
  RouterConfig base = ReplicatedConfig();
  base.replication.max_attempts = 2;
  base.replication.retry_backoff_ms = 5;
  ClusterHarness cluster(3, base);
  auto handler = cluster.router->MakeHandler();

  FailPoints::Instance().Arm("cluster.repl.fail");
  std::string out;
  handler->HandleLine("RECORD fp-doc <r><a>f</a></r>", &out);
  ASSERT_EQ(out.rfind("OK ", 0), 0u) << out;
  ASSERT_TRUE(cluster.router->replicator()->WaitIdle());
  FailPoints::Instance().DisarmAll();

  // Every send attempt fired the failpoint: the fanout job burned its
  // retries and was dropped — cleanly, as a counter, not a crash.
  std::vector<size_t> owners =
      cluster.router->shard_map().Owners("fp-doc", 2, {true, true, true});
  Replicator::Counters repl = cluster.router->replicator()->counters();
  EXPECT_GE(repl.failed, 1u);
  EXPECT_FALSE(cluster.services[owners[1]]->ServeTape("fp-doc").ok());

  // With the site disarmed, anti-entropy repairs what the drops lost.
  cluster.router->replicator()->SweepNow();
  ASSERT_TRUE(cluster.router->replicator()->WaitIdle());
  EXPECT_TRUE(cluster.services[owners[1]]->ServeTape("fp-doc").ok());
}

}  // namespace
}  // namespace xsq
