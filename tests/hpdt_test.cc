#include "core/hpdt.h"

#include <gtest/gtest.h>

#include "xpath/ast.h"

namespace xsq::core {
namespace {

std::unique_ptr<Hpdt> BuildOk(std::string_view query_text) {
  Result<xpath::Query> query = xpath::ParseQuery(query_text);
  EXPECT_TRUE(query.ok()) << query.status().ToString();
  Result<std::unique_ptr<Hpdt>> hpdt = Hpdt::Build(*query);
  EXPECT_TRUE(hpdt.ok()) << hpdt.status().ToString();
  return *std::move(hpdt);
}

const Bpdt* Find(const Hpdt& hpdt, int layer, uint64_t position) {
  for (const auto& bpdt : hpdt.bpdts()) {
    if (bpdt->layer == layer && bpdt->position == position) {
      return bpdt.get();
    }
  }
  return nullptr;
}

TEST(HpdtTest, Figure11Structure) {
  // The paper's running example: //pub[year>2000]//book[author]//name.
  auto hpdt = BuildOk("//pub[year>2000]//book[author]//name/text()");
  EXPECT_EQ(hpdt->num_layers(), 3);
  // bpdt(0,0); bpdt(1,1); bpdt(2,2),(2,3); bpdt(3,4)..(3,7): 8 total,
  // exactly the boxes of Figure 11.
  EXPECT_EQ(hpdt->bpdt_count(), 8u);
  EXPECT_NE(Find(*hpdt, 0, 0), nullptr);
  EXPECT_NE(Find(*hpdt, 1, 1), nullptr);
  EXPECT_NE(Find(*hpdt, 2, 2), nullptr);
  EXPECT_NE(Find(*hpdt, 2, 3), nullptr);
  for (uint64_t k = 4; k <= 7; ++k) {
    EXPECT_NE(Find(*hpdt, 3, k), nullptr) << k;
  }
}

TEST(HpdtTest, LeftChildHangsOffTrueRightOffNa) {
  auto hpdt = BuildOk("//pub[year>2000]//book[author]//name/text()");
  const Bpdt* b11 = Find(*hpdt, 1, 1);
  ASSERT_NE(b11, nullptr);
  EXPECT_TRUE(b11->has_na_state);
  ASSERT_NE(b11->left, nullptr);
  ASSERT_NE(b11->right, nullptr);
  EXPECT_EQ(b11->left->position, 3u);   // 2k+1
  EXPECT_EQ(b11->right->position, 2u);  // 2k
  EXPECT_EQ(b11->left->parent, b11);
  EXPECT_EQ(b11->right->parent, b11);
}

TEST(HpdtTest, PositionBitsEncodePredicateStatus) {
  auto hpdt = BuildOk("//pub[year>2000]//book[author]//name/text()");
  // bpdt(3,5): 5 = (101)b - entered with pub TRUE, book NA, name TRUE
  // (Example 7 discusses exactly this BPDT).
  const Bpdt* b35 = Find(*hpdt, 3, 5);
  ASSERT_NE(b35, nullptr);
  EXPECT_FALSE(b35->on_true_spine);
  EXPECT_EQ(b35->parent->position, 2u);  // via TRUE of bpdt(2,2)
  EXPECT_EQ(b35->parent->left, b35);
  // bpdt(3,7) = (111)b: everything known true - the flushing spine.
  const Bpdt* b37 = Find(*hpdt, 3, 7);
  ASSERT_NE(b37, nullptr);
  EXPECT_TRUE(b37->on_true_spine);
}

TEST(HpdtTest, StepsWithoutDelayedPredicatesHaveNoNaState) {
  auto hpdt = BuildOk("/a[@id=1]/b/c[x]/text()");
  const Bpdt* a = Find(*hpdt, 1, 1);
  ASSERT_NE(a, nullptr);
  EXPECT_FALSE(a->has_na_state);  // attribute predicate decided at begin
  EXPECT_EQ(a->right, nullptr);
  const Bpdt* b = Find(*hpdt, 2, 3);
  ASSERT_NE(b, nullptr);
  EXPECT_FALSE(b->has_na_state);  // no predicate at all
  const Bpdt* c = Find(*hpdt, 3, 7);
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(c->has_na_state);  // child-existence predicate is delayed
}

TEST(HpdtTest, NoDelayedPredicatesMeansOneBpdtPerLayer) {
  auto hpdt = BuildOk("/a/b/c/d");
  EXPECT_EQ(hpdt->bpdt_count(), 5u);  // root + one per step
  for (const auto& bpdt : hpdt->bpdts()) {
    EXPECT_TRUE(bpdt->on_true_spine);
  }
}

TEST(HpdtTest, RootBpdtTemplate) {
  auto hpdt = BuildOk("/a");
  const Bpdt* root = hpdt->root();
  EXPECT_EQ(root->layer, 0);
  EXPECT_EQ(root->step, nullptr);
  EXPECT_FALSE(root->has_na_state);
  EXPECT_GE(root->start_state, 1);
  EXPECT_GE(root->true_state, 1);
  EXPECT_EQ(root->na_state, -1);
  ASSERT_EQ(root->arcs.size(), 2u);
  EXPECT_EQ(root->arcs[0].label, "<root>");
}

TEST(HpdtTest, ClosureStepsGetSelfTransition) {
  auto hpdt = BuildOk("//a/text()");
  const Bpdt* a = Find(*hpdt, 1, 1);
  ASSERT_NE(a, nullptr);
  bool has_self_loop = false;
  for (const BpdtArc& arc : a->arcs) {
    if (arc.label == "//" && arc.from == a->start_state &&
        arc.to == a->start_state) {
      has_self_loop = true;
    }
  }
  EXPECT_TRUE(has_self_loop);
}

TEST(HpdtTest, TrueSpineFlushesOthersUpload) {
  auto hpdt = BuildOk("//a[x]//b[y]/text()");
  const Bpdt* spine = Find(*hpdt, 2, 3);
  const Bpdt* off = Find(*hpdt, 2, 2);
  ASSERT_NE(spine, nullptr);
  ASSERT_NE(off, nullptr);
  auto ops_of = [](const Bpdt* bpdt) {
    std::string all;
    for (const BpdtArc& arc : bpdt->arcs) all += arc.ops;
    return all;
  };
  EXPECT_NE(ops_of(spine).find("queue.flush()"), std::string::npos);
  EXPECT_EQ(ops_of(spine).find("queue.upload()"), std::string::npos);
  EXPECT_NE(ops_of(off).find("queue.upload()"), std::string::npos);
}

TEST(HpdtTest, NaStatesClearOnEndTag) {
  auto hpdt = BuildOk("/a[b]/text()");
  const Bpdt* a = Find(*hpdt, 1, 1);
  ASSERT_NE(a, nullptr);
  bool clear_on_end = false;
  for (const BpdtArc& arc : a->arcs) {
    if (arc.from == a->na_state && arc.label == "</a>" &&
        arc.ops.find("queue.clear()") != std::string::npos) {
      clear_on_end = true;
    }
  }
  EXPECT_TRUE(clear_on_end);
}

TEST(HpdtTest, DebugStringMentionsEveryBpdt) {
  auto hpdt = BuildOk("//pub[year>2000]//book[author]//name/text()");
  std::string debug = hpdt->DebugString();
  for (const auto& bpdt : hpdt->bpdts()) {
    EXPECT_NE(debug.find(bpdt->Name()), std::string::npos) << bpdt->Name();
  }
  EXPECT_NE(debug.find("true-spine"), std::string::npos);
}

TEST(HpdtTest, RejectsOversizedQueries) {
  std::string query;
  for (int i = 0; i < 33; ++i) query += "/a";
  Result<xpath::Query> parsed = xpath::ParseQuery(query);
  ASSERT_TRUE(parsed.ok());
  Result<std::unique_ptr<Hpdt>> hpdt = Hpdt::Build(*parsed);
  EXPECT_FALSE(hpdt.ok());
  EXPECT_EQ(hpdt.status().code(), StatusCode::kNotSupported);
}

TEST(HpdtTest, StateCountGrowsWithBranching) {
  auto no_preds = BuildOk("/a/b/c");
  auto with_preds = BuildOk("/a[x]/b[y]/c[z]");
  EXPECT_GT(with_preds->bpdt_count(), no_preds->bpdt_count());
  EXPECT_GT(with_preds->state_count(), no_preds->state_count());
}

}  // namespace
}  // namespace xsq::core
