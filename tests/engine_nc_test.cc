#include "core/engine_nc.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "xml/sax_parser.h"

namespace xsq::core {
namespace {

constexpr const char* kFig1 =
    "<root><pub>"
    "<book id=\"1\"><price>12.00</price><name>First</name>"
    "<author>A</author><price type=\"discount\">10.00</price></book>"
    "<book id=\"2\"><price>14.00</price><name>Second</name>"
    "<author>A</author><author>B</author>"
    "<price type=\"discount\">12.00</price></book>"
    "<year>2002</year>"
    "</pub></root>";

struct NcRun {
  std::vector<std::string> items;
  std::vector<double> updates;
  std::optional<double> aggregate;
};

NcRun RunQ(std::string_view query_text, std::string_view xml) {
  Result<xpath::Query> query = xpath::ParseQuery(query_text);
  EXPECT_TRUE(query.ok()) << query.status().ToString();
  CollectingSink sink;
  auto engine = XsqNcEngine::Create(*query, &sink);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  xml::SaxParser parser(engine->get());
  Status status = parser.Parse(xml);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE((*engine)->status().ok()) << (*engine)->status().ToString();
  return {std::move(sink.items), std::move(sink.aggregate_updates),
          sink.aggregate};
}

TEST(XsqNcEngineTest, RejectsClosureQueries) {
  Result<xpath::Query> query = xpath::ParseQuery("//a/text()");
  ASSERT_TRUE(query.ok());
  CollectingSink sink;
  auto engine = XsqNcEngine::Create(*query, &sink);
  EXPECT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kNotSupported);
}

TEST(XsqNcEngineTest, PaperExample1) {
  NcRun r = RunQ("/root/pub[year=2002]/book[price<11]/author", kFig1);
  ASSERT_EQ(r.items.size(), 1u);
  EXPECT_EQ(r.items[0], "<author>A</author>");
}

TEST(XsqNcEngineTest, TextOutput) {
  NcRun r = RunQ("/root/pub/book/name/text()", kFig1);
  ASSERT_EQ(r.items.size(), 2u);
  EXPECT_EQ(r.items[0], "First");
  EXPECT_EQ(r.items[1], "Second");
}

TEST(XsqNcEngineTest, AttributeOutput) {
  NcRun r = RunQ("/root/pub/book/@id", kFig1);
  ASSERT_EQ(r.items.size(), 2u);
  EXPECT_EQ(r.items[0], "1");
  EXPECT_EQ(r.items[1], "2");
}

TEST(XsqNcEngineTest, LatePredicateBuffersThenFlushes) {
  const char* doc = "<r><b><t>first</t><ok/></b><b><t>drop</t></b></r>";
  NcRun r = RunQ("/r/b[ok]/t/text()", doc);
  ASSERT_EQ(r.items.size(), 1u);
  EXPECT_EQ(r.items[0], "first");
}

TEST(XsqNcEngineTest, ElementOutput) {
  NcRun r = RunQ("/r/a", "<r><a x=\"1\">t<b>u</b></a></r>");
  ASSERT_EQ(r.items.size(), 1u);
  EXPECT_EQ(r.items[0], "<a x=\"1\">t<b>u</b></a>");
}

TEST(XsqNcEngineTest, BufferedElementOutput) {
  const char* doc = "<r><p><a>keep</a><ok/></p><p><a>drop</a></p></r>";
  NcRun r = RunQ("/r/p[ok]/a", doc);
  ASSERT_EQ(r.items.size(), 1u);
  EXPECT_EQ(r.items[0], "<a>keep</a>");
}

TEST(XsqNcEngineTest, AggregationWithIncrementalUpdates) {
  NcRun r = RunQ("/r/x/count()", "<r><x/><y/><x/></r>");
  ASSERT_TRUE(r.aggregate.has_value());
  EXPECT_DOUBLE_EQ(*r.aggregate, 2.0);
  ASSERT_EQ(r.updates.size(), 2u);
  EXPECT_DOUBLE_EQ(r.updates[0], 1.0);
  EXPECT_DOUBLE_EQ(r.updates[1], 2.0);
}

TEST(XsqNcEngineTest, SumAggregation) {
  NcRun r = RunQ("/r/x/sum()", "<r><x>1</x><x>2.5</x><x>oops</x></r>");
  ASSERT_TRUE(r.aggregate.has_value());
  EXPECT_DOUBLE_EQ(*r.aggregate, 3.5);
}

TEST(XsqNcEngineTest, MultiplePredicatesPerStep) {
  const char* doc =
      "<r><a id=\"1\"><b/><t>both</t></a><a id=\"1\"><t>one</t></a></r>";
  NcRun r = RunQ("/r/a[@id][b]/t/text()", doc);
  ASSERT_EQ(r.items.size(), 1u);
  EXPECT_EQ(r.items[0], "both");
}

TEST(XsqNcEngineTest, OrderingSensitivityScenario) {
  // The Figure 21 workload: element order decides how much is buffered,
  // but never the result (all three queries are empty).
  const char* doc =
      "<data><a id=\"1\"><prior>1</prior><foo>1</foo><foo>1</foo>"
      "<posterior>1</posterior></a></data>";
  EXPECT_TRUE(RunQ("/data/a[prior=0]", doc).items.empty());
  EXPECT_TRUE(RunQ("/data/a[posterior=0]", doc).items.empty());
  EXPECT_TRUE(RunQ("/data/a[@id=0]", doc).items.empty());
}

TEST(XsqNcEngineTest, MemoryDependsOnElementOrder) {
  // With [@id=0] the match dies at the begin event: nothing is ever
  // buffered. With [posterior=0] the whole <a> content is buffered.
  std::string doc = "<data><a id=\"1\"><prior>1</prior>";
  for (int i = 0; i < 50; ++i) doc += "<foo>1</foo>";
  doc += "<posterior>1</posterior></a></data>";

  auto peak = [&](const char* query_text) {
    Result<xpath::Query> query = xpath::ParseQuery(query_text);
    EXPECT_TRUE(query.ok());
    CollectingSink sink;
    auto engine = XsqNcEngine::Create(*query, &sink);
    EXPECT_TRUE(engine.ok());
    xml::SaxParser parser(engine->get());
    EXPECT_TRUE(parser.Parse(doc).ok());
    return (*engine)->memory().peak_bytes();
  };
  EXPECT_EQ(peak("/data/a[@id=0]"), 0u);
  EXPECT_GT(peak("/data/a[posterior=0]"), 100u);
}

TEST(XsqNcEngineTest, EmitsAsSoonAsResolved) {
  // The deterministic engine outputs an item the moment it is selected,
  // before the document ends (Section 6.2's XSQ-NC advantage).
  class ImmediateSink : public ResultSink {
   public:
    void OnItem(std::string_view value) override {
      items.emplace_back(value);
    }
    std::vector<std::string> items;
  };
  Result<xpath::Query> query = xpath::ParseQuery("/r/a/text()");
  ASSERT_TRUE(query.ok());
  ImmediateSink sink;
  auto engine = XsqNcEngine::Create(*query, &sink);
  ASSERT_TRUE(engine.ok());
  xml::SaxParser parser(engine->get());
  // Feed only a prefix: the first item must already be out.
  ASSERT_TRUE((*engine)->status().ok());
  ASSERT_TRUE(parser.Feed("<r><a>early</a>").ok());
  EXPECT_EQ(sink.items.size(), 1u);
  ASSERT_TRUE(parser.Feed("<a>late</a></r>").ok());
  ASSERT_TRUE(parser.Finish().ok());
  EXPECT_EQ(sink.items.size(), 2u);
}

TEST(XsqNcEngineTest, AgreesWithXsqFOnClosureFreeQueries) {
  const char* queries[] = {
      "/root/pub[year=2002]/book[price<11]/author",
      "/root/pub/book/name/text()",
      "/root/pub/book/@id",
      "/root/pub/book/price/sum()",
      "/root/pub/book[author]/name/count()",
      "/root/pub[year>2000]/book/author",
  };
  for (const char* q : queries) {
    Result<QueryResult> full = RunQuery(q, kFig1);
    ASSERT_TRUE(full.ok()) << q;
    NcRun nc = RunQ(q, kFig1);
    EXPECT_EQ(full->items, nc.items) << q;
    EXPECT_EQ(full->aggregate.has_value(), nc.aggregate.has_value()) << q;
    if (full->aggregate.has_value()) {
      EXPECT_DOUBLE_EQ(*full->aggregate, *nc.aggregate) << q;
    }
  }
}

}  // namespace
}  // namespace xsq::core
