#include "filter/filter_engine.h"

#include <gtest/gtest.h>

namespace xsq::filter {
namespace {

TEST(FilterEngineTest, SingleQueryMatch) {
  FilterEngine engine;
  Result<int> id = engine.AddQuery("/r/a");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 0);
  auto matched = engine.FilterDocument("<r><a/></r>");
  ASSERT_TRUE(matched.ok());
  EXPECT_EQ(*matched, std::vector<int>{0});
  matched = engine.FilterDocument("<r><b/></r>");
  ASSERT_TRUE(matched.ok());
  EXPECT_TRUE(matched->empty());
}

TEST(FilterEngineTest, RejectsPredicates) {
  FilterEngine engine;
  Result<int> id = engine.AddQuery("/r/a[b]");
  EXPECT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), StatusCode::kNotSupported);
}

TEST(FilterEngineTest, MultipleQueriesOverOneDocument) {
  FilterEngine engine;
  ASSERT_TRUE(engine.AddQuery("/lib/book").ok());       // 0
  ASSERT_TRUE(engine.AddQuery("/lib/book/title").ok()); // 1
  ASSERT_TRUE(engine.AddQuery("//title").ok());         // 2
  ASSERT_TRUE(engine.AddQuery("/lib/cd").ok());         // 3
  auto matched =
      engine.FilterDocument("<lib><book><title>T</title></book></lib>");
  ASSERT_TRUE(matched.ok());
  EXPECT_EQ(*matched, (std::vector<int>{0, 1, 2}));
}

TEST(FilterEngineTest, SharedPrefixesShareNodes) {
  FilterEngine shared;
  ASSERT_TRUE(shared.AddQuery("/a/b/c").ok());
  ASSERT_TRUE(shared.AddQuery("/a/b/d").ok());
  FilterEngine separate;
  ASSERT_TRUE(separate.AddQuery("/a/b/c").ok());
  ASSERT_TRUE(separate.AddQuery("/x/y/z").ok());
  // /a/b is shared: 4 nodes beyond the root; disjoint queries need 6.
  EXPECT_EQ(shared.node_count(), 5u);
  EXPECT_EQ(separate.node_count(), 7u);
}

TEST(FilterEngineTest, IdenticalQueriesGetDistinctIds) {
  FilterEngine engine;
  ASSERT_TRUE(engine.AddQuery("//a").ok());
  ASSERT_TRUE(engine.AddQuery("//a").ok());
  auto matched = engine.FilterDocument("<r><a/></r>");
  ASSERT_TRUE(matched.ok());
  EXPECT_EQ(*matched, (std::vector<int>{0, 1}));
}

TEST(FilterEngineTest, ClosureAxisMatchesAtAnyDepth) {
  FilterEngine engine;
  ASSERT_TRUE(engine.AddQuery("//needle").ok());
  auto matched = engine.FilterDocument(
      "<a><b><c><needle/></c></b></a>");
  ASSERT_TRUE(matched.ok());
  EXPECT_EQ(matched->size(), 1u);
  matched = engine.FilterDocument("<a><b/></a>");
  ASSERT_TRUE(matched.ok());
  EXPECT_TRUE(matched->empty());
}

TEST(FilterEngineTest, ClosureInMiddle) {
  FilterEngine engine;
  ASSERT_TRUE(engine.AddQuery("/r//x/y").ok());
  EXPECT_EQ(engine.FilterDocument("<r><a><x><y/></x></a></r>")->size(), 1u);
  EXPECT_EQ(engine.FilterDocument("<r><x><a><y/></a></x></r>")->size(), 0u);
  EXPECT_EQ(engine.FilterDocument("<r><x><y/></x></r>")->size(), 1u);
}

TEST(FilterEngineTest, WildcardSteps) {
  FilterEngine engine;
  ASSERT_TRUE(engine.AddQuery("/r/*/leaf").ok());
  EXPECT_EQ(engine.FilterDocument("<r><mid><leaf/></mid></r>")->size(), 1u);
  EXPECT_EQ(engine.FilterDocument("<r><leaf/></r>")->size(), 0u);
}

TEST(FilterEngineTest, ManyQueriesManyDocuments) {
  FilterEngine engine;
  for (int i = 0; i < 50; ++i) {
    std::string query = "//t" + std::to_string(i);
    ASSERT_TRUE(engine.AddQuery(query).ok());
  }
  EXPECT_EQ(engine.query_count(), 50u);
  for (int i = 0; i < 50; ++i) {
    std::string doc = "<root><t" + std::to_string(i) + "/></root>";
    auto matched = engine.FilterDocument(doc);
    ASSERT_TRUE(matched.ok());
    ASSERT_EQ(matched->size(), 1u);
    EXPECT_EQ((*matched)[0], i);
  }
}

TEST(FilterEngineTest, RecursiveDocumentDoesNotDoubleReport) {
  FilterEngine engine;
  ASSERT_TRUE(engine.AddQuery("//a//a").ok());
  auto matched = engine.FilterDocument("<a><a><a/></a></a>");
  ASSERT_TRUE(matched.ok());
  EXPECT_EQ(*matched, std::vector<int>{0});
}

TEST(FilterEngineTest, DuplicateQueryReusesNodeChain) {
  FilterEngine engine;
  ASSERT_TRUE(engine.AddQuery("/lib//book/title").ok());
  size_t nodes_after_first = engine.node_count();
  // An identical path re-registered reuses the existing chain end to
  // end: zero node growth, still a distinct query id.
  ASSERT_TRUE(engine.AddQuery("/lib//book/title").ok());
  EXPECT_EQ(engine.node_count(), nodes_after_first);
  EXPECT_EQ(engine.query_count(), 2u);
}

TEST(FilterEngineTest, MatcherReportsPerEventAccepts) {
  FilterEngine engine;
  ASSERT_TRUE(engine.AddQuery("//a").ok());       // 0
  ASSERT_TRUE(engine.AddQuery("//a/b").ok());     // 1
  ASSERT_TRUE(engine.AddQuery("/a/c").ok());      // 2
  FilterEngine::Matcher matcher(&engine);
  matcher.OnDocumentBegin();
  std::vector<xml::Attribute> no_attrs;
  matcher.OnBegin("a", no_attrs, 1);
  EXPECT_EQ(matcher.current_accepts(), std::vector<int>{0});
  matcher.OnBegin("b", no_attrs, 2);
  EXPECT_EQ(matcher.current_accepts(), std::vector<int>{1});
  matcher.OnEnd("b", 2);
  // A non-matching element under a '//' continuation reports nothing,
  // even though ancestor NFA nodes stay alive across it.
  matcher.OnBegin("x", no_attrs, 2);
  EXPECT_TRUE(matcher.current_accepts().empty());
  matcher.OnBegin("a", no_attrs, 3);
  EXPECT_EQ(matcher.current_accepts(), std::vector<int>{0});
  matcher.OnEnd("a", 3);
  matcher.OnEnd("x", 2);
  matcher.OnBegin("c", no_attrs, 2);
  EXPECT_EQ(matcher.current_accepts(), std::vector<int>{2});
  matcher.OnEnd("c", 2);
  matcher.OnEnd("a", 1);
  matcher.OnDocumentEnd();
  EXPECT_EQ(matcher.MatchedIds(), (std::vector<int>{0, 1, 2}));
}

TEST(FilterEngineTest, MatcherDedupsAcceptsAcrossUnionBranches) {
  FilterEngine engine;
  ASSERT_TRUE(engine.AddQuery("//a | /r/a").ok());
  FilterEngine::Matcher matcher(&engine);
  matcher.OnDocumentBegin();
  std::vector<xml::Attribute> no_attrs;
  matcher.OnBegin("r", no_attrs, 1);
  matcher.OnBegin("a", no_attrs, 2);
  // Both branches accept this element; the query reports once.
  EXPECT_EQ(matcher.current_accepts(), std::vector<int>{0});
  matcher.OnEnd("a", 2);
  matcher.OnEnd("r", 1);
  matcher.OnDocumentEnd();
}

TEST(FilterEngineTest, MatcherReusableAcrossDocumentsAndNewQueries) {
  FilterEngine engine;
  ASSERT_TRUE(engine.AddQuery("//a").ok());
  FilterEngine::Matcher matcher(&engine);
  std::vector<xml::Attribute> no_attrs;
  matcher.OnDocumentBegin();
  matcher.OnBegin("a", no_attrs, 1);
  matcher.OnEnd("a", 1);
  matcher.OnDocumentEnd();
  EXPECT_EQ(matcher.MatchedIds(), std::vector<int>{0});
  // Subscribe-between-documents: Reset picks up the grown query set.
  ASSERT_TRUE(engine.AddQuery("//b").ok());
  matcher.OnDocumentBegin();
  matcher.OnBegin("b", no_attrs, 1);
  matcher.OnEnd("b", 1);
  matcher.OnDocumentEnd();
  EXPECT_EQ(matcher.MatchedIds(), std::vector<int>{1});
}

}  // namespace
}  // namespace xsq::filter
