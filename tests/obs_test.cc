// Tests for the obs metrics library: histogram bucket math, quantiles,
// snapshot merging, the registry's exposition format, and — run under
// -DXSQ_SANITIZE=thread — the lock-free concurrency contract of
// Record()/snapshot()/GetOrCreateHistogram().
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/exposition.h"
#include "obs/histogram.h"
#include "obs/registry.h"
#include "obs/timer.h"

namespace xsq::obs {
namespace {

TEST(HistogramBucketTest, BucketIndexBoundaries) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  EXPECT_EQ(Histogram::BucketIndex(~uint64_t{0}), 64u);
}

TEST(HistogramBucketTest, BoundsRoundTripWithIndex) {
  for (size_t b = 0; b < Histogram::kBucketCount; ++b) {
    uint64_t lo = Histogram::BucketLowerBound(b);
    uint64_t hi = Histogram::BucketUpperBound(b);
    EXPECT_LE(lo, hi) << "bucket " << b;
    EXPECT_EQ(Histogram::BucketIndex(lo), b) << "bucket " << b;
    EXPECT_EQ(Histogram::BucketIndex(hi), b) << "bucket " << b;
  }
}

TEST(HistogramTest, CountSumMax) {
  Histogram h;
  h.Record(0);
  h.Record(7);
  h.Record(100);
  Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.sum, 107u);
  EXPECT_EQ(snap.max, 100u);
  EXPECT_EQ(snap.buckets[Histogram::BucketIndex(0)], 1u);
  EXPECT_EQ(snap.buckets[Histogram::BucketIndex(7)], 1u);
  EXPECT_EQ(snap.buckets[Histogram::BucketIndex(100)], 1u);
}

TEST(HistogramTest, EmptySnapshotQuantilesAreZero) {
  Histogram h;
  Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.Quantile(0.5), 0.0);
  EXPECT_EQ(snap.p99(), 0.0);
  EXPECT_EQ(snap.Mean(), 0.0);
}

TEST(HistogramTest, QuantilesOfUniformRecording) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  Histogram::Snapshot snap = h.snapshot();
  // Log buckets: the quantile is exact only up to the bucket bounds.
  // p50 of 1..1000 is ~500, which lives in bucket [256, 511].
  double p50 = snap.p50();
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 512.0);
  double p99 = snap.p99();
  EXPECT_GE(p99, 512.0);
  EXPECT_LE(p99, 1000.0);
  // Quantiles never exceed the observed max.
  EXPECT_LE(snap.Quantile(1.0), 1000.0);
  EXPECT_DOUBLE_EQ(snap.Mean(), 500.5);
}

TEST(HistogramTest, QuantileIsMonotoneInQ) {
  Histogram h;
  for (uint64_t v = 0; v < 4096; v += 3) h.Record(v);
  Histogram::Snapshot snap = h.snapshot();
  double previous = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    double value = snap.Quantile(q);
    EXPECT_GE(value, previous) << "q=" << q;
    previous = value;
  }
}

TEST(HistogramTest, MergeAddsCounts) {
  Histogram a;
  Histogram b;
  a.Record(5);
  a.Record(9);
  b.Record(1000);
  Histogram::Snapshot merged = a.snapshot();
  merged.Merge(b.snapshot());
  EXPECT_EQ(merged.count, 3u);
  EXPECT_EQ(merged.sum, 1014u);
  EXPECT_EQ(merged.max, 1000u);
  EXPECT_EQ(merged.buckets[Histogram::BucketIndex(1000)], 1u);
}

// The lock-free contract: concurrent recorders plus a snapshot reader,
// TSan-clean, and no update lost once the recorders join.
TEST(HistogramTest, ConcurrentRecordAndSnapshot) {
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 20000;
  Histogram h;
  std::atomic<bool> stop{false};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      Histogram::Snapshot snap = h.snapshot();
      // Any snapshot taken mid-flight must still be internally sane.
      uint64_t bucket_total = 0;
      for (uint64_t c : snap.buckets) bucket_total += c;
      EXPECT_LE(snap.max, kPerThread);
      EXPECT_LE(bucket_total, kThreads * kPerThread);
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&h] {
      for (uint64_t v = 1; v <= kPerThread; ++v) h.Record(v);
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  Histogram::Snapshot final_snap = h.snapshot();
  EXPECT_EQ(final_snap.count, kThreads * kPerThread);
  EXPECT_EQ(final_snap.max, kPerThread);
  uint64_t expected_sum = kThreads * (kPerThread * (kPerThread + 1) / 2);
  EXPECT_EQ(final_snap.sum, expected_sum);
}

TEST(RegistryTest, GetOrCreateIsIdempotentAndStable) {
  Registry registry;
  Histogram* first = registry.GetOrCreateHistogram("m", "help one");
  Histogram* again = registry.GetOrCreateHistogram("m", "help two");
  EXPECT_EQ(first, again);
  first->Record(3);
  EXPECT_EQ(registry.FindHistogram("m")->count(), 1u);
  EXPECT_EQ(registry.FindHistogram("absent"), nullptr);
}

TEST(RegistryTest, RenderTextExposition) {
  Registry registry;
  Histogram* h = registry.GetOrCreateHistogram("xsq_test_us", "test metric");
  h->Record(3);
  h->Record(5);
  std::string text = registry.RenderText();
  EXPECT_NE(text.find("# HELP xsq_test_us test metric"), std::string::npos);
  EXPECT_NE(text.find("# TYPE xsq_test_us histogram"), std::string::npos);
  // 3 and 5 both land in bucket [2,3] and [4,7]: cumulative counts.
  EXPECT_NE(text.find("xsq_test_us_bucket{le=\"3\"} 1"), std::string::npos);
  EXPECT_NE(text.find("xsq_test_us_bucket{le=\"7\"} 2"), std::string::npos);
  EXPECT_NE(text.find("xsq_test_us_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("xsq_test_us_sum 8"), std::string::npos);
  EXPECT_NE(text.find("xsq_test_us_count 2"), std::string::npos);
  EXPECT_NE(text.find("xsq_test_us_p50 "), std::string::npos);
  EXPECT_NE(text.find("xsq_test_us_max 5"), std::string::npos);
}

TEST(RegistryTest, LabeledSeriesRenderUnderOneFamily) {
  // Two series of one metric family, distinguished only by labels
  // (the engine-kind split the service uses): one # HELP/# TYPE
  // header, each sample line carrying its label set merged with `le`.
  Registry registry;
  Histogram* nc = registry.GetOrCreateHistogram("xsq_req_us", "request time",
                                                "engine=\"nc\"");
  Histogram* f =
      registry.GetOrCreateHistogram("xsq_req_us", "request time",
                                    "engine=\"f\"");
  EXPECT_NE(nc, f);  // distinct series...
  EXPECT_EQ(nc, registry.GetOrCreateHistogram("xsq_req_us", "",
                                              "engine=\"nc\""));  // ...stable
  EXPECT_EQ(registry.FindHistogram("xsq_req_us", "engine=\"f\""), f);

  nc->Record(3);
  f->Record(100);
  std::string text = registry.RenderText();
  // One family header, not one per series.
  size_t first_type = text.find("# TYPE xsq_req_us histogram");
  ASSERT_NE(first_type, std::string::npos);
  EXPECT_EQ(text.find("# TYPE xsq_req_us histogram", first_type + 1),
            std::string::npos);
  EXPECT_NE(text.find("xsq_req_us_bucket{engine=\"nc\",le=\"3\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("xsq_req_us_bucket{engine=\"f\",le=\"127\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("xsq_req_us_count{engine=\"nc\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("xsq_req_us_sum{engine=\"f\"} 100"),
            std::string::npos);
}

TEST(RegistryTest, AppendScalarFormat) {
  std::string out;
  Registry::AppendScalar(&out, "xsq_things_total", "counter", 42);
  EXPECT_NE(out.find("# TYPE xsq_things_total counter"), std::string::npos);
  EXPECT_NE(out.find("xsq_things_total 42"), std::string::npos);
}

// Concurrent registration of overlapping names plus rendering must be
// race-free and converge on one histogram per name.
TEST(RegistryTest, ConcurrentGetOrCreateAndRender) {
  constexpr int kThreads = 4;
  Registry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < 200; ++i) {
        Histogram* h = registry.GetOrCreateHistogram(
            "shared_" + std::to_string(i % 8));
        h->Record(static_cast<uint64_t>(t + 1));
        if (i % 50 == 0) registry.RenderText();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  uint64_t total = 0;
  for (int i = 0; i < 8; ++i) {
    const Histogram* h =
        registry.FindHistogram("shared_" + std::to_string(i));
    ASSERT_NE(h, nullptr);
    total += h->count();
  }
  EXPECT_EQ(total, kThreads * 200u);
}

// --- Exposition: the parser is the renderer's exact inverse ---------

TEST(ExpositionTest, RenderParseRenderIsByteIdenticalForHistograms) {
  Registry registry;
  Histogram* parse = registry.GetOrCreateHistogram(
      "xsq_parse_us", "Time spent parsing, microseconds.");
  Histogram* replay = registry.GetOrCreateHistogram(
      "xsq_replay_us", "Tape replay latency.", "engine=\"nc\"");
  for (uint64_t v : {0u, 1u, 3u, 17u, 1024u, 90000u}) parse->Record(v);
  replay->Record(7);
  replay->Record(4096);

  std::string text = registry.RenderText();
  Result<Exposition> parsed = Exposition::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Render(), text);

  // And the parse is structural, not just textual: counts survive.
  const ExpositionSeries* series =
      parsed->Find("xsq_replay_us", "engine=\"nc\"");
  ASSERT_NE(series, nullptr);
  EXPECT_TRUE(series->is_histogram);
  EXPECT_EQ(series->hist.count, 2u);
  EXPECT_EQ(series->hist.sum, 7u + 4096u);
  EXPECT_EQ(series->hist.max, 4096u);
}

TEST(ExpositionTest, RenderParseRenderIsByteIdenticalForScalars) {
  std::string text;
  Registry::AppendScalar(&text, "xsq_sessions_opened", "counter", 42);
  Registry::AppendScalar(&text, "xsq_doc_cache_documents", "gauge", 3);
  Registry::AppendScalar(&text, "xsq_connections_shed", "counter", 0);

  Result<Exposition> parsed = Exposition::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Render(), text);

  const ExpositionSeries* series = parsed->Find("xsq_sessions_opened");
  ASSERT_NE(series, nullptr);
  EXPECT_FALSE(series->is_histogram);
  EXPECT_EQ(series->type, "counter");
  EXPECT_EQ(series->value, 42u);
}

TEST(ExpositionTest, MixedScalarAndHistogramDocumentRoundTrips) {
  // The shape METRICS actually serves: scalar counters first, then the
  // registry's histograms.
  Registry registry;
  registry.GetOrCreateHistogram("xsq_request_us", "Request latency.")
      ->Record(123);
  std::string text;
  Registry::AppendScalar(&text, "xsq_items_emitted", "counter", 9);
  text += registry.RenderText();

  Result<Exposition> parsed = Exposition::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Render(), text);
}

TEST(ExpositionTest, MergeFromSumsScalarsAndFoldsHistogramsBucketWise) {
  Registry shard_a;
  Registry shard_b;
  Histogram* ha = shard_a.GetOrCreateHistogram("xsq_request_us", "Latency.");
  Histogram* hb = shard_b.GetOrCreateHistogram("xsq_request_us", "Latency.");
  ha->Record(10);
  ha->Record(200);
  hb->Record(5000);

  std::string text_a;
  Registry::AppendScalar(&text_a, "xsq_sessions_opened", "counter", 2);
  text_a += shard_a.RenderText();
  std::string text_b;
  Registry::AppendScalar(&text_b, "xsq_sessions_opened", "counter", 5);
  Registry::AppendScalar(&text_b, "xsq_publishes", "counter", 1);
  text_b += shard_b.RenderText();

  Result<Exposition> merged = Exposition::Parse(text_a);
  ASSERT_TRUE(merged.ok());
  Result<Exposition> other = Exposition::Parse(text_b);
  ASSERT_TRUE(other.ok());
  merged->MergeFrom(*other);

  EXPECT_EQ(merged->Find("xsq_sessions_opened")->value, 7u);
  // A series only the second shard had is appended, not dropped.
  ASSERT_NE(merged->Find("xsq_publishes"), nullptr);
  EXPECT_EQ(merged->Find("xsq_publishes")->value, 1u);

  const ExpositionSeries* hist = merged->Find("xsq_request_us");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->hist.count, 3u);
  EXPECT_EQ(hist->hist.sum, 10u + 200u + 5000u);
  EXPECT_EQ(hist->hist.max, 5000u);  // max takes the max, not the sum
  // Bucket-wise fold: each recorded value still lands in its bucket.
  EXPECT_EQ(hist->hist.buckets[Histogram::BucketIndex(10)], 1u);
  EXPECT_EQ(hist->hist.buckets[Histogram::BucketIndex(200)], 1u);
  EXPECT_EQ(hist->hist.buckets[Histogram::BucketIndex(5000)], 1u);

  // The merged document still renders in the renderer's format.
  Result<Exposition> reparsed = Exposition::Parse(merged->Render());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->Render(), merged->Render());
}

TEST(ExpositionTest, MalformedDataLineIsAParseError) {
  EXPECT_FALSE(Exposition::Parse("xsq_broken").ok());
  EXPECT_FALSE(Exposition::Parse("xsq_count not-a-number").ok());
  // Unknown comment lines are skipped, not errors.
  Result<Exposition> ok = Exposition::Parse("# EXEMPLAR whatever 1\n");
  EXPECT_TRUE(ok.ok());
}

TEST(ScopedTimerTest, RecordsOnDestruction) {
  Histogram h;
  {
    ScopedTimer timer(&h);
    EXPECT_EQ(h.count(), 0u);
  }
  EXPECT_EQ(h.count(), 1u);
}

TEST(ScopedTimerTest, NullHistogramAndCancelRecordNothing) {
  { ScopedTimer timer(nullptr); }  // must not crash
  Histogram h;
  {
    ScopedTimer timer(&h);
    timer.Cancel();
  }
  EXPECT_EQ(h.count(), 0u);
}

TEST(ScopedTimerTest, ElapsedIsMonotone) {
  ScopedTimer timer(nullptr);
  uint64_t first = timer.ElapsedNanos();
  uint64_t second = timer.ElapsedNanos();
  EXPECT_GE(second, first);
}

}  // namespace
}  // namespace xsq::obs
