// Unit tests for the event-tape subsystem: symbol interning, the binary
// record format (round trip, rewind, save/load, corruption rejection),
// the projection mask, and record-time projection behavior.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/compiled_plan.h"
#include "tape/projection.h"
#include "tape/recorder.h"
#include "tape/replayer.h"
#include "tape/symbol_table.h"
#include "tape/tape.h"
#include "xml/events.h"
#include "xml/sax_parser.h"

namespace xsq::tape {
namespace {

std::vector<xml::Event> ParseEvents(std::string_view document) {
  xml::RecordingHandler handler;
  xml::SaxParser parser(&handler);
  Status status = parser.Parse(document);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return handler.events;
}

Tape MustRecord(std::string_view document,
                const ProjectionMask* mask = nullptr) {
  Result<Tape> tape = RecordDocument(document, mask);
  EXPECT_TRUE(tape.ok()) << tape.status().ToString();
  return *std::move(tape);
}

std::vector<xml::Event> ReplayEvents(const Tape& tape) {
  xml::RecordingHandler handler;
  Status status = Replay(tape, &handler);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return handler.events;
}

ProjectionMask MaskFor(const std::vector<std::string>& query_texts) {
  std::vector<std::shared_ptr<const core::CompiledPlan>> plans;
  for (const std::string& text : query_texts) {
    Result<std::shared_ptr<const core::CompiledPlan>> plan =
        core::CompilePlan(text);
    EXPECT_TRUE(plan.ok()) << text << ": " << plan.status().ToString();
    plans.push_back(*std::move(plan));
  }
  return ProjectionMask::FromPlans(plans);
}

TEST(SymbolTableTest, InternDedupes) {
  SymbolTable table;
  SymbolId a = table.Intern("alpha");
  SymbolId b = table.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(table.Intern("alpha"), a);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.Name(a), "alpha");
  EXPECT_EQ(table.Name(b), "beta");
}

TEST(SymbolTableTest, FindWithoutInterning) {
  SymbolTable table;
  EXPECT_EQ(table.Find("missing"), SymbolTable::kInvalid);
  SymbolId id = table.Intern("present");
  EXPECT_EQ(table.Find("present"), id);
  EXPECT_EQ(table.Find("missing"), SymbolTable::kInvalid);
}

TEST(SymbolTableTest, ManySymbolsSurviveGrowth) {
  // Stresses the SSO hazard: index_ keys are views into names_ strings,
  // so container growth must not move them.
  SymbolTable table;
  std::vector<SymbolId> ids;
  for (int i = 0; i < 5000; ++i) {
    ids.push_back(table.Intern("sym" + std::to_string(i)));
  }
  EXPECT_EQ(table.size(), 5000u);
  for (int i = 0; i < 5000; ++i) {
    std::string name = "sym" + std::to_string(i);
    EXPECT_EQ(table.Find(name), ids[static_cast<size_t>(i)]);
    EXPECT_EQ(table.Name(ids[static_cast<size_t>(i)]), name);
  }
  EXPECT_GT(table.memory_bytes(), 0u);
}

constexpr const char* kDoc =
    "<!DOCTYPE r [<!ELEMENT r (a*)>]>"
    "<r><a id=\"1\" x=\"y z\">hello</a><b/>tail<a>two</a></r>";

TEST(TapeTest, RoundTripReproducesFullEventStream) {
  std::vector<xml::Event> direct = ParseEvents(kDoc);
  Tape tape = MustRecord(kDoc);
  std::vector<xml::Event> replayed = ReplayEvents(tape);
  ASSERT_EQ(direct.size(), replayed.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_TRUE(direct[i] == replayed[i]) << "event " << i;
  }
}

TEST(TapeTest, StatsCountEvents) {
  Tape tape = MustRecord(kDoc);
  const TapeStats& stats = tape.stats();
  EXPECT_EQ(stats.begin_events, 4u);  // r, a, b, a
  EXPECT_EQ(stats.end_events, 4u);
  EXPECT_EQ(stats.text_events, 3u);  // hello, tail, two
  EXPECT_EQ(stats.attribute_count, 2u);
  EXPECT_EQ(stats.source_bytes, std::string_view(kDoc).size());
  // docbegin + doctype + 4 begin + 4 end + 3 text + docend
  EXPECT_EQ(tape.event_count(), 14u);
}

TEST(TapeTest, ReplayManyViaRewind) {
  Tape tape = MustRecord(kDoc);
  TapeReplayer replayer(tape);
  xml::RecordingHandler first;
  while (replayer.Step(&first, 2)) {
  }
  EXPECT_EQ(replayer.events_emitted(), tape.event_count());
  replayer.Rewind();
  xml::RecordingHandler second;
  while (replayer.Step(&second)) {
  }
  ASSERT_EQ(first.events.size(), second.events.size());
  for (size_t i = 0; i < first.events.size(); ++i) {
    EXPECT_TRUE(first.events[i] == second.events[i]) << i;
  }
}

TEST(TapeTest, SaveLoadRoundTrips) {
  const char* path = "xsq_tape_roundtrip.bin";
  Tape tape = MustRecord(kDoc);
  ASSERT_TRUE(tape.Save(path).ok());
  Result<Tape> loaded = Tape::Load(path);
  std::remove(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->event_count(), tape.event_count());
  EXPECT_EQ(loaded->stats().attribute_count, tape.stats().attribute_count);
  EXPECT_EQ(loaded->stats().source_bytes, tape.stats().source_bytes);
  std::vector<xml::Event> original = ReplayEvents(tape);
  std::vector<xml::Event> reloaded = ReplayEvents(*loaded);
  ASSERT_EQ(original.size(), reloaded.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_TRUE(original[i] == reloaded[i]) << i;
  }
}

TEST(TapeTest, LoadRejectsBadMagic) {
  const char* path = "xsq_tape_badmagic.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTATAPExxxxxxxxxxxxxxxx";
  }
  Result<Tape> loaded = Tape::Load(path);
  std::remove(path);
  EXPECT_FALSE(loaded.ok());
}

TEST(TapeTest, LoadRejectsTruncation) {
  const char* path = "xsq_tape_truncated.bin";
  Tape tape = MustRecord(kDoc);
  ASSERT_TRUE(tape.Save(path).ok());
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  // Every strict prefix must be rejected, never crash or mis-load.
  for (size_t cut = 0; cut < bytes.size(); cut += 7) {
    {
      std::ofstream out(path, std::ios::binary);
      out.write(bytes.data(), static_cast<std::streamsize>(cut));
    }
    Result<Tape> loaded = Tape::Load(path);
    EXPECT_FALSE(loaded.ok()) << "prefix of " << cut << " bytes loaded";
  }
  std::remove(path);
}

TEST(TapeTest, LoadRejectsCorruptRecords) {
  // With the v2 CRC trailers a byte-level corruption anywhere in the
  // file — magic, header, records, blob, or the checksums themselves —
  // must be rejected outright, never half-loaded.
  const char* path = "xsq_tape_corrupt.bin";
  Tape tape = MustRecord(kDoc);
  ASSERT_TRUE(tape.Save(path).ok());
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x5a);
    {
      std::ofstream out(path, std::ios::binary);
      out.write(mutated.data(), static_cast<std::streamsize>(mutated.size()));
    }
    Result<Tape> loaded = Tape::Load(path);
    EXPECT_FALSE(loaded.ok()) << "corrupted byte " << i << " loaded";
  }
  std::remove(path);
}

TEST(TapeTest, SerializeFromBytesRoundTripsInMemory) {
  Tape tape = MustRecord(kDoc);
  std::string image = tape.Serialize();
  EXPECT_EQ(image.substr(0, 8), "XSQTAPE2");
  Result<Tape> loaded = Tape::FromBytes(image, "in-memory");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->event_count(), tape.event_count());
  std::vector<xml::Event> original = ReplayEvents(tape);
  std::vector<xml::Event> reloaded = ReplayEvents(*loaded);
  ASSERT_EQ(original.size(), reloaded.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_TRUE(original[i] == reloaded[i]) << i;
  }
}

TEST(TapeTest, BitFlipSweepRejectsEveryFlip) {
  // The acceptance bar from the failure model: CRC32C detects every
  // single-bit error, so flipping ANY single bit of a serialized tape
  // must make FromBytes fail with kDataCorruption. Exhaustive over all
  // bits of a small tape.
  Tape tape = MustRecord("<r><a id=\"1\">x</a></r>");
  const std::string image = tape.Serialize();
  size_t rejected = 0;
  size_t total = 0;
  for (size_t byte = 0; byte < image.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = image;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      ++total;
      Result<Tape> loaded = Tape::FromBytes(std::move(mutated), "flip");
      if (!loaded.ok()) {
        ++rejected;
        EXPECT_EQ(loaded.status().code(), StatusCode::kDataCorruption)
            << "byte " << byte << " bit " << bit << ": "
            << loaded.status().ToString();
      } else {
        ADD_FAILURE() << "flip of byte " << byte << " bit " << bit
                      << " was accepted";
      }
    }
  }
  EXPECT_EQ(rejected, total);
  EXPECT_EQ(total, image.size() * 8);
}

TEST(TapeTest, FromBytesRejectsTruncationWithDataCorruption) {
  Tape tape = MustRecord(kDoc);
  const std::string image = tape.Serialize();
  for (size_t cut = 0; cut < image.size(); ++cut) {
    Result<Tape> loaded = Tape::FromBytes(image.substr(0, cut), "prefix");
    ASSERT_FALSE(loaded.ok()) << "prefix of " << cut << " bytes loaded";
    EXPECT_EQ(loaded.status().code(), StatusCode::kDataCorruption) << cut;
  }
}

TEST(TapeTest, LegacyV1FilesStillLoad) {
  // Pre-checksum tapes in the wild must keep loading (without the
  // corruption guarantee, which v1 never had).
  const char* path = "xsq_tape_legacy_v1.bin";
  Tape tape = MustRecord(kDoc);
  ASSERT_TRUE(tape.SaveLegacyV1(path).ok());
  {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    EXPECT_EQ(bytes.substr(0, 8), "XSQTAPE1");
  }
  Result<Tape> loaded = Tape::Load(path);
  std::remove(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->event_count(), tape.event_count());
  std::vector<xml::Event> original = ReplayEvents(tape);
  std::vector<xml::Event> reloaded = ReplayEvents(*loaded);
  ASSERT_EQ(original.size(), reloaded.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_TRUE(original[i] == reloaded[i]) << i;
  }
}

TEST(ProjectionMaskTest, EmptyQuerySetKeepsEverything) {
  ProjectionMask mask = MaskFor({});
  EXPECT_TRUE(mask.keeps_everything());
}

TEST(ProjectionMaskTest, ElementOutputKeepsEverything) {
  // Serializing a matched subtree may need any event below the match.
  EXPECT_TRUE(MaskFor({"//a"}).keeps_everything());
  EXPECT_TRUE(MaskFor({"/r/a"}).keeps_everything());
  EXPECT_FALSE(MaskFor({"/r/a/text()"}).keeps_everything());
}

TEST(ProjectionMaskTest, ClosureFreePathPrunesByLevel) {
  ProjectionMask mask = MaskFor({"/r/a/text()"});
  EXPECT_TRUE(mask.KeepElement("r", 1));
  EXPECT_FALSE(mask.KeepElement("x", 1));
  EXPECT_TRUE(mask.KeepElement("a", 2));
  EXPECT_FALSE(mask.KeepElement("b", 2));
  // Below the path's depth nothing can matter.
  EXPECT_FALSE(mask.KeepElement("a", 3));
  EXPECT_TRUE(mask.KeepText("a"));
  EXPECT_FALSE(mask.KeepText("r"));
}

TEST(ProjectionMaskTest, PredicateChildTagsAreKept) {
  // [year] inspects a child element of inproceedings; that level must
  // admit year even though the path step is title.
  ProjectionMask mask =
      MaskFor({"/dblp/inproceedings[author]/title/text()"});
  EXPECT_TRUE(mask.KeepElement("dblp", 1));
  EXPECT_TRUE(mask.KeepElement("inproceedings", 2));
  EXPECT_TRUE(mask.KeepElement("title", 3));
  EXPECT_TRUE(mask.KeepElement("author", 3));
  EXPECT_FALSE(mask.KeepElement("year", 3));
  EXPECT_TRUE(mask.KeepText("title"));
}

TEST(ProjectionMaskTest, ClosureKeepsAllStructureBeyondPrefix) {
  ProjectionMask mask = MaskFor({"//line/text()"});
  EXPECT_FALSE(mask.keeps_everything());
  // No anchored prefix: any element at any depth may be an ancestor.
  EXPECT_TRUE(mask.KeepElement("anything", 1));
  EXPECT_TRUE(mask.KeepElement("anything", 7));
  EXPECT_TRUE(mask.KeepText("line"));
  EXPECT_FALSE(mask.KeepText("speaker"));
}

TEST(ProjectionMaskTest, AttributeSetsFollowQueries) {
  ProjectionMask mask = MaskFor({"/r/a/@id"});
  EXPECT_TRUE(mask.KeepAttributes("a"));
  EXPECT_FALSE(mask.KeepAttributes("r"));
  ProjectionMask all = MaskFor({"//*[@x]/text()"});
  EXPECT_TRUE(all.KeepAttributes("whatever"));
}

TEST(ProjectionMaskTest, UnionOfQueriesIsUnionOfMasks) {
  ProjectionMask mask = MaskFor({"/r/a/text()", "/r/b/c/text()"});
  EXPECT_TRUE(mask.KeepElement("a", 2));
  EXPECT_TRUE(mask.KeepElement("b", 2));
  EXPECT_TRUE(mask.KeepElement("c", 3));
  EXPECT_FALSE(mask.KeepElement("d", 2));
  EXPECT_TRUE(mask.KeepText("a"));
  EXPECT_TRUE(mask.KeepText("c"));
  EXPECT_FALSE(mask.KeepText("b"));
}

TEST(TapeRecorderTest, ProjectionDropsIrrelevantSubtrees) {
  const char* doc =
      "<r>"
      "<a k=\"v\">keep</a>"
      "<junk><deep><deeper>gone</deeper></deep></junk>"
      "<a>more</a>"
      "</r>";
  ProjectionMask mask = MaskFor({"/r/a/text()"});
  Tape tape = MustRecord(doc, &mask);
  const TapeStats& stats = tape.stats();
  EXPECT_EQ(stats.begin_events, 3u);  // r, a, a
  EXPECT_EQ(stats.dropped_subtrees, 1u);  // junk (with its whole subtree)
  EXPECT_EQ(stats.dropped_attributes, 1u);  // k="v" (query never reads it)
  EXPECT_EQ(stats.text_events, 2u);

  // Replayed events still form a depth-contiguous legal stream.
  std::vector<xml::Event> events = ReplayEvents(tape);
  for (const xml::Event& event : events) {
    EXPECT_NE(event.tag, "junk");
    EXPECT_NE(event.tag, "deeper");
  }
}

TEST(TapeRecorderTest, ProjectedTapeIsSmaller) {
  std::string doc = "<r>";
  for (int i = 0; i < 200; ++i) {
    doc += "<a>k" + std::to_string(i) + "</a>";
    doc += "<noise attr=\"padding\"><x>waste</x><y>waste</y></noise>";
  }
  doc += "</r>";
  Tape full = MustRecord(doc);
  ProjectionMask mask = MaskFor({"/r/a/text()"});
  Tape projected = MustRecord(doc, &mask);
  EXPECT_LT(projected.memory_bytes(), full.memory_bytes() / 2);
  EXPECT_EQ(projected.stats().dropped_subtrees, 200u);
}

TEST(TapeRecorderTest, TeeRecordsWhileServing) {
  // A recorder can sit in a TeeHandler next to another consumer.
  xml::RecordingHandler live;
  Tape tape;
  TapeRecorder recorder(&tape);
  xml::TeeHandler tee({&live, &recorder});
  xml::SaxParser parser(&tee);
  ASSERT_TRUE(parser.Parse(kDoc).ok());
  std::vector<xml::Event> replayed = ReplayEvents(tape);
  ASSERT_EQ(live.events.size(), replayed.size());
  for (size_t i = 0; i < live.events.size(); ++i) {
    EXPECT_TRUE(live.events[i] == replayed[i]) << i;
  }
}

TEST(TapeRecorderTest, ReprojectingAnExistingTape) {
  // Recording a replay under a narrower mask shrinks an existing tape
  // without touching the source document.
  Tape full = MustRecord(kDoc);
  ProjectionMask mask = MaskFor({"/r/a/text()"});
  Tape narrow;
  TapeRecorder recorder(&narrow, &mask);
  ASSERT_TRUE(Replay(full, &recorder).ok());
  EXPECT_LT(narrow.event_count(), full.event_count());
  std::vector<xml::Event> events = ReplayEvents(narrow);
  for (const xml::Event& event : events) {
    EXPECT_NE(event.tag, "b");
  }
}

}  // namespace
}  // namespace xsq::tape
