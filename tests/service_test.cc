// Tests for the concurrent query-service layer: plan cache LRU and
// hit accounting, session lifecycle and budgets, backpressure, and a
// multi-threaded stress test of the worker pool (run under
// -DXSQ_SANITIZE=thread by tools/check.sh).
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/streaming_query.h"
#include "obs/histogram.h"
#include "obs/registry.h"
#include "service/document_cache.h"
#include "service/plan_cache.h"
#include "service/query_service.h"
#include "service/session.h"
#include "service/stats.h"
#include "tape/recorder.h"
#include "test_util.h"

namespace xsq::service {
namespace {

using core::StreamingQuery;

// ---------------------------------------------------------------- PlanCache

TEST(PlanCacheTest, HitsSkipCompilation) {
  PlanCache cache(8);
  auto first = cache.GetOrCompile("//book/title/text()");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = cache.GetOrCompile("//book/title/text()");
  ASSERT_TRUE(second.ok());
  // Same immutable plan object — the second open did not recompile.
  EXPECT_EQ(first->get(), second->get());
  PlanCache::Counters counters = cache.counters();
  EXPECT_EQ(counters.misses, 1u);  // misses == compilations
  EXPECT_EQ(counters.hits, 1u);
  EXPECT_EQ(counters.evictions, 0u);
}

TEST(PlanCacheTest, NormalizesSurroundingWhitespace) {
  PlanCache cache(8);
  ASSERT_TRUE(cache.GetOrCompile("  //a/text()").ok());
  ASSERT_TRUE(cache.GetOrCompile("//a/text()  \n").ok());
  EXPECT_EQ(cache.counters().misses, 1u);
  EXPECT_EQ(cache.counters().hits, 1u);
}

TEST(PlanCacheTest, EvictsLeastRecentlyUsed) {
  PlanCache cache(2);
  ASSERT_TRUE(cache.GetOrCompile("/a/text()").ok());   // {a}
  ASSERT_TRUE(cache.GetOrCompile("/b/text()").ok());   // {b,a}
  ASSERT_TRUE(cache.GetOrCompile("/a/text()").ok());   // hit; {a,b}
  ASSERT_TRUE(cache.GetOrCompile("/c/text()").ok());   // evicts b; {c,a}
  ASSERT_TRUE(cache.GetOrCompile("/b/text()").ok());   // miss again
  PlanCache::Counters counters = cache.counters();
  EXPECT_EQ(counters.evictions, 2u);  // b then a
  EXPECT_EQ(counters.misses, 4u);
  EXPECT_EQ(counters.hits, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PlanCacheTest, CompileErrorsAreNotCached) {
  PlanCache cache(2);
  EXPECT_FALSE(cache.GetOrCompile("not a query").ok());
  EXPECT_FALSE(cache.GetOrCompile("not a query").ok());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.counters().misses, 2u);
}

// A plan outlives its cache entry: sessions keep evicted plans alive.
TEST(PlanCacheTest, EvictedPlansStayUsable) {
  PlanCache cache(1);
  auto plan = cache.GetOrCompile("//book/title/text()");
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(cache.GetOrCompile("/other/text()").ok());  // evicts
  auto query = StreamingQuery::Open(*plan);
  ASSERT_TRUE(query.ok());
  ASSERT_TRUE((*query)->Push("<l><book><title>T</title></book></l>").ok());
  ASSERT_TRUE((*query)->Close().ok());
  EXPECT_EQ((*query)->NextItem().value_or(""), "T");
}

// ---------------------------------------------------------------- Session

TEST(SessionTest, LifecycleAndReuseAcrossDocuments) {
  auto plan = core::CompilePlan("//item/text()");
  ASSERT_TRUE(plan.ok());
  auto session = Session::Create(*plan, /*memory_budget=*/0, nullptr);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  ASSERT_TRUE((*session)->Push("<r><item>one</item>").ok());
  ASSERT_TRUE((*session)->Push("<item>two</item></r>").ok());
  ASSERT_TRUE((*session)->Close().ok());
  EXPECT_EQ((*session)->TakeItems(),
            (std::vector<std::string>{"one", "two"}));

  ASSERT_TRUE((*session)->Reset().ok());
  ASSERT_TRUE((*session)->Push("<r><item>three</item></r>").ok());
  ASSERT_TRUE((*session)->Close().ok());
  EXPECT_EQ((*session)->TakeItems(), (std::vector<std::string>{"three"}));
  EXPECT_EQ((*session)->items_produced(), 3u);
}

TEST(SessionTest, MemoryBudgetFailsTheSession) {
  // [late] stays undecided while <t> content streams past, forcing the
  // engine to buffer the whole item; a tiny budget must trip.
  auto plan = core::CompilePlan("/r/a[late]/t/text()");
  ASSERT_TRUE(plan.ok());
  auto session = Session::Create(*plan, /*memory_budget=*/16, nullptr);
  ASSERT_TRUE(session.ok());
  Status status =
      (*session)->Push("<r><a><t>this text is far longer than the budget"
                       " allows to be buffered</t>");
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted)
      << status.ToString();
  // The failure is sticky until Reset.
  EXPECT_EQ((*session)->Push("<x/>").code(),
            StatusCode::kResourceExhausted);
  ASSERT_TRUE((*session)->Reset().ok());
  ASSERT_TRUE((*session)->Push("<r><a><t>ok</t>").ok());
}

TEST(SessionTest, ParseErrorsAreSticky) {
  auto plan = core::CompilePlan("//a/text()");
  ASSERT_TRUE(plan.ok());
  auto session = Session::Create(*plan, 0, nullptr);
  ASSERT_TRUE(session.ok());
  EXPECT_FALSE((*session)->Push("<a><b></a>").ok());
  EXPECT_FALSE((*session)->Close().ok());
  ASSERT_TRUE((*session)->Reset().ok());
  ASSERT_TRUE((*session)->Push("<a>fine</a>").ok());
  ASSERT_TRUE((*session)->Close().ok());
  EXPECT_EQ((*session)->TakeItems(), (std::vector<std::string>{"fine"}));
}

// ------------------------------------------------------------ QueryService

ServiceConfig SmallConfig(int workers) {
  ServiceConfig config;
  config.num_workers = workers;
  config.max_sessions = 8;
  config.max_queued_chunks_per_session = 4;
  config.plan_cache_capacity = 4;
  return config;
}

TEST(QueryServiceTest, EndToEndMatchesStreamingQuery) {
  const std::string query_text = "//book[price<20]/title/text()";
  const std::string doc =
      "<catalog><book><title>A</title><price>10</price></book>"
      "<book><title>B</title><price>99</price></book>"
      "<book><title>C</title><price>5</price></book></catalog>";

  auto direct = StreamingQuery::Open(query_text);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE((*direct)->Push(doc).ok());
  ASSERT_TRUE((*direct)->Close().ok());
  std::vector<std::string> expected;
  while (auto item = (*direct)->NextItem()) expected.push_back(*item);

  QueryService service(SmallConfig(2));
  auto id = service.OpenSession(query_text);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  // Push in small chunks to exercise queueing.
  for (size_t pos = 0; pos < doc.size(); pos += 16) {
    Status status;
    do {  // honor backpressure
      status = service.Push(*id, doc.substr(pos, 16));
    } while (status.code() == StatusCode::kResourceExhausted);
    ASSERT_TRUE(status.ok()) << status.ToString();
  }
  ASSERT_TRUE(service.Close(*id).ok());
  EXPECT_EQ(service.Drain(*id), expected);
  ASSERT_TRUE(service.Release(*id).ok());
  EXPECT_EQ(service.active_sessions(), 0u);
}

TEST(QueryServiceTest, AdmissionControlRejectsAboveMaxSessions) {
  ServiceConfig config = SmallConfig(1);
  config.max_sessions = 2;
  QueryService service(config);
  auto a = service.OpenSession("/a/text()");
  auto b = service.OpenSession("/b/text()");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto c = service.OpenSession("/c/text()");
  EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(service.stats().sessions_rejected, 1u);
  // Releasing frees the slot.
  ASSERT_TRUE(service.Release(*a).ok());
  EXPECT_TRUE(service.OpenSession("/c/text()").ok());
}

TEST(QueryServiceTest, PushBackpressureWhenQueueFull) {
  ServiceConfig config = SmallConfig(1);
  config.max_queued_chunks_per_session = 2;
  QueryService service(config);
  // A session the single worker is guaranteed to be busy with: open a
  // second session and stuff it first with a large chunk.
  auto busy = service.OpenSession("//x/text()");
  ASSERT_TRUE(busy.ok());
  std::string big = "<r>";
  for (int i = 0; i < 20000; ++i) big += "<x>filler</x>";
  ASSERT_TRUE(service.Push(*busy, big).ok());

  auto id = service.OpenSession("//a/text()");
  ASSERT_TRUE(id.ok());
  // With the worker occupied, the 3rd queued chunk must be rejected.
  bool saw_backpressure = false;
  for (int i = 0; i < 8; ++i) {
    Status status = service.Push(*id, "<a>");
    if (!status.ok()) {
      EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
      saw_backpressure = true;
      break;
    }
  }
  EXPECT_TRUE(saw_backpressure);
  EXPECT_GE(service.stats().pushes_rejected, 1u);
}

TEST(QueryServiceTest, PlanCacheIsSharedAcrossSessions) {
  QueryService service(SmallConfig(2));
  for (int i = 0; i < 6; ++i) {
    auto id = service.OpenSession("//book/title/text()");
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(service.Push(*id, "<l><book><title>T</title></book></l>").ok());
    ASSERT_TRUE(service.Close(*id).ok());
    ASSERT_TRUE(service.Release(*id).ok());
  }
  StatsSnapshot snap = service.stats();
  EXPECT_EQ(snap.plan_cache_misses, 1u);  // compiled exactly once
  EXPECT_EQ(snap.plan_cache_hits, 5u);
  EXPECT_EQ(snap.items_emitted, 6u);
  EXPECT_EQ(snap.chunks_processed, 6u);
}

TEST(QueryServiceTest, SessionReuseAcrossDocuments) {
  QueryService service(SmallConfig(2));
  auto id = service.OpenSession("//item/text()");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service.Push(*id, "<r><item>one</item></r>").ok());
  ASSERT_TRUE(service.Close(*id).ok());
  EXPECT_EQ(service.Drain(*id), (std::vector<std::string>{"one"}));
  ASSERT_TRUE(service.ResetSession(*id).ok());
  ASSERT_TRUE(service.Push(*id, "<r><item>two</item></r>").ok());
  ASSERT_TRUE(service.Close(*id).ok());
  EXPECT_EQ(service.Drain(*id), (std::vector<std::string>{"two"}));
}

TEST(QueryServiceTest, CloseSurfacesDocumentErrors) {
  QueryService service(SmallConfig(2));
  auto id = service.OpenSession("//a/text()");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service.Push(*id, "<a><b></a>").ok());  // queued fine
  EXPECT_FALSE(service.Close(*id).ok());  // evaluation failed
}

TEST(QueryServiceTest, ShutdownDrainsInFlightWork) {
  QueryService service(SmallConfig(2));
  auto id = service.OpenSession("//item/text()");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service.Push(*id, "<r><item>last</item></r>").ok());
  ASSERT_TRUE(service.Close(*id).ok());
  service.Shutdown();
  // Results survive shutdown; new work is refused.
  EXPECT_EQ(service.Drain(*id), (std::vector<std::string>{"last"}));
  EXPECT_FALSE(service.Push(*id, "<more/>").ok());
  EXPECT_FALSE(service.OpenSession("/x/text()").ok());
}

// ------------------------------------------------------------- stress test

// N client threads × M sessions each, interleaved chunks, results must
// come back per-session complete and in document order.
TEST(QueryServiceStressTest, ManyThreadsManySessionsKeepOrder) {
  ServiceConfig config;
  config.num_workers = 4;
  config.max_sessions = 64;
  config.max_queued_chunks_per_session = 8;
  config.plan_cache_capacity = 4;
  QueryService service(config);

  constexpr int kThreads = 4;
  constexpr int kSessionsPerThread = 4;
  constexpr int kItemsPerDoc = 50;
  std::atomic<int> failures{0};

  auto client = [&](int thread_index) {
    for (int s = 0; s < kSessionsPerThread; ++s) {
      // Two query shapes so the plan cache sees hits and misses.
      const char* query_text =
          (s % 2 == 0) ? "//entry/text()" : "/doc/entry/text()";
      auto id = service.OpenSession(query_text);
      if (!id.ok()) { ++failures; return; }
      std::vector<std::string> expected;
      std::string doc = "<doc>";
      for (int i = 0; i < kItemsPerDoc; ++i) {
        char value[32];
        std::snprintf(value, sizeof value, "t%ds%di%d", thread_index, s, i);
        expected.push_back(value);
        doc += "<entry>";
        doc += value;
        doc += "</entry>";
      }
      doc += "</doc>";
      // Deliberately ragged chunk sizes to shake out ordering bugs.
      size_t pos = 0;
      int chunk_index = 0;
      while (pos < doc.size()) {
        size_t len = 7 + static_cast<size_t>((thread_index * 13 +
                                              s * 5 + chunk_index) % 23);
        len = std::min(len, doc.size() - pos);
        Status status;
        do {
          status = service.Push(*id, doc.substr(pos, len));
        } while (status.code() == StatusCode::kResourceExhausted);
        if (!status.ok()) { ++failures; return; }
        pos += len;
        ++chunk_index;
      }
      if (!service.Close(*id).ok()) { ++failures; return; }
      if (service.Drain(*id) != expected) { ++failures; return; }
      if (!service.Release(*id).ok()) { ++failures; return; }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(client, t);
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);

  StatsSnapshot snap = service.stats();
  EXPECT_EQ(snap.sessions_opened,
            static_cast<uint64_t>(kThreads * kSessionsPerThread));
  EXPECT_EQ(snap.items_emitted, static_cast<uint64_t>(
                                    kThreads * kSessionsPerThread *
                                    kItemsPerDoc));
  // Two distinct query texts; concurrent first-time opens may race the
  // (deliberately lock-free) compile step, so at most one extra compile
  // per racing thread — never one per session.
  EXPECT_GE(snap.plan_cache_misses, 2u);
  EXPECT_LE(snap.plan_cache_misses, static_cast<uint64_t>(2 * kThreads));
  EXPECT_EQ(snap.plan_cache_hits + snap.plan_cache_misses,
            static_cast<uint64_t>(kThreads * kSessionsPerThread));
  EXPECT_EQ(snap.sessions_active, 0u);
}

// The observability tentpole: under concurrent load every request-path
// histogram must populate, and the counts must reconcile with the work
// actually submitted.
TEST(QueryServiceStressTest, MetricsPopulateUnderConcurrentLoad) {
  ServiceConfig config;
  config.num_workers = 4;
  config.max_sessions = 32;
  QueryService service(config);

  constexpr int kThreads = 4;
  constexpr int kDocsPerThread = 5;
  std::atomic<int> failures{0};
  auto client = [&] {
    for (int d = 0; d < kDocsPerThread; ++d) {
      auto id = service.OpenSession("//e/text()");
      if (!id.ok()) { ++failures; return; }
      for (const char* chunk : {"<r><e>a</e>", "<e>b</e>", "</r>"}) {
        Status status;
        do {
          status = service.Push(*id, chunk);
        } while (status.code() == StatusCode::kResourceExhausted);
        if (!status.ok()) { ++failures; return; }
      }
      if (!service.Close(*id).ok()) { ++failures; return; }
      if (!service.Release(*id).ok()) { ++failures; return; }
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(client);
  for (std::thread& thread : threads) thread.join();
  ASSERT_EQ(failures.load(), 0);

  constexpr uint64_t kDocs = kThreads * kDocsPerThread;
  const obs::Registry& registry = service.metrics_registry();
  const obs::Histogram* latency =
      registry.FindHistogram("xsq_request_latency_us");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count(), kDocs);  // one sample per Close
  const obs::Histogram* queue_wait =
      registry.FindHistogram("xsq_queue_wait_us");
  ASSERT_NE(queue_wait, nullptr);
  // One wait per work item: 3 chunks + 1 close per document.
  EXPECT_EQ(queue_wait->count(), kDocs * 4);
  const obs::Histogram* chunk_latency =
      registry.FindHistogram("xsq_chunk_latency_us");
  ASSERT_NE(chunk_latency, nullptr);
  EXPECT_EQ(chunk_latency->count(), kDocs * 3);
#if XSQ_OBS_ENABLED
  // Phase histograms: one sample per document (flushed at Close).
  for (const char* name : {"xsq_phase_parse_us", "xsq_phase_automaton_us",
                           "xsq_phase_buffer_us"}) {
    const obs::Histogram* phase = registry.FindHistogram(name);
    ASSERT_NE(phase, nullptr) << name;
    EXPECT_EQ(phase->count(), kDocs) << name;
  }
#endif

  // The combined exposition carries both the histograms and the STATS
  // scalars, so one METRICS scrape reconciles them.
  std::string text = service.MetricsText();
  EXPECT_NE(text.find("xsq_request_latency_us_count"), std::string::npos);
  EXPECT_NE(text.find("xsq_queue_wait_us_count"), std::string::npos);
  EXPECT_NE(text.find("xsq_sessions_opened " + std::to_string(kDocs)),
            std::string::npos);
}

TEST(QueryServiceTest, LatencyHistogramsCarryEngineKindLabels) {
  // One document through the deterministic XSQ-NC engine (no closure
  // axis) and one through XSQ-F (closure): each lands in its labeled
  // series, and both land in the unlabeled total.
  QueryService service;
  auto nc = service.OpenSession("/r/a/text()");
  auto f = service.OpenSession("//a/text()");
  ASSERT_TRUE(nc.ok());
  ASSERT_TRUE(f.ok());
  for (SessionId id : {*nc, *f}) {
    ASSERT_TRUE(service.Push(id, "<r><a>x</a></r>").ok());
    ASSERT_TRUE(service.Close(id).ok());
    EXPECT_EQ(service.Drain(id).size(), 1u);
  }

  const obs::Registry& registry = service.metrics_registry();
  const obs::Histogram* nc_series =
      registry.FindHistogram("xsq_request_latency_us", "engine=\"nc\"");
  const obs::Histogram* f_series =
      registry.FindHistogram("xsq_request_latency_us", "engine=\"f\"");
  ASSERT_NE(nc_series, nullptr);
  ASSERT_NE(f_series, nullptr);
  EXPECT_EQ(nc_series->count(), 1u);
  EXPECT_EQ(f_series->count(), 1u);
  EXPECT_EQ(registry.FindHistogram("xsq_request_latency_us")->count(), 2u);
  // Chunk latency splits the same way (1 chunk per document here).
  EXPECT_EQ(
      registry.FindHistogram("xsq_chunk_latency_us", "engine=\"nc\"")->count(),
      1u);
  EXPECT_EQ(
      registry.FindHistogram("xsq_chunk_latency_us", "engine=\"f\"")->count(),
      1u);

  std::string text = service.MetricsText();
  EXPECT_NE(text.find("xsq_request_latency_us_count{engine=\"nc\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("xsq_request_latency_us_count{engine=\"f\"} 1"),
            std::string::npos);
  service.Shutdown();
}

TEST(QueryServiceTest, MetricsTextCarriesSlowQueryExemplars) {
  QueryService service;
  auto id = service.OpenSession("//a/text()");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service.Push(*id, "<r><a>x</a></r>").ok());
  ASSERT_TRUE(service.Close(*id).ok());

  // The slowest query per latency bucket is kept as an exemplar and
  // rendered as comment lines a scraper ignores but a human can read.
  std::string text = service.MetricsText();
  size_t at = text.find("# exemplar xsq_request_latency_us bucket{le=\"");
  ASSERT_NE(at, std::string::npos) << text;
  EXPECT_NE(text.find("//a/text()", at), std::string::npos);
  // Net counters are part of the same exposition even with no listener.
  EXPECT_NE(text.find("xsq_connections_accepted 0"), std::string::npos);
  EXPECT_NE(text.find("xsq_connections_shed 0"), std::string::npos);
  EXPECT_NE(text.find("xsq_disconnect_cancels 0"), std::string::npos);
  service.Shutdown();
}

// RunCached must time replays into both the request-latency and
// tape-replay histograms.
TEST(QueryServiceTapeTest, RunCachedPopulatesReplayMetrics) {
  QueryService service(SmallConfig(2));
  ASSERT_TRUE(
      service.RecordDocument("doc", "<r><e>x</e><e>y</e></r>").ok());
  auto id = service.OpenSession("//e/text()");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service.RunCached(*id, "doc").ok());
  ASSERT_TRUE(service.RunCached(*id, "doc").ok());
  const obs::Registry& registry = service.metrics_registry();
  const obs::Histogram* replay = registry.FindHistogram("xsq_tape_replay_us");
  ASSERT_NE(replay, nullptr);
  EXPECT_EQ(replay->count(), 2u);
  const obs::Histogram* latency =
      registry.FindHistogram("xsq_request_latency_us");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count(), 2u);
}

// Concurrent plan-cache access from many threads on overlapping keys.
TEST(QueryServiceStressTest, PlanCacheConcurrentGetOrCompile) {
  PlanCache cache(4);
  constexpr int kThreads = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &failures, t] {
      for (int i = 0; i < 50; ++i) {
        std::string query_text =
            "//q" + std::to_string((t + i) % 6) + "/text()";
        if (!cache.GetOrCompile(query_text).ok()) ++failures;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_LE(cache.size(), 4u);
}

// ----------------------------------------------------------- DocumentCache

std::shared_ptr<const tape::Tape> MakeTape(const std::string& document) {
  Result<tape::Tape> tape = tape::RecordDocument(document);
  EXPECT_TRUE(tape.ok()) << tape.status().ToString();
  return std::make_shared<const tape::Tape>(*std::move(tape));
}

TEST(DocumentCacheTest, MissThenHit) {
  DocumentCache cache(4);
  EXPECT_EQ(cache.Get("d"), nullptr);
  auto tape = MakeTape("<a>x</a>");
  cache.Put("d", tape);
  EXPECT_EQ(cache.Get("d").get(), tape.get());
  DocumentCache::Counters counters = cache.counters();
  EXPECT_EQ(counters.misses, 1u);
  EXPECT_EQ(counters.hits, 1u);
  EXPECT_EQ(counters.resident_documents, 1u);
  EXPECT_EQ(counters.resident_bytes, tape->memory_bytes());
}

TEST(DocumentCacheTest, CapacityEvictsLeastRecentlyUsed) {
  DocumentCache cache(2);
  cache.Put("a", MakeTape("<a/>"));
  cache.Put("b", MakeTape("<b/>"));
  EXPECT_NE(cache.Get("a"), nullptr);     // a most recent; {a,b}
  cache.Put("c", MakeTape("<c/>"));       // evicts b
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);
  EXPECT_EQ(cache.counters().evictions, 1u);
}

TEST(DocumentCacheTest, ByteBudgetEvicts) {
  auto tape = MakeTape("<a>some text content</a>");
  size_t one = tape->memory_bytes();
  DocumentCache cache(100, /*byte_budget=*/2 * one + one / 2);
  cache.Put("a", tape);
  cache.Put("b", MakeTape("<a>some text content</a>"));
  cache.Put("c", MakeTape("<a>some text content</a>"));  // evicts "a"
  EXPECT_EQ(cache.Get("a"), nullptr);
  DocumentCache::Counters counters = cache.counters();
  EXPECT_EQ(counters.resident_documents, 2u);
  EXPECT_LE(counters.resident_bytes, 2 * one + one / 2);
}

TEST(DocumentCacheTest, OversizedTapeStaysResidentAlone) {
  auto tape = MakeTape("<a>payload far above the byte budget</a>");
  DocumentCache cache(100, /*byte_budget=*/1);
  cache.Put("big", tape);
  EXPECT_NE(cache.Get("big"), nullptr);  // never thrashes to empty
  cache.Put("second", MakeTape("<b/>"));
  EXPECT_EQ(cache.size(), 1u);  // "big" evicted in favor of newest
  EXPECT_NE(cache.Get("second"), nullptr);
}

TEST(DocumentCacheTest, ReplacePutAndExplicitEvict) {
  DocumentCache cache(4);
  cache.Put("d", MakeTape("<a>one</a>"));
  auto replacement = MakeTape("<a>two two two</a>");
  cache.Put("d", replacement);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.counters().resident_bytes, replacement->memory_bytes());
  EXPECT_EQ(cache.counters().evictions, 0u);  // replacement, not pressure
  EXPECT_TRUE(cache.Evict("d"));
  EXPECT_FALSE(cache.Evict("d"));
  EXPECT_EQ(cache.counters().resident_bytes, 0u);
}

// Regression: capacity 0 used to be clamped to 1 while byte budget 0
// already meant unlimited — both zeros now mean unlimited.
TEST(DocumentCacheTest, ZeroCapacityMeansUnlimited) {
  DocumentCache cache(0);
  for (int i = 0; i < 50; ++i) {
    cache.Put("doc" + std::to_string(i), MakeTape("<a/>"));
  }
  EXPECT_EQ(cache.size(), 50u);
  EXPECT_EQ(cache.counters().evictions, 0u);
  EXPECT_NE(cache.Get("doc0"), nullptr);  // oldest still resident
}

TEST(DocumentCacheTest, ZeroByteBudgetMeansUnlimited) {
  DocumentCache cache(0, /*byte_budget=*/0);
  for (int i = 0; i < 20; ++i) {
    cache.Put("doc" + std::to_string(i),
              MakeTape("<a>plenty of text to have nonzero bytes</a>"));
  }
  EXPECT_EQ(cache.size(), 20u);
  EXPECT_EQ(cache.counters().evictions, 0u);
}

TEST(DocumentCacheTest, ExplicitEvictionsAreCountedSeparately) {
  DocumentCache cache(2);
  cache.Put("a", MakeTape("<a/>"));
  cache.Put("b", MakeTape("<b/>"));
  cache.Put("c", MakeTape("<c/>"));  // LRU-evicts "a"
  EXPECT_TRUE(cache.Evict("b"));
  EXPECT_FALSE(cache.Evict("missing"));
  DocumentCache::Counters counters = cache.counters();
  EXPECT_EQ(counters.evictions, 1u);           // budget pressure only
  EXPECT_EQ(counters.explicit_evictions, 1u);  // the Evict("b") call
  EXPECT_EQ(counters.resident_documents, 1u);
}

// -------------------------------------------------- cached-document serving

TEST(QueryServiceTapeTest, RunCachedMatchesStreaming) {
  const std::string document =
      "<r><item>one</item><skip>no</skip><item>two</item></r>";
  QueryService service(SmallConfig(2));

  auto recorded = service.RecordDocument("doc", document);
  ASSERT_TRUE(recorded.ok()) << recorded.status().ToString();
  EXPECT_GT((*recorded)->event_count(), 0u);

  auto streamed = service.OpenSession("//item/text()");
  ASSERT_TRUE(streamed.ok());
  ASSERT_TRUE(service.Push(*streamed, document).ok());
  ASSERT_TRUE(service.Close(*streamed).ok());
  std::vector<std::string> expected = service.Drain(*streamed);

  auto cached = service.OpenSession("//item/text()");
  ASSERT_TRUE(cached.ok());
  ASSERT_TRUE(service.RunCached(*cached, "doc").ok());
  EXPECT_EQ(service.Drain(*cached), expected);
  EXPECT_EQ(expected, (std::vector<std::string>{"one", "two"}));

  StatsSnapshot snap = service.stats();
  EXPECT_EQ(snap.doc_cache_hits, 1u);
  EXPECT_EQ(snap.doc_cache_documents, 1u);
  EXPECT_GT(snap.doc_cache_bytes, 0u);
  EXPECT_EQ(snap.tape_replays, 1u);
  EXPECT_GT(snap.tape_events_replayed, 0u);
}

TEST(QueryServiceTapeTest, RunCachedComposesBackToBack) {
  QueryService service(SmallConfig(2));
  ASSERT_TRUE(service.RecordDocument("a", "<r><v>1</v></r>").ok());
  ASSERT_TRUE(service.RecordDocument("b", "<r><v>2</v><v>3</v></r>").ok());
  auto id = service.OpenSession("//v/text()");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service.RunCached(*id, "a").ok());
  ASSERT_TRUE(service.RunCached(*id, "b").ok());  // auto-rewinds
  ASSERT_TRUE(service.RunCached(*id, "a").ok());
  EXPECT_EQ(service.Drain(*id),
            (std::vector<std::string>{"1", "2", "3", "1"}));
}

TEST(QueryServiceTapeTest, RunCachedAggregates) {
  QueryService service(SmallConfig(2));
  ASSERT_TRUE(
      service.RecordDocument("nums", "<r><v>1</v><v>2</v><v>4</v></r>").ok());
  auto id = service.OpenSession("//v/sum()");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service.RunCached(*id, "nums").ok());
  std::optional<double> sum = service.FinalAggregate(*id);
  ASSERT_TRUE(sum.has_value());
  EXPECT_DOUBLE_EQ(*sum, 7.0);
}

TEST(QueryServiceTapeTest, UnknownDocumentAndEvict) {
  QueryService service(SmallConfig(1));
  auto id = service.OpenSession("//a/text()");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(service.RunCached(*id, "nope").code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(service.RecordDocument("doc", "<a>x</a>").ok());
  ASSERT_TRUE(service.RunCached(*id, "doc").ok());
  ASSERT_TRUE(service.EvictDocument("doc").ok());
  EXPECT_EQ(service.EvictDocument("doc").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service.RunCached(*id, "doc").code(),
            StatusCode::kInvalidArgument);
}

TEST(QueryServiceTapeTest, RecordWithProjectionPreservesResults) {
  std::string document = "<r>";
  for (int i = 0; i < 50; ++i) {
    document += "<keep>k" + std::to_string(i) + "</keep>";
    document += "<noise><deep>waste</deep></noise>";
  }
  document += "</r>";
  QueryService service(SmallConfig(2));
  auto full = service.RecordDocument("full", document);
  ASSERT_TRUE(full.ok());
  auto projected = service.RecordDocument("proj", document,
                                          {"/r/keep/text()"});
  ASSERT_TRUE(projected.ok());
  EXPECT_LT((*projected)->memory_bytes(), (*full)->memory_bytes());

  auto id = service.OpenSession("/r/keep/text()");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service.RunCached(*id, "full").ok());
  std::vector<std::string> from_full = service.Drain(*id);
  ASSERT_TRUE(service.RunCached(*id, "proj").ok());
  EXPECT_EQ(service.Drain(*id), from_full);
  EXPECT_EQ(from_full.size(), 50u);
}

TEST(QueryServiceTapeTest, RunCachedAfterFailureRecovers) {
  QueryService service(SmallConfig(1));
  ASSERT_TRUE(service.RecordDocument("doc", "<a>ok</a>").ok());
  auto id = service.OpenSession("//a/text()");
  ASSERT_TRUE(id.ok());
  // Fail the session with a malformed streamed document first.
  ASSERT_TRUE(service.Push(*id, "<a><b></a>").ok());
  EXPECT_FALSE(service.Close(*id).ok());
  // RunCached rewinds the failed session and serves from the tape.
  ASSERT_TRUE(service.RunCached(*id, "doc").ok());
  EXPECT_EQ(service.Drain(*id), (std::vector<std::string>{"ok"}));
}

// Many threads replaying the same cached tape into their own sessions;
// run under TSan by tools/check.sh.
TEST(QueryServiceStressTest, ConcurrentRunCachedSharedTape) {
  QueryService service(SmallConfig(4));
  std::string document = "<r>";
  for (int i = 0; i < 100; ++i) {
    document += "<item>v" + std::to_string(i) + "</item>";
  }
  document += "</r>";
  ASSERT_TRUE(service.RecordDocument("shared", document).ok());

  constexpr int kThreads = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&service, &failures] {
      auto id = service.OpenSession("//item/text()");
      if (!id.ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < 5; ++i) {
        if (!service.RunCached(*id, "shared").ok()) ++failures;
        if (service.Drain(*id).size() != 100u) ++failures;
      }
      if (!service.Release(*id).ok()) ++failures;
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  StatsSnapshot snap = service.stats();
  EXPECT_EQ(snap.tape_replays, static_cast<uint64_t>(kThreads * 5));
  EXPECT_EQ(snap.doc_cache_hits, static_cast<uint64_t>(kThreads * 5));
}

// ------------------------------------------------- StatsSnapshot wire form

TEST(StatsSnapshotTest, ParseIsTheExactInverseOfToString) {
  StatsSnapshot snap;
  snap.sessions_opened = 7;
  snap.sessions_active = 2;
  snap.chunks_processed = 100;
  snap.bytes_consumed = 123456;
  snap.items_emitted = 42;
  snap.queue_high_water = 9;
  snap.doc_cache_documents = 3;
  snap.tape_replays = 11;
  snap.connections_accepted = 5;
  snap.subscriptions_active = 1;
  snap.fanout_shed = 2;

  std::string text = snap.ToString();
  Result<StatsSnapshot> parsed = StatsSnapshot::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->ToString(), text);
  EXPECT_EQ(parsed->sessions_opened, 7u);
  EXPECT_EQ(parsed->queue_high_water, 9u);
}

TEST(StatsSnapshotTest, ParseToleratesMissingFieldsFromAnOlderShard) {
  // A shard running an older build sends fewer lines; absent counters
  // stay zero instead of failing the whole scrape.
  Result<StatsSnapshot> parsed =
      StatsSnapshot::Parse("sessions_opened 4\nitems_emitted 10\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->sessions_opened, 4u);
  EXPECT_EQ(parsed->items_emitted, 10u);
  EXPECT_EQ(parsed->tape_replays, 0u);
}

TEST(StatsSnapshotTest, ParseRejectsUnknownNamesAndMalformedLines) {
  EXPECT_EQ(StatsSnapshot::Parse("bogus_counter 1\n").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(StatsSnapshot::Parse("sessions_opened\n").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(StatsSnapshot::Parse("sessions_opened banana\n").status().code(),
            StatusCode::kParseError);
}

TEST(StatsSnapshotTest, MergeSumsEverythingExceptTheHighWaterMark) {
  StatsSnapshot a;
  a.sessions_opened = 3;
  a.items_emitted = 10;
  a.queue_high_water = 4;
  a.doc_cache_documents = 1;  // gauge: cluster "right now" is the sum
  StatsSnapshot b;
  b.sessions_opened = 5;
  b.items_emitted = 1;
  b.queue_high_water = 9;
  b.doc_cache_documents = 2;

  a.Merge(b);
  EXPECT_EQ(a.sessions_opened, 8u);
  EXPECT_EQ(a.items_emitted, 11u);
  EXPECT_EQ(a.doc_cache_documents, 3u);
  // Per-session high-water is not additive across shards: max, not sum.
  EXPECT_EQ(a.queue_high_water, 9u);
}

}  // namespace
}  // namespace xsq::service
