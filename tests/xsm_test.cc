#include "xsm/xsm_engine.h"

#include <gtest/gtest.h>

#include "core/engine_nc.h"
#include "dom/builder.h"
#include "dom/evaluator.h"
#include "test_util.h"
#include "xml/sax_parser.h"
#include "xpath/ast.h"

namespace xsq::xsm {
namespace {

constexpr const char* kFig1 =
    "<root><pub>"
    "<book id=\"1\"><price>12.00</price><name>First</name>"
    "<author>A</author><price type=\"discount\">10.00</price></book>"
    "<book id=\"2\"><price>14.00</price><name>Second</name>"
    "<author>A</author><author>B</author>"
    "<price type=\"discount\">12.00</price></book>"
    "<year>2002</year>"
    "</pub></root>";

struct XsmRun {
  std::vector<std::string> items;
  std::optional<double> aggregate;
  size_t peak_memory = 0;
  uint64_t tokens_forwarded = 0;
};

XsmRun RunXsm(std::string_view query_text, std::string_view xml) {
  Result<xpath::Query> query = xpath::ParseQuery(query_text);
  EXPECT_TRUE(query.ok()) << query.status().ToString();
  core::CollectingSink sink;
  auto engine = XsmEngine::Create(*query, &sink);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  xml::SaxParser parser(engine->get());
  Status status = parser.Parse(xml);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE((*engine)->status().ok());
  return {std::move(sink.items), sink.aggregate,
          (*engine)->memory().peak_bytes(), (*engine)->tokens_forwarded()};
}

TEST(XsmEngineTest, RejectsClosures) {
  Result<xpath::Query> query = xpath::ParseQuery("//a/text()");
  ASSERT_TRUE(query.ok());
  core::CollectingSink sink;
  auto engine = XsmEngine::Create(*query, &sink);
  EXPECT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kNotSupported);
}

TEST(XsmEngineTest, PaperExample1) {
  XsmRun r = RunXsm("/root/pub[year=2002]/book[price<11]/author", kFig1);
  ASSERT_EQ(r.items.size(), 1u);
  EXPECT_EQ(r.items[0], "<author>A</author>");
}

TEST(XsmEngineTest, TextAttributeAndElementOutputs) {
  XsmRun r = RunXsm("/root/pub/book/name/text()", kFig1);
  EXPECT_EQ(r.items, (std::vector<std::string>{"First", "Second"}));
  r = RunXsm("/root/pub/book/@id", kFig1);
  EXPECT_EQ(r.items, (std::vector<std::string>{"1", "2"}));
  r = RunXsm("/root/pub/book[price<11]", kFig1);
  ASSERT_EQ(r.items.size(), 1u);
  EXPECT_EQ(r.items[0].substr(0, 13), "<book id=\"1\">");
}

TEST(XsmEngineTest, Aggregations) {
  XsmRun r = RunXsm("/root/pub/book/price/sum()", kFig1);
  ASSERT_TRUE(r.aggregate.has_value());
  EXPECT_DOUBLE_EQ(*r.aggregate, 48.0);
  r = RunXsm("/root/pub/book/author/count()", kFig1);
  EXPECT_DOUBLE_EQ(*r.aggregate, 3.0);
}

TEST(XsmEngineTest, LatePredicateBuffersWholeSubtreeAtTheStage) {
  // The XSM cost model: an unresolved predicate buffers the candidate's
  // entire content at the stage queue - much more than XSQ-NC's items.
  std::string doc = "<r><b><t>first</t>";
  for (int i = 0; i < 200; ++i) doc += "<pad>xxxxxxxx</pad>";
  doc += "<ok/></b></r>";
  XsmRun r = RunXsm("/r/b[ok]/t/text()", doc);
  ASSERT_EQ(r.items.size(), 1u);
  EXPECT_EQ(r.items[0], "first");
  EXPECT_GT(r.peak_memory, 3000u);  // buffered the pad elements

  Result<xpath::Query> query = xpath::ParseQuery("/r/b[ok]/t/text()");
  ASSERT_TRUE(query.ok());
  core::CollectingSink sink;
  auto nc = core::XsqNcEngine::Create(*query, &sink);
  ASSERT_TRUE(nc.ok());
  xml::SaxParser parser(nc->get());
  ASSERT_TRUE(parser.Parse(doc).ok());
  EXPECT_LT((*nc)->memory().peak_bytes(), 100u);  // XSQ buffers only "first"
}

TEST(XsmEngineTest, TokensAreCopiedBetweenStages) {
  XsmRun shallow = RunXsm("/root/pub/text()", kFig1);
  XsmRun deep = RunXsm("/root/pub/book/name/text()", kFig1);
  EXPECT_GT(deep.tokens_forwarded, 0u);
  (void)shallow;
}

TEST(XsmEngineTest, ReusableAcrossDocuments) {
  Result<xpath::Query> query = xpath::ParseQuery("/r/a/text()");
  ASSERT_TRUE(query.ok());
  core::CollectingSink sink;
  auto engine = XsmEngine::Create(*query, &sink);
  ASSERT_TRUE(engine.ok());
  for (const char* doc : {"<r><a>1</a></r>", "<r><a>2</a></r>"}) {
    xml::SaxParser parser(engine->get());
    ASSERT_TRUE(parser.Parse(doc).ok());
  }
  EXPECT_EQ(sink.items, (std::vector<std::string>{"1", "2"}));
}

class XsmDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(XsmDifferentialTest, AgreesWithOracleOnClosureFreeQueries) {
  const uint64_t seed = GetParam();
  for (uint64_t i = 0; i < 6; ++i) {
    const std::string doc = testutil::RandomDocument(seed * 131 + i);
    std::string query_text = testutil::RandomQuery(seed * 17 + i * 7);
    Result<xpath::Query> query = xpath::ParseQuery(query_text);
    ASSERT_TRUE(query.ok());
    if (query->HasClosure()) continue;

    Result<dom::Document> document = dom::BuildFromString(doc);
    ASSERT_TRUE(document.ok());
    Result<dom::EvalResult> oracle = dom::Evaluate(*document, *query);
    ASSERT_TRUE(oracle.ok());

    core::CollectingSink sink;
    auto engine = XsmEngine::Create(*query, &sink);
    ASSERT_TRUE(engine.ok());
    xml::SaxParser parser(engine->get());
    ASSERT_TRUE(parser.Parse(doc).ok());
    ASSERT_TRUE((*engine)->status().ok());
    EXPECT_EQ(sink.items, oracle->items)
        << "XSM mismatch\nquery: " << query_text << "\ndoc: " << doc;
    EXPECT_EQ(sink.aggregate.has_value(), oracle->aggregate.has_value());
    if (sink.aggregate.has_value() && oracle->aggregate.has_value()) {
      EXPECT_DOUBLE_EQ(*sink.aggregate, *oracle->aggregate) << query_text;
    }
    EXPECT_EQ((*engine)->memory().current_bytes(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XsmDifferentialTest,
                         ::testing::Range(uint64_t{0}, uint64_t{40}));

}  // namespace
}  // namespace xsq::xsm
