// Differential testing at corpus scale: ~100KB generated documents
// (recursive generic trees and the Figure 20 pub corpus) against the
// DOM oracle, for XSQ-F, union queries, and aggregations. Complements
// the small randomized suite with realistic element counts.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/multi_query.h"
#include "core/result_sink.h"
#include "datagen/generators.h"
#include "dom/builder.h"
#include "dom/evaluator.h"
#include "xml/sax_parser.h"
#include "xpath/ast.h"

namespace xsq {
namespace {

void ExpectMatchesOracle(const std::string& query_text,
                         const std::string& xml) {
  Result<xpath::Query> query = xpath::ParseQuery(query_text);
  ASSERT_TRUE(query.ok()) << query_text;
  Result<dom::Document> document = dom::BuildFromString(xml);
  ASSERT_TRUE(document.ok());
  Result<dom::EvalResult> oracle = dom::Evaluate(*document, *query);
  ASSERT_TRUE(oracle.ok());

  core::CollectingSink sink;
  auto engine = core::XsqEngine::Create(*query, &sink);
  ASSERT_TRUE(engine.ok());
  xml::SaxParser parser(engine->get());
  ASSERT_TRUE(parser.Parse(xml).ok());
  ASSERT_TRUE((*engine)->status().ok()) << query_text;
  EXPECT_EQ(sink.items.size(), oracle->items.size()) << query_text;
  EXPECT_EQ(sink.items, oracle->items) << query_text;
  EXPECT_EQ(sink.aggregate.has_value(), oracle->aggregate.has_value())
      << query_text;
  if (sink.aggregate.has_value() && oracle->aggregate.has_value()) {
    EXPECT_DOUBLE_EQ(*sink.aggregate, *oracle->aggregate) << query_text;
  }
  EXPECT_EQ((*engine)->memory().current_bytes(), 0u) << query_text;
}

class ScaleDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ScaleDifferentialTest, RecursivePubCorpus) {
  const std::string xml =
      datagen::GenerateRecursivePubs(100000, GetParam());
  const char* queries[] = {
      "//pub[year]//book[@id]/title/text()",
      "//pub//pub/book/price/sum()",
      "//book[price>50]/title/text()",
      "//pub[book@id]//year/text()",
      "//pub/year/count()",
      "//pub[year>2005]//book",
      "//book/@id | //pub/year/@id",
      "//book[title%king]/price/text()",
  };
  for (const char* query : queries) {
    ExpectMatchesOracle(query, xml);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScaleDifferentialTest,
                         ::testing::Range(uint64_t{0}, uint64_t{6}));

class GenericScaleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GenericScaleTest, GenericCorpusClosureAndUnionQueries) {
  datagen::GenericOptions options;
  options.nested_levels = 7;
  options.tags = {"n0", "n1", "n2"};
  const std::string xml = datagen::GenerateGeneric(80000, GetParam(), options);
  const char* queries[] = {
      "//n0//n1/text()",
      "//n0[@id]//n2/count()",
      "//n1[n2]//n0",
      "//n0/text() | //n1/text()",
      "//n2[@id>5000]/@id",
      "//*[n1]/n2/sum()",
  };
  for (const char* query : queries) {
    ExpectMatchesOracle(query, xml);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GenericScaleTest,
                         ::testing::Range(uint64_t{0}, uint64_t{6}));

TEST(ScaleMultiQueryTest, ClosureQueriesShareOneParseAtScale) {
  const std::string xml = datagen::GenerateRecursivePubs(150000, 17);
  const char* queries[] = {
      "//pub[year]//book[@id]/title/text()",
      "//book/price/sum()",
      "//pub//pub/count()",
  };
  std::vector<core::CollectingSink> sinks(std::size(queries));
  core::MultiQueryEngine multi;
  for (size_t i = 0; i < std::size(queries); ++i) {
    ASSERT_TRUE(multi.AddQuery(queries[i], &sinks[i]).ok());
  }
  xml::SaxParser parser(&multi);
  ASSERT_TRUE(parser.Parse(xml).ok());
  ASSERT_TRUE(multi.status().ok());
  for (size_t i = 0; i < std::size(queries); ++i) {
    Result<core::QueryResult> alone = core::RunQuery(queries[i], xml);
    ASSERT_TRUE(alone.ok());
    EXPECT_EQ(sinks[i].items, alone->items) << queries[i];
    if (alone->aggregate.has_value()) {
      ASSERT_TRUE(sinks[i].aggregate.has_value());
      EXPECT_DOUBLE_EQ(*sinks[i].aggregate, *alone->aggregate);
    }
  }
}

TEST(ScaleAggregationTest, UnionAggregatesMatchOracleOnShake) {
  const std::string xml = datagen::GenerateShake(120000, 5);
  ExpectMatchesOracle("//SPEAKER/count() | //LINE/count()", xml);
  ExpectMatchesOracle(
      "/PLAY/ACT/SCENE/SPEECH[LINE%love]/SPEAKER/text()", xml);
  ExpectMatchesOracle("//SPEECH[SPEAKER=HAMLET]/LINE/count()", xml);
}

}  // namespace
}  // namespace xsq
