// libFuzzer harness for the tape loader: arbitrary bytes as a tape
// image through Tape::FromBytes (the same decoding Tape::Load runs on
// files). Inputs that pass the CRC gauntlet — in practice only
// unmutated corpus seeds — are replayed to cover the cursor's record
// decoding end to end.
#include <cstddef>
#include <cstdint>
#include <string>

#include "tape/replayer.h"
#include "tape/tape.h"
#include "xml/events.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string image(reinterpret_cast<const char*>(data), size);
  xsq::Result<xsq::tape::Tape> tape =
      xsq::tape::Tape::FromBytes(std::move(image), "fuzz");
  if (tape.ok()) {
    xsq::xml::RecordingHandler handler;
    (void)xsq::tape::Replay(*tape, &handler);
  }
  return 0;
}
