// libFuzzer harness for the XPath query parser: arbitrary bytes as
// query text. Compilation to a plan is included when parsing succeeds,
// covering HPDT construction on fuzzer-discovered query shapes.
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "core/compiled_plan.h"
#include "xpath/ast.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);
  xsq::Result<xsq::xpath::Query> query = xsq::xpath::ParseQuery(text);
  if (query.ok()) {
    (void)xsq::core::CompilePlan(text);
  }
  return 0;
}
