// libFuzzer harness for the SAX parser: arbitrary bytes, parsed once in
// a single Feed and once split into small chunks, both under the
// Serving resource limits (the configuration xsqd exposes to untrusted
// input). Any crash, hang, or sanitizer report is a finding; error
// Statuses are the expected outcome for most inputs.
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/status.h"
#include "xml/events.h"
#include "xml/sax_parser.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view doc(reinterpret_cast<const char*>(data), size);
  {
    xsq::xml::RecordingHandler handler;
    xsq::xml::SaxParser parser(&handler, xsq::xml::ParserLimits::Serving());
    (void)parser.Parse(doc);
  }
  {
    // Chunked delivery exercises the pending-markup resume paths.
    xsq::xml::RecordingHandler handler;
    xsq::xml::SaxParser parser(&handler, xsq::xml::ParserLimits::Serving());
    xsq::Status status;
    for (size_t pos = 0; pos < doc.size() && status.ok(); pos += 17) {
      status = parser.Feed(doc.substr(pos, 17));
    }
    if (status.ok()) (void)parser.Finish();
  }
  return 0;
}
