// libFuzzer harness for the GOSSIP verb surface: arbitrary bytes as
// the single-token wire payload a peer router would send, driven
// through the exact decode path the verb uses (unescape, CRC trailer
// check, header and line parsing). Tokens that decode successfully are
// additionally re-encoded and decoded again — wire canonicalization
// must be lossless, so any fuzzer-discovered digest that survives
// DecodeWire once must round-trip exactly.
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "cluster/gossip.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view token(reinterpret_cast<const char*>(data), size);
  auto decoded = xsq::cluster::GossipDigest::DecodeWire(token);
  if (decoded.ok()) {
    auto again =
        xsq::cluster::GossipDigest::DecodeWire(decoded->EncodeWire());
    if (!again.ok() || !(*again == *decoded)) __builtin_trap();
  }
  // The unescaped block parser is also reachable (DIGEST reply lines);
  // raw bytes must never crash it.
  (void)xsq::cluster::GossipDigest::Parse(token);
  return 0;
}
