// libFuzzer harness for the SUBSCRIBE verb surface: arbitrary bytes as
// the subscription query text, driven through the full registration
// pipeline — XPath parse, skeleton extraction (predicate stripping),
// shared-NFA insertion, and persistent engine construction. Queries
// that register successfully are additionally matched against a small
// document (one Publish exercises the tee/replay path on the
// fuzzer-discovered query shape) and then unsubscribed.
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "pubsub/subscription_registry.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);
  xsq::pubsub::SubscriptionRegistry registry;
  xsq::Result<uint64_t> id = registry.Subscribe(text);
  if (id.ok()) {
    (void)registry.Publish(
        "<r a=\"1\"><x y=\"2\">7</x><x>text</x><z><x>9</x></z></r>");
    (void)registry.Unsubscribe(*id);
  }
  return 0;
}
