#include <gtest/gtest.h>

#include "bench_util/runner.h"
#include "bench_util/table.h"
#include "datagen/generators.h"

namespace xsq::bench {
namespace {

TEST(RunnerTest, PureParserMeasuresThroughput) {
  std::string xml = datagen::GenerateDblp(100000, 1);
  Result<RunMeasurement> m = RunSystem(System::kPureParser, "", xml);
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(m->supported);
  EXPECT_EQ(m->input_bytes, xml.size());
  EXPECT_GT(m->throughput_mb_per_s(), 0.0);
  EXPECT_EQ(m->item_count, 0u);
}

TEST(RunnerTest, AllSystemsRunASupportedQuery) {
  std::string xml = datagen::GenerateDblp(100000, 1);
  const char* query = "/dblp/article/title/text()";
  Result<RunMeasurement> pure = RunSystem(System::kPureParser, "", xml);
  ASSERT_TRUE(pure.ok());
  size_t expected_items = 0;
  for (System system : {System::kXsqF, System::kXsqNc, System::kLazyDfa,
                        System::kDom, System::kNaive}) {
    Result<RunMeasurement> m = RunSystem(system, query, xml);
    ASSERT_TRUE(m.ok()) << SystemName(system);
    ASSERT_TRUE(m->supported) << SystemName(system);
    EXPECT_GT(m->item_count, 0u) << SystemName(system);
    if (expected_items == 0) {
      expected_items = m->item_count;
    } else {
      EXPECT_EQ(m->item_count, expected_items) << SystemName(system);
    }
    EXPECT_GE(RelativeThroughput(*m, *pure), 0.0);
  }
}

TEST(RunnerTest, UnsupportedCombinationsAreReportedNotErrors) {
  std::string xml = "<r><a><b/></a></r>";
  // Predicates: unsupported by the lazy DFA.
  Result<RunMeasurement> m = RunSystem(System::kLazyDfa, "/r/a[b]", xml);
  ASSERT_TRUE(m.ok());
  EXPECT_FALSE(m->supported);
  EXPECT_FALSE(m->unsupported_reason.empty());
  // Closures: unsupported by XSQ-NC.
  m = RunSystem(System::kXsqNc, "//a", xml);
  ASSERT_TRUE(m.ok());
  EXPECT_FALSE(m->supported);
}

TEST(RunnerTest, DomReportsPreprocessingPhaseAndLinearMemory) {
  std::string small = datagen::GenerateDblp(50000, 1);
  std::string large = datagen::GenerateDblp(250000, 1);
  const char* query = "/dblp/article/title/text()";
  Result<RunMeasurement> ms = RunSystem(System::kDom, query, small);
  Result<RunMeasurement> ml = RunSystem(System::kDom, query, large);
  ASSERT_TRUE(ms.ok() && ml.ok());
  EXPECT_GT(ms->peak_memory_bytes, small.size() / 2);
  EXPECT_GT(ml->peak_memory_bytes, 3 * ms->peak_memory_bytes);
}

TEST(RunnerTest, StreamingMemoryStaysFlat) {
  std::string small = datagen::GenerateDblp(50000, 1);
  std::string large = datagen::GenerateDblp(250000, 1);
  const char* query = "/dblp/inproceedings[author]/title/text()";
  Result<RunMeasurement> ms = RunSystem(System::kXsqF, query, small);
  Result<RunMeasurement> ml = RunSystem(System::kXsqF, query, large);
  ASSERT_TRUE(ms.ok() && ml.ok());
  // 5x the input must not cost anywhere near 5x the buffer.
  EXPECT_LT(ml->peak_memory_bytes, 2 * ms->peak_memory_bytes + 4096);
}

TEST(RunnerTest, SystemNamesAreStable) {
  EXPECT_STREQ(SystemName(System::kPureParser), "PureParser");
  EXPECT_STREQ(SystemName(System::kXsqF), "XSQ-F");
  EXPECT_STREQ(SystemName(System::kXsqNc), "XSQ-NC");
}

TEST(TableTest, RendersAlignedColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer", "2.5"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  // Four lines: header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TableTest, BarScalesWithFraction) {
  EXPECT_EQ(Bar(0.0, 10), "----------");
  EXPECT_EQ(Bar(1.0, 10), "##########");
  EXPECT_EQ(Bar(0.5, 10), "#####-----");
  EXPECT_EQ(Bar(2.0, 10), "##########");  // clamped
}

TEST(TableTest, Formatting) {
  EXPECT_EQ(FormatDouble(1.2345, 2), "1.23");
  EXPECT_EQ(FormatBytes(512), "512B");
  EXPECT_EQ(FormatBytes(64 * 1024), "64.0KB");
  EXPECT_EQ(FormatBytes(20 * 1024 * 1024), "20.0MB");
}

}  // namespace
}  // namespace xsq::bench
