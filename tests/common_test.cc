#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <optional>
#include <string>

#include "common/crc32c.h"
#include "common/memory_tracker.h"
#include "common/status.h"
#include "common/strings.h"
#include "core/aggregator.h"
#include "core/item.h"

namespace xsq {
namespace {

TEST(StatusTest, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::ParseError("bad tag");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_EQ(status.ToString(), "ParseError: bad tag");
}

TEST(StatusTest, EveryCodeHasAName) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotSupported), "NotSupported");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCancelled), "Cancelled");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
  EXPECT_STREQ(StatusCodeName(StatusCode::kLimitExceeded), "LimitExceeded");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDataCorruption), "DataCorruption");
}

TEST(Crc32cTest, KnownAnswerVectors) {
  // RFC 3720 appendix B.4 test vectors for CRC32C (Castagnoli).
  EXPECT_EQ(Crc32c("", 0), 0x00000000u);
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  std::string ones(32, '\xff');
  EXPECT_EQ(Crc32c(ones.data(), ones.size()), 0x62A8AB43u);
}

TEST(Crc32cTest, SeedChainingMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  uint32_t whole = Crc32c(data.data(), data.size());
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = Crc32c(data.data(), split);
    crc = Crc32c(data.data() + split, data.size() - split, crc);
    EXPECT_EQ(crc, whole) << "split " << split;
  }
}

TEST(Crc32cTest, SingleBitFlipsAlwaysChangeTheChecksum) {
  const std::string data = "XSQTAPE2 payload bytes for the flip check";
  const uint32_t reference = Crc32c(data.data(), data.size());
  for (size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = data;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      EXPECT_NE(Crc32c(mutated.data(), mutated.size()), reference)
          << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> good = 42;
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  EXPECT_TRUE(good.status().ok());
  Result<int> bad = Status::InvalidArgument("nope");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("abc");
  std::string moved = *std::move(r);
  EXPECT_EQ(moved, "abc");
}

TEST(StringsTest, ParseNumber) {
  EXPECT_DOUBLE_EQ(*ParseNumber("12.5"), 12.5);
  EXPECT_DOUBLE_EQ(*ParseNumber("  -3 "), -3.0);
  EXPECT_DOUBLE_EQ(*ParseNumber("1e3"), 1000.0);
  EXPECT_FALSE(ParseNumber("").has_value());
  EXPECT_FALSE(ParseNumber("12x").has_value());
  EXPECT_FALSE(ParseNumber("x12").has_value());
  EXPECT_FALSE(ParseNumber("1 2").has_value());
}

// Regression: numerals longer than the 64-byte stack buffer used to be
// rejected outright; they must now take the heap path and parse.
TEST(StringsTest, ParseNumberLongNumerals) {
  // 70-digit integer: value saturates the double mantissa but parses.
  std::string long_int(70, '9');
  ASSERT_TRUE(ParseNumber(long_int).has_value());
  EXPECT_DOUBLE_EQ(*ParseNumber(long_int), 1e70);

  // Zero-padded fraction well past 63 chars, exact value 0.5.
  std::string padded = "0." + std::string(100, '0');
  padded.insert(2, "5");
  EXPECT_DOUBLE_EQ(*ParseNumber(padded), 0.5);

  // Long garbage is still rejected (parse must consume every byte).
  std::string long_bad(80, '1');
  long_bad.push_back('x');
  EXPECT_FALSE(ParseNumber(long_bad).has_value());

  // Exactly at and around the stack-buffer boundary.
  for (size_t digits : {62u, 63u, 64u, 65u}) {
    std::string s = "1" + std::string(digits, '0');
    ASSERT_TRUE(ParseNumber(s).has_value()) << digits;
  }
}

TEST(StringsTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  a b \n"), "a b");
  EXPECT_EQ(TrimWhitespace("\t\r\n "), "");
  EXPECT_EQ(TrimWhitespace("x"), "x");
}

TEST(StringsTest, FormatNumber) {
  EXPECT_EQ(FormatNumber(42.0), "42");
  EXPECT_EQ(FormatNumber(-7.0), "-7");
  EXPECT_EQ(FormatNumber(2.5), "2.5");
}

// Regression: FormatNumber used fixed %.12g, so doubles differing past
// the 12th significant digit collapsed to the same string and the
// streaming/DOM differential checks could not distinguish them. The
// shortest-round-trip form must re-parse to the identical bits.
TEST(StringsTest, FormatNumberRoundTripsExactly) {
  const double cases[] = {
      0.1,
      1.0 / 3.0,
      2.0 / 3.0,
      1234567890123.4567,   // needs >12 significant digits
      0.30000000000000004,  // classic 0.1 + 0.2
      1e-300,
      -9.007199254740993e15,  // 2^53 + 1 territory
  };
  for (double value : cases) {
    std::optional<double> back = ParseNumber(FormatNumber(value));
    ASSERT_TRUE(back.has_value()) << FormatNumber(value);
    EXPECT_EQ(*back, value) << FormatNumber(value);
  }
}

// Property test: random doubles round-trip bit-exactly through
// FormatNumber + ParseNumber.
TEST(StringsTest, FormatNumberRoundTripProperty) {
  SplitMix64 rng(0x0b5efab1e5eedULL);
  int tested = 0;
  while (tested < 2000) {
    uint64_t bits = rng.Next();
    double value;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&value, &bits, sizeof(value));
    if (std::isnan(value) || std::isinf(value)) continue;
    ++tested;
    std::optional<double> back = ParseNumber(FormatNumber(value));
    ASSERT_TRUE(back.has_value()) << FormatNumber(value);
    EXPECT_EQ(*back, value) << FormatNumber(value);
  }
}

TEST(StringsTest, XmlEscape) {
  EXPECT_EQ(XmlEscape("a<b>&'\""), "a&lt;b&gt;&amp;&apos;&quot;");
  EXPECT_EQ(XmlEscape("plain"), "plain");
}

TEST(StringsTest, SplitKeepsEmptyPieces) {
  auto pieces = Split("a,,b", ',');
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[1], "");
}

TEST(StringsTest, SplitMix64IsDeterministic) {
  SplitMix64 a(7);
  SplitMix64 b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  SplitMix64 c(8);
  EXPECT_NE(SplitMix64(7).Next(), c.Next());
}

TEST(StringsTest, SplitMix64BelowIsInRange) {
  SplitMix64 rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(MemoryTrackerTest, TracksCurrentAndPeak) {
  MemoryTracker tracker;
  tracker.Add(100);
  tracker.Add(50);
  EXPECT_EQ(tracker.current_bytes(), 150u);
  EXPECT_EQ(tracker.peak_bytes(), 150u);
  tracker.Release(120);
  EXPECT_EQ(tracker.current_bytes(), 30u);
  EXPECT_EQ(tracker.peak_bytes(), 150u);
  tracker.Add(10);
  EXPECT_EQ(tracker.peak_bytes(), 150u);
  tracker.Release(1000);  // saturates at zero
  EXPECT_EQ(tracker.current_bytes(), 0u);
  tracker.Reset();
  EXPECT_EQ(tracker.peak_bytes(), 0u);
}

TEST(ItemTest, SelectWinsOverLaterDrops) {
  core::Item item(1);
  item.AddClaim();
  item.AddClaim();
  EXPECT_EQ(item.state(), core::Item::State::kPending);
  item.Select();
  EXPECT_EQ(item.state(), core::Item::State::kSelected);
  item.DropClaim();
  item.DropClaim();
  EXPECT_EQ(item.state(), core::Item::State::kSelected);
}

TEST(ItemTest, DiscardedWhenAllClaimsDropped) {
  core::Item item(1);
  item.AddClaim();
  item.AddClaim();
  item.DropClaim();
  EXPECT_EQ(item.state(), core::Item::State::kPending);
  item.DropClaim();
  EXPECT_EQ(item.state(), core::Item::State::kDiscarded);
  item.Select();  // too late: discard is terminal
  EXPECT_EQ(item.state(), core::Item::State::kDiscarded);
}

TEST(ItemTest, CompletenessFlag) {
  core::Item item(0);
  EXPECT_TRUE(item.complete());
  item.set_incomplete();
  EXPECT_FALSE(item.complete());
  item.set_complete();
  EXPECT_TRUE(item.complete());
}

TEST(AggregatorTest, Count) {
  core::Aggregator agg(xpath::OutputKind::kCount);
  EXPECT_TRUE(agg.Update("anything"));
  EXPECT_TRUE(agg.Update(""));
  EXPECT_DOUBLE_EQ(*agg.Final(), 2.0);
}

TEST(AggregatorTest, SumSkipsNonNumeric) {
  core::Aggregator agg(xpath::OutputKind::kSum);
  EXPECT_TRUE(agg.Update("1.5"));
  EXPECT_FALSE(agg.Update("oops"));
  EXPECT_TRUE(agg.Update(" 2 "));
  EXPECT_DOUBLE_EQ(*agg.Final(), 3.5);
}

TEST(AggregatorTest, SumOfNothingIsZero) {
  core::Aggregator agg(xpath::OutputKind::kSum);
  EXPECT_DOUBLE_EQ(*agg.Final(), 0.0);
  core::Aggregator count(xpath::OutputKind::kCount);
  EXPECT_DOUBLE_EQ(*count.Final(), 0.0);
}

// Regression: a zero-padded numeral longer than ParseNumber's old
// 63-char cap was treated as non-numeric and silently dropped from the
// sum.
TEST(AggregatorTest, SumAcceptsLongNumerals) {
  core::Aggregator agg(xpath::OutputKind::kSum);
  std::string padded = "000000000000000000000000000000000000"
                       "000000000000000000000000000000000042";  // 72 chars
  EXPECT_TRUE(agg.Update(padded));
  EXPECT_TRUE(agg.Update("8"));
  EXPECT_DOUBLE_EQ(*agg.Final(), 50.0);
}

TEST(AggregatorTest, AvgMinMax) {
  core::Aggregator avg(xpath::OutputKind::kAvg);
  EXPECT_FALSE(avg.Current().has_value());
  avg.Update("2");
  avg.Update("4");
  EXPECT_DOUBLE_EQ(*avg.Current(), 3.0);
  core::Aggregator mn(xpath::OutputKind::kMin);
  core::Aggregator mx(xpath::OutputKind::kMax);
  for (const char* v : {"5", "-2", "9"}) {
    mn.Update(v);
    mx.Update(v);
  }
  EXPECT_DOUBLE_EQ(*mn.Final(), -2.0);
  EXPECT_DOUBLE_EQ(*mx.Final(), 9.0);
  core::Aggregator empty_min(xpath::OutputKind::kMin);
  EXPECT_FALSE(empty_min.Final().has_value());
}

}  // namespace
}  // namespace xsq
