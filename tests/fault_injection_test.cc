// Fault-injection hardening: every failpoint in kFailPointCatalog,
// armed one at a time and all together, must surface as a clean
// per-session Status — never a crash, hang, leak, or contamination of a
// sibling session. tools/check.sh runs this binary in its ASan and TSan
// legs with -DXSQ_FAILPOINTS=ON; in default builds the sites are
// compiled out and the site-dependent tests skip.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/failpoints.h"
#include "core/streaming_query.h"
#include "service/query_service.h"
#include "service/session.h"
#include "tape/recorder.h"
#include "tape/tape.h"

namespace xsq {
namespace {

using service::QueryService;
using service::ServiceConfig;

// ------------------------------------------------ registry semantics
// The FailPoints registry itself exists in every build (only the sites
// are compiled out), so its semantics are testable unconditionally.

TEST(FailPointsRegistryTest, UnarmedNamesNeverFire) {
  FailPoints& fp = FailPoints::Instance();
  fp.DisarmAll();
  EXPECT_FALSE(fp.Fire("test.synthetic"));
  EXPECT_TRUE(fp.ArmedNames().empty());
}

TEST(FailPointsRegistryTest, ArmFiresEveryHitUntilDisarmed) {
  FailPoints& fp = FailPoints::Instance();
  fp.DisarmAll();
  fp.Arm("test.synthetic");
  EXPECT_TRUE(fp.Fire("test.synthetic"));
  EXPECT_TRUE(fp.Fire("test.synthetic"));
  EXPECT_EQ(fp.hits("test.synthetic"), 2u);
  fp.Disarm("test.synthetic");
  EXPECT_FALSE(fp.Fire("test.synthetic"));
}

TEST(FailPointsRegistryTest, AfterNPassesThenFires) {
  FailPoints& fp = FailPoints::Instance();
  fp.DisarmAll();
  fp.ArmAfter("test.synthetic", 3);
  EXPECT_FALSE(fp.Fire("test.synthetic"));
  EXPECT_FALSE(fp.Fire("test.synthetic"));
  EXPECT_FALSE(fp.Fire("test.synthetic"));
  EXPECT_TRUE(fp.Fire("test.synthetic"));
  EXPECT_TRUE(fp.Fire("test.synthetic"));
  fp.DisarmAll();
}

TEST(FailPointsRegistryTest, ProbabilityEndpointsAreExact) {
  FailPoints& fp = FailPoints::Instance();
  fp.DisarmAll();
  fp.ArmProbability("test.always", 1.0, /*seed=*/7);
  fp.ArmProbability("test.never", 0.0, /*seed=*/7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(fp.Fire("test.always"));
    EXPECT_FALSE(fp.Fire("test.never"));
  }
  fp.DisarmAll();
}

TEST(FailPointsRegistryTest, EnvSpecParses) {
  FailPoints& fp = FailPoints::Instance();
  fp.DisarmAll();
  ASSERT_TRUE(
      fp.ArmFromEnvSpec("test.a=1,test.b=p0.5,test.c=after3").ok());
  std::vector<std::string> armed = fp.ArmedNames();
  EXPECT_EQ(armed.size(), 3u);
  EXPECT_FALSE(fp.ArmFromEnvSpec("test.bad=banana").ok());
  fp.DisarmAll();
}

// --------------------------------------------------- injected faults

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kFailPointsCompiledIn) {
      GTEST_SKIP() << "built with -DXSQ_FAILPOINTS=OFF";
    }
    FailPoints::Instance().DisarmAll();
  }
  void TearDown() override { FailPoints::Instance().DisarmAll(); }
};

TEST_F(FaultInjectionTest, ParseIoErrorFailsTheChunkCleanly) {
  auto query = core::StreamingQuery::Open("//a/text()");
  ASSERT_TRUE(query.ok());
  FailPoints::Instance().Arm("xml.parse.io_error");
  Status status = (*query)->Push("<r><a>hi</a></r>");
  EXPECT_EQ(status.code(), StatusCode::kInternal) << status.ToString();
  FailPoints::Instance().Disarm("xml.parse.io_error");
  // The failure is recoverable exactly like any other stream error.
  (*query)->Reset();
  ASSERT_TRUE((*query)->Push("<r><a>hi</a></r>").ok());
  ASSERT_TRUE((*query)->Close().ok());
  EXPECT_EQ((*query)->NextItem(), "hi");
}

TEST_F(FaultInjectionTest, EngineAllocFailSurfacesFromOpen) {
  FailPoints::Instance().Arm("core.engine.alloc_fail");
  auto failed = core::StreamingQuery::Open("//a/text()");
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kResourceExhausted);
  FailPoints::Instance().Disarm("core.engine.alloc_fail");
  EXPECT_TRUE(core::StreamingQuery::Open("//a/text()").ok());
}

TEST_F(FaultInjectionTest, SessionAllocFailRejectsOpenOnly) {
  QueryService service;
  FailPoints::Instance().Arm("service.worker.alloc_fail");
  auto rejected = service.OpenSession("//a/text()");
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  FailPoints::Instance().Disarm("service.worker.alloc_fail");
  // The failed open leaked nothing: a fresh open works and serves.
  auto id = service.OpenSession("//a/text()");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service.Push(*id, "<r><a>ok</a></r>").ok());
  ASSERT_TRUE(service.Close(*id).ok());
  EXPECT_EQ(service.Drain(*id).size(), 1u);
  service.Shutdown();
}

TEST_F(FaultInjectionTest, WorkerFaultFailsOneSessionNotItsSiblings) {
  ServiceConfig config;
  config.num_workers = 2;
  QueryService service(config);
  auto victim = service.OpenSession("//a/text()");
  ASSERT_TRUE(victim.ok());

  FailPoints::Instance().Arm("service.session.push_fault");
  ASSERT_TRUE(service.Push(*victim, "<r><a>hi</a></r>").ok());
  EXPECT_EQ(service.Close(*victim).code(), StatusCode::kInternal);
  FailPoints::Instance().Disarm("service.session.push_fault");

  // A sibling opened after the fault serves normally, and the victim
  // itself recovers through ResetSession.
  auto sibling = service.OpenSession("//a/text()");
  ASSERT_TRUE(sibling.ok());
  ASSERT_TRUE(service.Push(*sibling, "<r><a>fine</a></r>").ok());
  ASSERT_TRUE(service.Close(*sibling).ok());
  EXPECT_EQ(service.Drain(*sibling).size(), 1u);
  ASSERT_TRUE(service.ResetSession(*victim).ok());
  ASSERT_TRUE(service.Push(*victim, "<r><a>back</a></r>").ok());
  ASSERT_TRUE(service.Close(*victim).ok());
  EXPECT_EQ(service.Drain(*victim).size(), 1u);
  service.Shutdown();
}

TEST_F(FaultInjectionTest, RecordAllocFailLeavesCacheClean) {
  QueryService service;
  FailPoints::Instance().Arm("service.record.alloc_fail");
  auto failed = service.RecordDocument("doc", "<r><a>x</a></r>");
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kResourceExhausted);
  FailPoints::Instance().Disarm("service.record.alloc_fail");
  EXPECT_EQ(service.document_cache().size(), 0u);
  ASSERT_TRUE(service.RecordDocument("doc", "<r><a>x</a></r>").ok());
  auto id = service.OpenSession("//a/text()");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service.RunCached(*id, "doc").ok());
  EXPECT_EQ(service.Drain(*id).size(), 1u);
  service.Shutdown();
}

TEST_F(FaultInjectionTest, TapeShortReadIsDataCorruption) {
  const char* path = "xsq_fault_tape_read.bin";
  auto tape = tape::RecordDocument("<r><a>x</a></r>");
  ASSERT_TRUE(tape.ok());
  ASSERT_TRUE(tape->Save(path).ok());
  FailPoints::Instance().Arm("tape.load.short_read");
  auto failed = tape::Tape::Load(path);
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kDataCorruption);
  FailPoints::Instance().Disarm("tape.load.short_read");
  EXPECT_TRUE(tape::Tape::Load(path).ok());
  std::remove(path);
}

TEST_F(FaultInjectionTest, TapeShortWriteFailsSaveCleanly) {
  const char* path = "xsq_fault_tape_write.bin";
  auto tape = tape::RecordDocument("<r><a>x</a></r>");
  ASSERT_TRUE(tape.ok());
  FailPoints::Instance().Arm("tape.save.short_write");
  EXPECT_FALSE(tape->Save(path).ok());
  FailPoints::Instance().Disarm("tape.save.short_write");
  ASSERT_TRUE(tape->Save(path).ok());
  EXPECT_TRUE(tape::Tape::Load(path).ok());
  std::remove(path);
}

TEST_F(FaultInjectionTest, PubSubFanoutFailDropsFramesNotTheService) {
  QueryService service;
  std::mutex mu;
  std::vector<std::string> frames;
  auto subscriber = service.AddSubscriber([&](std::string_view frame) {
    std::lock_guard<std::mutex> lock(mu);
    frames.emplace_back(frame);
  });
  ASSERT_TRUE(subscriber.ok());
  ASSERT_TRUE(service.Subscribe(*subscriber, "//a/text()").ok());

  auto wait_for = [&](auto predicate) {
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (!predicate() && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return predicate();
  };

  FailPoints::Instance().Arm("pubsub.fanout.fail");
  auto dropped = service.Publish("<r><a>dropped</a></r>");
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(dropped->frames_enqueued, 1u);
  // The injected delivery drop is accounted as shed; the sink never
  // sees the frame and the dispatcher keeps running.
  EXPECT_TRUE(wait_for([&] { return service.stats().fanout_shed >= 1; }));
  FailPoints::Instance().Disarm("pubsub.fanout.fail");

  auto delivered = service.Publish("<r><a>delivered</a></r>");
  ASSERT_TRUE(delivered.ok());
  EXPECT_TRUE(wait_for([&] {
    std::lock_guard<std::mutex> lock(mu);
    return !frames.empty();
  }));
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(frames.size(), 1u);  // the dropped frame stayed dropped
  EXPECT_NE(frames[0].find("ITEM delivered"), std::string::npos);
  service.Shutdown();
}

TEST_F(FaultInjectionTest, EveryCatalogSiteArmedStillOnlyFailsStatuses) {
  // The whole catalog armed at p=0.5: a realistic serving workload must
  // keep returning Statuses from every call — under ASan/TSan this is
  // also the leak/race check for each injected early-return path.
  FailPoints& fp = FailPoints::Instance();
  uint64_t seed = 1;
  for (const char* name : kFailPointCatalog) {
    fp.ArmProbability(name, 0.5, seed++);
  }

  QueryService service;
  auto subscriber = service.AddSubscriber([](std::string_view) {});
  const char* tape_path = "xsq_fault_all_armed.bin";
  for (int round = 0; round < 50; ++round) {
    auto id = service.OpenSession("//a/text()");
    if (id.ok()) {
      (void)service.Push(*id, "<r><a>one</a>");
      (void)service.Push(*id, "<a>two</a></r>");
      (void)service.Close(*id);
      (void)service.Drain(*id);
      (void)service.Release(*id);
    }
    auto recorded = service.RecordDocument("doc", "<r><a>x</a></r>");
    if (recorded.ok()) {
      auto replayer = service.OpenSession("//a/text()");
      if (replayer.ok()) {
        (void)service.RunCached(*replayer, "doc");
        (void)service.Drain(*replayer);
      }
    }
    auto tape = tape::RecordDocument("<r><a>y</a></r>");
    if (tape.ok() && tape->Save(tape_path).ok()) {
      (void)tape::Tape::Load(tape_path);
    }
    if (subscriber.ok()) {
      auto sub = service.Subscribe(*subscriber, "//a/text()");
      (void)service.Publish("<r><a>z</a></r>");
      if (sub.ok()) (void)service.Unsubscribe(*subscriber, *sub);
    }
  }
  std::remove(tape_path);
  service.Shutdown();
  fp.DisarmAll();

  // Once disarmed, the same service instance would be gone; prove the
  // process is healthy with a clean end-to-end pass.
  QueryService after;
  auto id = after.OpenSession("//a/text()");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(after.Push(*id, "<r><a>clean</a></r>").ok());
  ASSERT_TRUE(after.Close(*id).ok());
  EXPECT_EQ(after.Drain(*id).size(), 1u);
  after.Shutdown();
}

}  // namespace
}  // namespace xsq
