#include "core/streaming_query.h"

#include <gtest/gtest.h>

#include "common/strings.h"
#include "core/engine.h"
#include "test_util.h"

namespace xsq::core {
namespace {

TEST(StreamingQueryTest, PushPullBasics) {
  auto query = StreamingQuery::Open("//book[price<20]/title/text()");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  ASSERT_TRUE((*query)
                  ->Push("<catalog><book><title>A</title>"
                         "<price>10</price></book>")
                  .ok());
  // Item available before the document ends.
  std::optional<std::string> item = (*query)->NextItem();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(*item, "A");
  EXPECT_FALSE((*query)->NextItem().has_value());
  ASSERT_TRUE((*query)
                  ->Push("<book><title>B</title><price>99</price></book>"
                         "</catalog>")
                  .ok());
  ASSERT_TRUE((*query)->Close().ok());
  EXPECT_FALSE((*query)->NextItem().has_value());  // B was too expensive
}

TEST(StreamingQueryTest, PicksDeterministicEngineWhenPossible) {
  auto nc = StreamingQuery::Open("/a/b/text()");
  ASSERT_TRUE(nc.ok());
  EXPECT_TRUE((*nc)->uses_deterministic_engine());
  auto f = StreamingQuery::Open("//a/b/text()");
  ASSERT_TRUE(f.ok());
  EXPECT_FALSE((*f)->uses_deterministic_engine());
  auto u = StreamingQuery::Open("/a/b/text() | /a/c/text()");
  ASSERT_TRUE(u.ok());
  EXPECT_FALSE((*u)->uses_deterministic_engine());
}

TEST(StreamingQueryTest, AggregationExposesRunningAndFinalValues) {
  auto query = StreamingQuery::Open("/r/x/sum()");
  ASSERT_TRUE(query.ok());
  ASSERT_TRUE((*query)->Push("<r><x>1</x>").ok());
  ASSERT_TRUE((*query)->current_aggregate().has_value());
  EXPECT_DOUBLE_EQ(*(*query)->current_aggregate(), 1.0);
  ASSERT_TRUE((*query)->Push("<x>2.5</x></r>").ok());
  EXPECT_DOUBLE_EQ(*(*query)->current_aggregate(), 3.5);
  ASSERT_TRUE((*query)->Close().ok());
  ASSERT_TRUE((*query)->final_aggregate().has_value());
  EXPECT_DOUBLE_EQ(*(*query)->final_aggregate(), 3.5);
}

TEST(StreamingQueryTest, ErrorsSurfaceFromParserAndParserReuseBlocked) {
  auto query = StreamingQuery::Open("//a/text()");
  ASSERT_TRUE(query.ok());
  EXPECT_FALSE((*query)->Push("<a><b></a>").ok());
  auto bad = StreamingQuery::Open("not a query");
  EXPECT_FALSE(bad.ok());
}

TEST(StreamingQueryTest, CloseIsIdempotent) {
  auto query = StreamingQuery::Open("//a/text()");
  ASSERT_TRUE(query.ok());
  ASSERT_TRUE((*query)->Push("<a>x</a>").ok());
  ASSERT_TRUE((*query)->Close().ok());
  ASSERT_TRUE((*query)->Close().ok());
  EXPECT_FALSE((*query)->Push("<more/>").ok());
}

TEST(StreamingQueryTest, PeakBufferReflectsEngineAccounting) {
  auto query = StreamingQuery::Open("/r/a[late]/t/text()");
  ASSERT_TRUE(query.ok());
  ASSERT_TRUE((*query)->Push("<r><a><t>buffered content</t>").ok());
  EXPECT_GT((*query)->peak_buffered_bytes(), 0u);
  ASSERT_TRUE((*query)->Push("</a></r>").ok());
  ASSERT_TRUE((*query)->Close().ok());
  EXPECT_FALSE((*query)->NextItem().has_value());  // [late] never held
}

// One compiled query replayed over two documents must match two fresh
// queries, on both engines (NC and F) and after error states.
TEST(StreamingQueryTest, ResetReplaysOnNewDocument) {
  const char* queries[] = {"/catalog/book[price<20]/title/text()",  // XSQ-NC
                           "//book[price<20]/title/text()"};        // XSQ-F
  const std::string docs[] = {
      "<catalog><book><title>A</title><price>10</price></book>"
      "<book><title>B</title><price>99</price></book></catalog>",
      "<catalog><book><title>C</title><price>1</price></book></catalog>"};
  for (const char* query_text : queries) {
    auto reused = StreamingQuery::Open(query_text);
    ASSERT_TRUE(reused.ok());
    for (const std::string& doc : docs) {
      auto fresh = StreamingQuery::Open(query_text);
      ASSERT_TRUE(fresh.ok());
      ASSERT_TRUE((*fresh)->Push(doc).ok());
      ASSERT_TRUE((*fresh)->Close().ok());
      ASSERT_TRUE((*reused)->Push(doc).ok());
      ASSERT_TRUE((*reused)->Close().ok());
      while (auto expected = (*fresh)->NextItem()) {
        auto actual = (*reused)->NextItem();
        ASSERT_TRUE(actual.has_value());
        EXPECT_EQ(*actual, *expected) << query_text;
      }
      EXPECT_FALSE((*reused)->NextItem().has_value());
      (*reused)->Reset();
    }
  }
}

TEST(StreamingQueryTest, ResetClearsErrorAndAggregateState) {
  auto query = StreamingQuery::Open("/r/x/sum()");
  ASSERT_TRUE(query.ok());
  EXPECT_FALSE((*query)->Push("<r><x>1</x><bad").ok() &&
               (*query)->Close().ok());
  (*query)->Reset();
  EXPECT_FALSE((*query)->current_aggregate().has_value());
  ASSERT_TRUE((*query)->Push("<r><x>4</x></r>").ok());
  ASSERT_TRUE((*query)->Close().ok());
  EXPECT_DOUBLE_EQ((*query)->final_aggregate().value(), 4.0);
}

TEST(StreamingQueryTest, OpenFromSharedPlanMatchesTextOpen) {
  auto plan = CompilePlan("//book/title/text()");
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE((*plan)->deterministic);
  auto a = StreamingQuery::Open(*plan);
  auto b = StreamingQuery::Open(*plan);  // same plan, two engines
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const std::string doc = "<l><book><title>T</title></book></l>";
  ASSERT_TRUE((*a)->Push(doc).ok());
  ASSERT_TRUE((*b)->Push(doc).ok());
  ASSERT_TRUE((*a)->Close().ok());
  ASSERT_TRUE((*b)->Close().ok());
  EXPECT_EQ((*a)->NextItem().value_or(""), "T");
  EXPECT_EQ((*b)->NextItem().value_or(""), "T");
}

class StreamingQueryChunkingTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(StreamingQueryChunkingTest, ResultsIndependentOfChunking) {
  const uint64_t seed = GetParam();
  const std::string doc = testutil::RandomDocument(seed + 3000);
  const std::string query_text = testutil::RandomQuery(seed * 3 + 1);

  Result<QueryResult> whole = RunQuery(query_text, doc);
  ASSERT_TRUE(whole.ok());

  auto query = StreamingQuery::Open(query_text);
  ASSERT_TRUE(query.ok());
  SplitMix64 rng(seed);
  size_t pos = 0;
  std::vector<std::string> items;
  while (pos < doc.size()) {
    size_t len = 1 + rng.Below(23);
    len = std::min(len, doc.size() - pos);
    ASSERT_TRUE((*query)->Push(std::string_view(doc).substr(pos, len)).ok());
    while (auto item = (*query)->NextItem()) items.push_back(*item);
    pos += len;
  }
  ASSERT_TRUE((*query)->Close().ok());
  while (auto item = (*query)->NextItem()) items.push_back(*item);
  EXPECT_EQ(items, whole->items) << query_text << "\n" << doc;
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingQueryChunkingTest,
                         ::testing::Range(uint64_t{0}, uint64_t{20}));

}  // namespace
}  // namespace xsq::core
