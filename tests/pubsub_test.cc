// Tests for the standing-query pub/sub subsystem:
//   - pubsub::SubscriptionRegistry unit behavior (lifecycle, shared-NFA
//     dedup, skeleton pruning invariants, per-output-kind emission)
//   - differential parity against standalone StreamingQuery evaluation
//     on the SHAKE / NASA / DBLP synthetic corpora
//   - QueryService integration: asynchronous fan-out to sinks, the
//     slow-subscriber shed policy, RemoveSubscriber's no-sink-after-
//     return guarantee, and a 16-subscriber fault-storm soak with one
//     deliberately stalled subscriber.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/streaming_query.h"
#include "datagen/generators.h"
#include "pubsub/subscription_registry.h"
#include "service/query_service.h"

namespace xsq {
namespace {

using pubsub::Delivery;
using pubsub::PublishOutcome;
using pubsub::SubscriptionRegistry;
using service::QueryService;
using service::ServiceConfig;

// Standalone oracle: one StreamingQuery over the whole document.
struct StandaloneResult {
  std::vector<std::string> items;
  std::optional<double> aggregate;
  bool is_aggregate = false;
};

StandaloneResult RunStandalone(const std::string& query_text,
                               const std::string& document) {
  StandaloneResult result;
  auto query = core::StreamingQuery::Open(query_text);
  EXPECT_TRUE(query.ok()) << query_text;
  if (!query.ok()) return result;
  EXPECT_TRUE((*query)->Push(document).ok()) << query_text;
  EXPECT_TRUE((*query)->Close().ok()) << query_text;
  while (std::optional<std::string> item = (*query)->NextItem()) {
    result.items.push_back(std::move(*item));
  }
  result.aggregate = (*query)->final_aggregate();
  Result<xpath::Query> parsed = xpath::ParseQuery(query_text);
  result.is_aggregate =
      parsed.ok() && xpath::IsAggregation(parsed->output.kind);
  return result;
}

// Registry deliveries keyed by subscription id.
std::map<uint64_t, Delivery> DeliveriesById(const PublishOutcome& outcome) {
  std::map<uint64_t, Delivery> by_id;
  for (const Delivery& delivery : outcome.deliveries) {
    by_id.emplace(delivery.subscription_id, delivery);
  }
  return by_id;
}

// Subscribes every query, publishes the document once, and pins the
// result of each subscription to the standalone oracle.
void ExpectPublishMatchesStandalone(const std::vector<std::string>& queries,
                                    const std::string& document) {
  SubscriptionRegistry registry;
  std::vector<uint64_t> ids;
  for (const std::string& query : queries) {
    auto id = registry.Subscribe(query);
    ASSERT_TRUE(id.ok()) << query << ": " << id.status().ToString();
    ids.push_back(*id);
  }
  auto outcome = registry.Publish(document);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->hpdt_evaluations, outcome->filter_survivors);
  std::map<uint64_t, Delivery> by_id = DeliveriesById(*outcome);
  for (size_t i = 0; i < queries.size(); ++i) {
    SCOPED_TRACE(queries[i]);
    StandaloneResult expected = RunStandalone(queries[i], document);
    auto it = by_id.find(ids[i]);
    if (it == by_id.end()) {
      // No delivery: legal only for a non-aggregation query with no
      // items (aggregations always deliver).
      EXPECT_FALSE(expected.is_aggregate);
      EXPECT_TRUE(expected.items.empty());
      continue;
    }
    const Delivery& delivery = it->second;
    EXPECT_EQ(delivery.is_aggregate, expected.is_aggregate);
    if (expected.is_aggregate) {
      ASSERT_EQ(delivery.aggregate.has_value(),
                expected.aggregate.has_value());
      if (expected.aggregate.has_value()) {
        EXPECT_DOUBLE_EQ(*delivery.aggregate, *expected.aggregate);
      }
    } else {
      EXPECT_EQ(delivery.items, expected.items);
    }
  }
}

// ---------------------------------------------------------------------------
// SubscriptionRegistry unit behavior.

TEST(SubscriptionRegistryTest, SubscribeUnsubscribeLifecycle) {
  SubscriptionRegistry registry;
  auto a = registry.Subscribe("//a/text()");
  ASSERT_TRUE(a.ok());
  auto b = registry.Subscribe("/r/b");
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
  EXPECT_EQ(registry.subscription_count(), 2u);
  EXPECT_TRUE(registry.has_subscription(*a));
  EXPECT_EQ(registry.query_text(*a), "//a/text()");

  EXPECT_TRUE(registry.Unsubscribe(*a).ok());
  EXPECT_EQ(registry.subscription_count(), 1u);
  EXPECT_FALSE(registry.has_subscription(*a));
  EXPECT_FALSE(registry.Unsubscribe(*a).ok());  // already gone
  EXPECT_FALSE(registry.Unsubscribe(999).ok());

  // Ids are never reused.
  auto c = registry.Subscribe("//c");
  ASSERT_TRUE(c.ok());
  EXPECT_GT(*c, *b);
}

TEST(SubscriptionRegistryTest, RejectsUnparsableQueries) {
  SubscriptionRegistry registry;
  EXPECT_FALSE(registry.Subscribe("not an xpath").ok());
  EXPECT_FALSE(registry.Subscribe("").ok());
  EXPECT_EQ(registry.subscription_count(), 0u);
}

TEST(SubscriptionRegistryTest, UnsubscribedQueriesStopMatching) {
  SubscriptionRegistry registry;
  auto id = registry.Subscribe("//a/text()");
  ASSERT_TRUE(id.ok());
  auto first = registry.Publish("<r><a>x</a></r>");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->deliveries.size(), 1u);
  ASSERT_TRUE(registry.Unsubscribe(*id).ok());
  auto second = registry.Publish("<r><a>x</a></r>");
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->deliveries.empty());
  EXPECT_EQ(second->subscriptions, 0u);
}

TEST(SubscriptionRegistryTest, PredicateFreeOutputKindsMatchStandalone) {
  const std::string document =
      "<lib><book id=\"b1\"><title>XSQ</title><price>30</price></book>"
      "<book><title>YFilter &amp; friends</title><price>12.5</price></book>"
      "<note>plain</note></lib>";
  ExpectPublishMatchesStandalone(
      {
          "//book/title",          // element serialization
          "//book/title/text()",   // text items
          "//book/@id",            // attribute items (one book lacks it)
          "//book/price/sum()",    // aggregation
          "//book/count()",        // count
          "//missing/text()",      // no matches at all
          "//book/price/avg()",    // avg over two values
      },
      document);
}

TEST(SubscriptionRegistryTest, PredicateQueriesMatchStandalone) {
  const std::string document =
      "<lib><book year=\"2003\"><title>A</title><price>30</price></book>"
      "<book year=\"1999\"><title>B</title><price>12</price></book>"
      "<book><title>C</title><price>45</price></book></lib>";
  ExpectPublishMatchesStandalone(
      {
          "//book[@year]/title/text()",
          "//book[price>20]/title/text()",
          "//book[price<20]/price/sum()",
          "/lib/book[@year>2000]/title",
          "//book[missing]/title/text()",
      },
      document);
}

TEST(SubscriptionRegistryTest, SkeletonPruningSkipsNonSurvivingEngines) {
  SubscriptionRegistry registry;
  // Two predicate subscriptions whose skeletons cannot match the
  // document, one that can.
  ASSERT_TRUE(registry.Subscribe("//zebra[x]/y").ok());
  ASSERT_TRUE(registry.Subscribe("/nope/a[b]/c").ok());
  ASSERT_TRUE(registry.Subscribe("//book[price]/title").ok());
  auto outcome =
      registry.Publish("<lib><book><price>9</price><title>T</title></book>"
                       "</lib>");
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->predicate_subs, 3u);
  EXPECT_EQ(outcome->filter_survivors, 1u);
  EXPECT_EQ(outcome->hpdt_evaluations, 1u);  // only the survivor ran
  ASSERT_EQ(outcome->deliveries.size(), 1u);
  EXPECT_EQ(outcome->deliveries[0].items,
            std::vector<std::string>{"<title>T</title>"});
}

TEST(SubscriptionRegistryTest, PrunedAggregationsStillDeliverEmptySet) {
  SubscriptionRegistry registry;
  auto count_id = registry.Subscribe("//zebra[x]/count()");
  ASSERT_TRUE(count_id.ok());
  auto avg_id = registry.Subscribe("//zebra[x]/y/avg()");
  ASSERT_TRUE(avg_id.ok());
  auto outcome = registry.Publish("<r><a>1</a></r>");
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->filter_survivors, 0u);
  EXPECT_EQ(outcome->hpdt_evaluations, 0u);  // no engine ran at all
  std::map<uint64_t, Delivery> by_id = DeliveriesById(*outcome);
  ASSERT_TRUE(by_id.count(*count_id));
  ASSERT_TRUE(by_id.at(*count_id).aggregate.has_value());
  EXPECT_DOUBLE_EQ(*by_id.at(*count_id).aggregate, 0.0);  // count of none
  ASSERT_TRUE(by_id.count(*avg_id));
  EXPECT_FALSE(by_id.at(*avg_id).aggregate.has_value());  // avg of none
}

TEST(SubscriptionRegistryTest, DuplicateQueriesShareNfaNodes) {
  SubscriptionRegistry registry;
  ASSERT_TRUE(registry.Subscribe("/a/b/c").ok());
  size_t nodes = registry.node_count();
  ASSERT_TRUE(registry.Subscribe("/a/b/c").ok());
  EXPECT_EQ(registry.node_count(), nodes);  // identical path: zero growth
  ASSERT_TRUE(registry.Subscribe("/a/b/d").ok());
  EXPECT_EQ(registry.node_count(), nodes + 1);  // shared prefix
  // Both duplicate subscriptions still match independently.
  auto outcome = registry.Publish("<a><b><c>x</c></b></a>");
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->deliveries.size(), 2u);
}

TEST(SubscriptionRegistryTest, MalformedDocumentFailsButRegistryRecovers) {
  SubscriptionRegistry registry;
  ASSERT_TRUE(registry.Subscribe("//a/text()").ok());
  ASSERT_TRUE(registry.Subscribe("//a[b]/c").ok());
  EXPECT_FALSE(registry.Publish("<r><a>broken</r>").ok());
  auto outcome = registry.Publish("<r><a>fine</a></r>");
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome->deliveries.size(), 1u);
  EXPECT_EQ(outcome->deliveries[0].items, std::vector<std::string>{"fine"});
}

TEST(SubscriptionRegistryTest, EnginesResetBetweenDocuments) {
  SubscriptionRegistry registry;
  auto id = registry.Subscribe("//book[price>20]/title/text()");
  ASSERT_TRUE(id.ok());
  for (int round = 0; round < 3; ++round) {
    std::string title = "T";
    title += std::to_string(round);
    std::string document = "<l><book><price>30</price><title>";
    document += title;
    document += "</title></book></l>";
    auto outcome = registry.Publish(document);
    ASSERT_TRUE(outcome.ok());
    ASSERT_EQ(outcome->deliveries.size(), 1u);
    // Results never leak across documents: exactly this round's item.
    EXPECT_EQ(outcome->deliveries[0].items,
              std::vector<std::string>{title});
  }
}

TEST(SubscriptionRegistryTest, SubscriptionsAddedBetweenPublishesTakeEffect) {
  SubscriptionRegistry registry;
  ASSERT_TRUE(registry.Subscribe("//a/text()").ok());
  auto first = registry.Publish("<r><a>1</a><b>2</b></r>");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->deliveries.size(), 1u);
  ASSERT_TRUE(registry.Subscribe("//b/text()").ok());
  auto second = registry.Publish("<r><a>1</a><b>2</b></r>");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->deliveries.size(), 2u);
}

// ---------------------------------------------------------------------------
// Differential parity on the paper's corpora: pub/sub through one
// shared parse must equal standalone evaluation, query by query.

TEST(PubSubDifferentialTest, ShakeCorpus) {
  const std::string xml = datagen::GenerateShake(48 * 1024, 7);
  ExpectPublishMatchesStandalone(
      {
          "/PLAY/ACT/SCENE/SPEECH/SPEAKER/text()",
          "//ACT//SPEAKER/text()",
          "/PLAY/ACT/SCENE/SPEECH[LINE%love]/SPEAKER/text()",
          "//SPEECH/count()",
          "//SCENE/TITLE",
          "//SPEECH[SPEAKER%KING]/LINE/count()",
      },
      xml);
}

TEST(PubSubDifferentialTest, NasaCorpus) {
  const std::string xml = datagen::GenerateNasa(48 * 1024, 11);
  ExpectPublishMatchesStandalone(
      {
          "//dataset/title/text()",
          "/datasets/dataset/altname",
          "//other[year>1990]/name/text()",
          "//reference/count()",
          "//field/name/text()",
          "//dataset[tableHead]/title/text()",
      },
      xml);
}

TEST(PubSubDifferentialTest, DblpCorpus) {
  const std::string xml = datagen::GenerateDblp(48 * 1024, 13);
  ExpectPublishMatchesStandalone(
      {
          "//article/author/text()",
          "//inproceedings[author]/title",
          "//inproceedings/year/count()",
          "/dblp/article[year>1995]/title",
          "//booktitle/text()",
          "//article/@key",
      },
      xml);
}

// ---------------------------------------------------------------------------
// QueryService integration: asynchronous fan-out.

// A sink that collects frames and can optionally stall deliveries.
struct CollectingSink {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::string> frames;
  std::atomic<bool> stalled{false};
  std::atomic<bool> closed{false};  // RemoveSubscriber returned

  QueryService::EventSink AsSink() {
    return [this](std::string_view frame) {
      while (stalled.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      std::lock_guard<std::mutex> lock(mu);
      EXPECT_FALSE(closed.load(std::memory_order_relaxed))
          << "sink invoked after RemoveSubscriber returned";
      frames.emplace_back(frame);
      cv.notify_all();
    };
  }

  // Waits until at least `count` frames arrived.
  bool WaitForFrames(size_t count, int timeout_ms = 5000) {
    std::unique_lock<std::mutex> lock(mu);
    return cv.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                       [&] { return frames.size() >= count; });
  }

  std::vector<std::string> Snapshot() {
    std::lock_guard<std::mutex> lock(mu);
    return frames;
  }
};

TEST(ServicePubSubTest, FanOutDeliversFormattedFrames) {
  QueryService service{ServiceConfig()};
  CollectingSink sink;
  auto subscriber = service.AddSubscriber(sink.AsSink());
  ASSERT_TRUE(subscriber.ok());
  auto text_sub = service.Subscribe(*subscriber, "//a/text()");
  ASSERT_TRUE(text_sub.ok());
  auto agg_sub = service.Subscribe(*subscriber, "//a/count()");
  ASSERT_TRUE(agg_sub.ok());
  EXPECT_EQ(service.subscription_count(), 2u);

  auto summary = service.Publish("<r><a>hi</a><a>there</a></r>");
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->deliveries, 2u);
  EXPECT_EQ(summary->frames_enqueued, 3u);  // two items + one aggregate
  EXPECT_EQ(summary->frames_shed, 0u);

  ASSERT_TRUE(sink.WaitForFrames(3));
  std::vector<std::string> frames = sink.Snapshot();
  std::string text_prefix = "EVENT " + std::to_string(*text_sub) + " ITEM ";
  EXPECT_EQ(frames[0], text_prefix + "hi");
  EXPECT_EQ(frames[1], text_prefix + "there");
  EXPECT_EQ(frames[2],
            "EVENT " + std::to_string(*agg_sub) + " AGG 2.000000");

  service::StatsSnapshot stats = service.stats();
  EXPECT_EQ(stats.subscriptions_active, 2u);
  EXPECT_EQ(stats.publishes, 1u);
  EXPECT_GE(stats.events_delivered, 3u);
  service.Shutdown();
}

TEST(ServicePubSubTest, ItemsWithNewlinesAreLineEscaped) {
  QueryService service{ServiceConfig()};
  CollectingSink sink;
  auto subscriber = service.AddSubscriber(sink.AsSink());
  ASSERT_TRUE(subscriber.ok());
  ASSERT_TRUE(service.Subscribe(*subscriber, "//a/text()").ok());
  ASSERT_TRUE(service.Publish("<r><a>two\nlines</a></r>").ok());
  ASSERT_TRUE(sink.WaitForFrames(1));
  std::string frame = sink.Snapshot()[0];
  EXPECT_EQ(frame.find('\n'), std::string::npos);
  EXPECT_NE(frame.find("two\\nlines"), std::string::npos);
  service.Shutdown();
}

TEST(ServicePubSubTest, PublishNeverBlocksOnStalledSubscriberAndSheds) {
  ServiceConfig config;
  config.max_subscriber_queue_frames = 4;
  QueryService service{config};
  CollectingSink sink;
  sink.stalled.store(true);  // dispatcher blocks inside the sink
  auto subscriber = service.AddSubscriber(sink.AsSink());
  ASSERT_TRUE(subscriber.ok());
  ASSERT_TRUE(service.Subscribe(*subscriber, "//a/text()").ok());

  // Each publish produces 6 frames against a queue bound of 4: the
  // first may be mid-claim, but repeated publishes must overflow.
  const std::string document =
      "<r><a>1</a><a>2</a><a>3</a><a>4</a><a>5</a><a>6</a></r>";
  uint64_t shed = 0;
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (shed == 0 && std::chrono::steady_clock::now() < deadline) {
    auto start = std::chrono::steady_clock::now();
    auto summary = service.Publish(document);
    ASSERT_TRUE(summary.ok());
    // The shed policy's whole point: publish returns promptly even
    // though the subscriber is wedged.
    EXPECT_LT(std::chrono::steady_clock::now() - start,
              std::chrono::seconds(5));
    shed += summary->frames_shed;
  }
  EXPECT_GT(shed, 0u);
  EXPECT_GE(service.stats().fanout_shed, shed);

  sink.stalled.store(false);  // unwedge; the ERR notice must drain
  ASSERT_TRUE(sink.WaitForFrames(1));
  bool saw_notice = false;
  auto notice_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!saw_notice && std::chrono::steady_clock::now() < notice_deadline) {
    for (const std::string& frame : sink.Snapshot()) {
      if (frame.find("EVENT 0 ERR ResourceExhausted") != std::string::npos) {
        saw_notice = true;
        break;
      }
    }
    if (!saw_notice) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_TRUE(saw_notice);
  service.Shutdown();
}

TEST(ServicePubSubTest, RemoveSubscriberNeverInvokesSinkAfterReturn) {
  QueryService service{ServiceConfig()};
  CollectingSink sink;
  auto subscriber = service.AddSubscriber(sink.AsSink());
  ASSERT_TRUE(subscriber.ok());
  ASSERT_TRUE(service.Subscribe(*subscriber, "//a/text()").ok());
  ASSERT_TRUE(service.Publish("<r><a>x</a></r>").ok());
  ASSERT_TRUE(service.RemoveSubscriber(*subscriber).ok());
  sink.closed.store(true);  // any later invocation fails the EXPECT inside
  EXPECT_EQ(service.stats().subscriptions_active, 0u);
  // Publishing after removal reaches nobody and invokes nothing.
  auto summary = service.Publish("<r><a>y</a></r>");
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->deliveries, 0u);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(service.RemoveSubscriber(*subscriber).ok());  // idempotence
  service.Shutdown();
}

TEST(ServicePubSubTest, SubscriptionAdmissionLimit) {
  ServiceConfig config;
  config.max_subscriptions = 2;
  QueryService service{config};
  CollectingSink sink;
  auto subscriber = service.AddSubscriber(sink.AsSink());
  ASSERT_TRUE(subscriber.ok());
  ASSERT_TRUE(service.Subscribe(*subscriber, "//a").ok());
  ASSERT_TRUE(service.Subscribe(*subscriber, "//b").ok());
  auto third = service.Subscribe(*subscriber, "//c");
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kResourceExhausted);
  service.Shutdown();
}

TEST(ServicePubSubTest, UnsubscribeRequiresTheOwningSubscriber) {
  QueryService service{ServiceConfig()};
  CollectingSink sink_a;
  CollectingSink sink_b;
  auto a = service.AddSubscriber(sink_a.AsSink());
  auto b = service.AddSubscriber(sink_b.AsSink());
  ASSERT_TRUE(a.ok() && b.ok());
  auto sub = service.Subscribe(*a, "//a/text()");
  ASSERT_TRUE(sub.ok());
  EXPECT_FALSE(service.Unsubscribe(*b, *sub).ok());  // not the owner
  EXPECT_TRUE(service.Unsubscribe(*a, *sub).ok());
  EXPECT_EQ(service.stats().subscriptions_active, 0u);
  service.Shutdown();
}

// ---------------------------------------------------------------------------
// The fault storm: 16 subscribers (one permanently stalled), concurrent
// publishes, churned subscriptions and mid-storm removals. The
// assertions are survival (no deadlock under the 120 s test timeout),
// the sanitizers' cleanliness, and the shed policy engaging for the
// stalled subscriber without stalling anyone else.

TEST(ServicePubSubSoakTest, SixteenSubscriberFaultStorm) {
  constexpr int kSubscribers = 16;
  constexpr int kPublishes = 40;
  ServiceConfig config;
  config.max_subscriber_queue_frames = 8;  // small: force shedding
  QueryService service{config};

  std::vector<std::unique_ptr<CollectingSink>> sinks;
  std::vector<uint64_t> subscriber_ids;
  for (int i = 0; i < kSubscribers; ++i) {
    sinks.push_back(std::make_unique<CollectingSink>());
    if (i == 0) sinks.back()->stalled.store(true);  // the wedged one
    auto id = service.AddSubscriber(sinks.back()->AsSink());
    ASSERT_TRUE(id.ok());
    subscriber_ids.push_back(*id);
    ASSERT_TRUE(service.Subscribe(*id, "//a/text()").ok());
    ASSERT_TRUE(
        service.Subscribe(*id, "//book[price>10]/title/text()").ok());
  }

  std::atomic<bool> stop{false};
  // Churner: adds and removes subscriptions, removes two subscribers
  // mid-storm.
  std::thread churner([&] {
    for (int round = 0; !stop.load() && round < 100; ++round) {
      uint64_t victim = subscriber_ids[2 + (round % 4)];
      auto extra = service.Subscribe(victim, "//extra/text()");
      if (extra.ok()) service.Unsubscribe(victim, *extra);
      if (round == 20) service.RemoveSubscriber(subscriber_ids[14]);
      if (round == 40) service.RemoveSubscriber(subscriber_ids[15]);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  const std::string document =
      "<r><a>alpha</a><a>beta</a>"
      "<book><price>30</price><title>T</title></book></r>";
  uint64_t total_shed = 0;
  for (int p = 0; p < kPublishes; ++p) {
    auto summary = service.Publish(document);
    ASSERT_TRUE(summary.ok());
    total_shed += summary->frames_shed;
  }
  stop.store(true);
  churner.join();

  // The stalled subscriber shed. On a single-CPU box the publish loop
  // can outrun the dispatchers so healthy subscribers legitimately shed
  // too; the properties worth pinning are that sinks[1] kept receiving
  // at all while sinks[0] was wedged, and that the pipeline is still
  // live after the storm.
  EXPECT_GT(total_shed, 0u);
  EXPECT_TRUE(sinks[1]->WaitForFrames(1));
  sinks[0]->stalled.store(false);  // unwedge
  bool live = false;
  for (int attempt = 0; attempt < 10 && !live; ++attempt) {
    size_t before = sinks[1]->Snapshot().size();
    auto extra = service.Publish(document);
    ASSERT_TRUE(extra.ok());
    // A full queue may still shed this publish's frames while the
    // backlog drains; retry until one lands.
    live = sinks[1]->WaitForFrames(before + 1, 1000);
  }
  EXPECT_TRUE(live) << "pipeline dead after the storm";
  service.Shutdown();
  service::StatsSnapshot stats = service.stats();
  EXPECT_GE(stats.publishes, static_cast<uint64_t>(kPublishes));
  EXPECT_GT(stats.events_delivered, 0u);
  EXPECT_GE(stats.fanout_shed, total_shed);
}

}  // namespace
}  // namespace xsq
