// Tests for the router gossip layer (src/cluster/gossip.h): the
// GossipDigest merge algebra (the property suite that makes the
// convergence argument in DESIGN.md §15 a theorem — the per-entry
// merge is a join in a total order, so it must be commutative,
// associative, and idempotent under arbitrary digests), the wire
// format's CRC discipline, and the GossipAgent's epoch bookkeeping:
// local observations out-epoch everything seen, push-pull exchanges
// converge two disagreeing agents in one round, key tombstones never
// resurrect.
#include <cstdint>
#include <string>
#include <vector>

#include "cluster/backend_pool.h"
#include "cluster/gossip.h"
#include "cluster/replication.h"
#include "cluster/shard_map.h"
#include "common/status.h"
#include "common/strings.h"
#include "gtest/gtest.h"

namespace xsq {
namespace {

using cluster::Backend;
using cluster::BackendConfig;
using cluster::GossipAgent;
using cluster::GossipConfig;
using cluster::GossipDigest;
using cluster::ReplicationConfig;
using cluster::Replicator;
using cluster::ShardHealth;
using cluster::ShardMap;

// A digest with every field drawn from the rng: epochs collide on
// purpose (small range) so the tie-break arms of the merge actually
// run, and keys come from a small shared pool so two random digests
// overlap as well as differ.
GossipDigest RandomDigest(SplitMix64& rng, size_t num_shards) {
  GossipDigest digest;
  digest.shards.resize(num_shards);
  for (auto& shard : digest.shards) {
    shard.epoch = rng.Below(6);
    shard.health = static_cast<ShardHealth>(rng.Below(4));
  }
  for (int k = 0; k < 8; ++k) {
    if (rng.Below(2) == 0) continue;  // each key present ~half the time
    GossipDigest::KeyEntry entry;
    entry.epoch = rng.Below(6);
    entry.deleted = rng.Below(2) == 0;
    digest.keys["key-" + std::to_string(k)] = entry;
  }
  return digest;
}

GossipDigest Merge(GossipDigest a, const GossipDigest& b) {
  a.MergeFrom(b);
  return a;
}

TEST(GossipDigestTest, SupersedesOrdersByEpochThenSeverity) {
  using ShardEntry = GossipDigest::ShardEntry;
  using KeyEntry = GossipDigest::KeyEntry;
  // Strictly newer epoch wins regardless of value.
  EXPECT_TRUE(GossipDigest::Supersedes(ShardEntry{2, ShardHealth::kServing},
                                       ShardEntry{1, ShardHealth::kDead}));
  EXPECT_FALSE(GossipDigest::Supersedes(ShardEntry{1, ShardHealth::kDead},
                                        ShardEntry{2, ShardHealth::kServing}));
  // Equal epochs: the worse health wins (deterministic tie break, and
  // the safe direction — a router that believes a shard is dead should
  // not be argued back by an equally-old opinion).
  EXPECT_TRUE(GossipDigest::Supersedes(ShardEntry{3, ShardHealth::kDead},
                                       ShardEntry{3, ShardHealth::kServing}));
  EXPECT_FALSE(GossipDigest::Supersedes(ShardEntry{3, ShardHealth::kServing},
                                        ShardEntry{3, ShardHealth::kDead}));
  // Identical entries do not supersede each other (idempotence).
  EXPECT_FALSE(GossipDigest::Supersedes(ShardEntry{3, ShardHealth::kDead},
                                        ShardEntry{3, ShardHealth::kDead}));
  // Keys: tombstone wins the equal-epoch tie, so an EVICT observed by
  // one router cannot be resurrected by a peer's stale live entry.
  EXPECT_TRUE(GossipDigest::Supersedes(KeyEntry{4, true}, KeyEntry{4, false}));
  EXPECT_FALSE(GossipDigest::Supersedes(KeyEntry{4, false}, KeyEntry{4, true}));
}

TEST(GossipDigestTest, MergeIsCommutative) {
  SplitMix64 rng(0xc0ffee);
  for (int trial = 0; trial < 200; ++trial) {
    GossipDigest a = RandomDigest(rng, 4);
    GossipDigest b = RandomDigest(rng, 4);
    EXPECT_EQ(Merge(a, b), Merge(b, a)) << "trial " << trial;
  }
}

TEST(GossipDigestTest, MergeIsAssociative) {
  SplitMix64 rng(0xdecade);
  for (int trial = 0; trial < 200; ++trial) {
    GossipDigest a = RandomDigest(rng, 4);
    GossipDigest b = RandomDigest(rng, 4);
    GossipDigest c = RandomDigest(rng, 4);
    EXPECT_EQ(Merge(Merge(a, b), c), Merge(a, Merge(b, c)))
        << "trial " << trial;
  }
}

TEST(GossipDigestTest, MergeIsIdempotent) {
  SplitMix64 rng(0xfeed);
  for (int trial = 0; trial < 100; ++trial) {
    GossipDigest a = RandomDigest(rng, 4);
    GossipDigest b = RandomDigest(rng, 4);
    // a ∨ a = a, with zero adoptions.
    GossipDigest self = a;
    EXPECT_EQ(self.MergeFrom(a), 0u);
    EXPECT_EQ(self, a);
    // (a ∨ b) ∨ b = a ∨ b: re-delivering a digest changes nothing.
    GossipDigest joined = Merge(a, b);
    GossipDigest again = joined;
    EXPECT_EQ(again.MergeFrom(b), 0u);
    EXPECT_EQ(again, joined);
  }
}

TEST(GossipDigestTest, MergeNeverLowersAnEpoch) {
  SplitMix64 rng(0xabcdef);
  for (int trial = 0; trial < 100; ++trial) {
    GossipDigest a = RandomDigest(rng, 4);
    GossipDigest b = RandomDigest(rng, 4);
    GossipDigest joined = Merge(a, b);
    for (size_t i = 0; i < a.shards.size(); ++i) {
      EXPECT_GE(joined.shards[i].epoch, a.shards[i].epoch);
      EXPECT_GE(joined.shards[i].epoch, b.shards[i].epoch);
    }
    for (const auto& [key, entry] : a.keys) {
      EXPECT_GE(joined.keys.at(key).epoch, entry.epoch) << key;
    }
    for (const auto& [key, entry] : b.keys) {
      EXPECT_GE(joined.keys.at(key).epoch, entry.epoch) << key;
    }
  }
}

TEST(GossipDigestTest, AllPairsExchangeConvergesKDivergentDigests) {
  // K routers each start with a different opinion; one all-pairs
  // push-pull sweep (each pair exchanges and both adopt the join)
  // leaves every router with the identical global join — bounded-round
  // convergence, which the agent's jittered loop then provides in one
  // interval per pair.
  SplitMix64 rng(0x5eed);
  constexpr size_t kRouters = 5;
  std::vector<GossipDigest> digests;
  for (size_t i = 0; i < kRouters; ++i) {
    digests.push_back(RandomDigest(rng, 6));
  }
  for (size_t i = 0; i < kRouters; ++i) {
    for (size_t j = i + 1; j < kRouters; ++j) {
      // Push-pull: j merges i's digest, i merges j's post-merge reply.
      digests[j].MergeFrom(digests[i]);
      digests[i].MergeFrom(digests[j]);
    }
  }
  for (size_t i = 1; i < kRouters; ++i) {
    EXPECT_EQ(digests[i], digests[0]) << "router " << i;
  }
}

TEST(GossipDigestTest, WireRoundTripIsExact) {
  SplitMix64 rng(0x9a9a);
  for (int trial = 0; trial < 50; ++trial) {
    GossipDigest digest = RandomDigest(rng, 3);
    auto parsed = GossipDigest::Parse(digest.Serialize());
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(*parsed, digest);
    auto decoded = GossipDigest::DecodeWire(digest.EncodeWire());
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(*decoded, digest);
  }
  // Keys with protocol-hostile bytes survive the single-token wire
  // form (the verb carries the whole block LineEscape'd).
  GossipDigest hostile;
  hostile.shards.resize(1);
  hostile.keys["k with spaces\nand newlines\\"] = {7, false};
  auto decoded = GossipDigest::DecodeWire(hostile.EncodeWire());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, hostile);
}

TEST(GossipDigestTest, CorruptOrTruncatedWireIsRejected) {
  SplitMix64 rng(0xbad);
  GossipDigest digest = RandomDigest(rng, 3);
  digest.keys["anchor"] = {1, false};
  std::string text = digest.Serialize();

  // Any flipped payload byte trips the CRC trailer.
  std::string flipped = text;
  flipped[text.size() / 3] ^= 0x20;
  auto corrupt = GossipDigest::Parse(flipped);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_EQ(corrupt.status().code(), StatusCode::kDataCorruption);

  // A truncated block lost its trailer.
  auto truncated = GossipDigest::Parse(text.substr(0, text.size() / 2));
  EXPECT_FALSE(truncated.ok());

  // Garbage and emptiness are clean errors, not crashes.
  EXPECT_FALSE(GossipDigest::Parse("").ok());
  EXPECT_FALSE(GossipDigest::Parse("XSQGOSSIP v1 shards=2\n").ok());
  EXPECT_FALSE(GossipDigest::DecodeWire("not-a-digest").ok());
}

// ---------------------------------------------------------------------------
// GossipAgent: epoch bookkeeping and push-pull exchange, no network.
// Agents talk through the same HandleExchange entry point the GOSSIP
// verb uses; backends point at ports nothing listens on (the agent
// only writes their health flags here).

struct AgentHarness {
  explicit AgentHarness(size_t num_shards, uint16_t base_port) : map(num_shards, 8) {
    ReplicationConfig repl_config;
    repl_config.start_workers = false;
    std::vector<Backend*> raw;
    for (size_t i = 0; i < num_shards; ++i) {
      backends.push_back(std::make_unique<Backend>(
          cluster::ShardAddress{"127.0.0.1",
                                static_cast<uint16_t>(base_port + i)},
          BackendConfig()));
      raw.push_back(backends.back().get());
    }
    replicator = std::make_unique<Replicator>(&map, raw, repl_config);
    GossipConfig gossip_config;
    gossip_config.enable = true;
    gossip_config.start = false;  // deterministic: tests drive exchanges
    agent = std::make_unique<GossipAgent>(raw, replicator.get(),
                                          std::move(gossip_config));
  }

  ShardMap map;
  std::vector<std::unique_ptr<Backend>> backends;
  std::unique_ptr<Replicator> replicator;
  std::unique_ptr<GossipAgent> agent;
};

// One no-network push-pull round: `a` pushes its digest to `b` (the
// GOSSIP verb's server side), then merges b's post-merge reply — the
// client side of the same round.
void PushPull(AgentHarness& a, AgentHarness& b) {
  auto reply = b.agent->HandleExchange(a.agent->Snapshot().EncodeWire());
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  auto back = a.agent->HandleExchange(reply->wire);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
}

TEST(GossipAgentTest, LocalObservationBumpsEpochOnlyOnTransition) {
  AgentHarness harness(2, 39000);
  GossipDigest start = harness.agent->Snapshot();
  ASSERT_EQ(start.shards.size(), 2u);
  EXPECT_EQ(start.shards[0].epoch, 0u);

  harness.agent->LocalObservation(0, ShardHealth::kDead);
  GossipDigest after = harness.agent->Snapshot();
  EXPECT_EQ(after.shards[0].epoch, 1u);
  EXPECT_EQ(after.shards[0].health, ShardHealth::kDead);
  EXPECT_EQ(harness.backends[0]->health(), ShardHealth::kDead);

  // The same observation again is not a transition: no epoch churn,
  // nothing new to gossip.
  harness.agent->LocalObservation(0, ShardHealth::kDead);
  EXPECT_EQ(harness.agent->Snapshot().shards[0].epoch, 1u);

  harness.agent->LocalObservation(0, ShardHealth::kServing);
  EXPECT_EQ(harness.agent->Snapshot().shards[0].epoch, 2u);
  EXPECT_EQ(harness.backends[0]->health(), ShardHealth::kServing);
}

TEST(GossipAgentTest, PushPullConvergesTwoDisagreeingAgents) {
  AgentHarness a(3, 39100);
  AgentHarness b(3, 39100);  // same logical shard set
  // A staged disagreement: each router's prober saw a different shard
  // die (the scenario two probe threads racing a real outage produce).
  a.agent->LocalObservation(0, ShardHealth::kDead);
  b.agent->LocalObservation(1, ShardHealth::kDead);
  ASSERT_NE(a.agent->Snapshot(), b.agent->Snapshot());

  PushPull(a, b);

  // One round: both digests equal, both unions — shards 0 AND 1 dead
  // on both sides, and the backends (the ring's health source) agree.
  GossipDigest merged = a.agent->Snapshot();
  EXPECT_EQ(merged, b.agent->Snapshot());
  EXPECT_EQ(merged.shards[0].health, ShardHealth::kDead);
  EXPECT_EQ(merged.shards[1].health, ShardHealth::kDead);
  EXPECT_EQ(a.backends[1]->health(), ShardHealth::kDead);
  EXPECT_EQ(b.backends[0]->health(), ShardHealth::kDead);
  EXPECT_GE(a.agent->counters().merges, 1u);
  EXPECT_GE(b.agent->counters().merges, 1u);

  // Converged masks mean converged rings: ShardMap is a pure function
  // of topology + mask, so every key owner matches across routers.
  std::vector<bool> mask_a, mask_b;
  for (size_t i = 0; i < 3; ++i) {
    mask_a.push_back(a.backends[i]->alive());
    mask_b.push_back(b.backends[i]->alive());
  }
  ASSERT_EQ(mask_a, mask_b);
  for (int k = 0; k < 50; ++k) {
    std::string key = "doc-" + std::to_string(k);
    EXPECT_EQ(a.map.Owner(key, mask_a), b.map.Owner(key, mask_b)) << key;
  }
}

TEST(GossipAgentTest, FresherLocalObservationOutEpochsStaleRemote) {
  AgentHarness a(2, 39200);
  AgentHarness b(2, 39200);
  // B once saw shard 0 die, then A (whose probes still succeed)
  // observes it serving. A's transition must out-epoch B's stale dead
  // flag: after the exchange both sides route to shard 0 again.
  b.agent->LocalObservation(0, ShardHealth::kDead);
  PushPull(a, b);
  ASSERT_EQ(a.backends[0]->health(), ShardHealth::kDead);

  a.agent->LocalObservation(0, ShardHealth::kServing);  // epoch 2 > 1
  PushPull(a, b);
  EXPECT_EQ(a.backends[0]->health(), ShardHealth::kServing);
  EXPECT_EQ(b.backends[0]->health(), ShardHealth::kServing);
  EXPECT_EQ(a.agent->Snapshot().shards[0].epoch, 2u);
}

TEST(GossipAgentTest, KeyIndexGossipsAndTombstonesDoNotResurrect) {
  AgentHarness a(2, 39300);
  AgentHarness b(2, 39300);
  a.agent->NoteKey("alpha");
  a.agent->NoteKey("beta");
  EXPECT_EQ(a.replicator->known_keys(), 2u);

  // B learns A's keys through the exchange — this is what lets a
  // surviving router sweep-repair documents it never saw RECORDed.
  PushPull(a, b);
  EXPECT_EQ(b.replicator->known_keys(), 2u);

  // An EVICT on A tombstones the key; the exchange removes it from B's
  // sweep universe too, and re-merging A's old digest cannot bring it
  // back (tombstone epoch supersedes).
  a.agent->ForgetKey("alpha");
  PushPull(a, b);
  EXPECT_EQ(a.replicator->known_keys(), 1u);
  EXPECT_EQ(b.replicator->known_keys(), 1u);
  GossipDigest before = b.agent->Snapshot();
  ASSERT_TRUE(before.keys.at("alpha").deleted);

  // Re-record after the evict: a fresh epoch revives the key cleanly.
  a.agent->NoteKey("alpha");
  PushPull(a, b);
  EXPECT_EQ(b.replicator->known_keys(), 2u);
  EXPECT_FALSE(b.agent->Snapshot().keys.at("alpha").deleted);
}

TEST(GossipAgentTest, ExchangeRejectsTopologyMismatchAndCorruptWire) {
  AgentHarness harness(2, 39400);
  GossipDigest wrong_size;
  wrong_size.shards.resize(3);
  auto mismatch = harness.agent->HandleExchange(wrong_size.EncodeWire());
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.status().code(), StatusCode::kInvalidArgument);

  auto garbage = harness.agent->HandleExchange("definitely-not-a-digest");
  EXPECT_FALSE(garbage.ok());

  // A rejected exchange leaves the local digest untouched.
  EXPECT_EQ(harness.agent->Snapshot().shards.size(), 2u);
  EXPECT_EQ(harness.agent->counters().merges, 0u);
}

}  // namespace
}  // namespace xsq
