// Additional DTD module coverage: content-model corner cases, ToString
// round trips, nested groups through the automaton, and validator
// behavior on the generated corpora DTDs.
#include <gtest/gtest.h>

#include "datagen/generators.h"
#include "dtd/content_automaton.h"
#include "dtd/dtd.h"
#include "dtd/optimizer.h"
#include "dtd/validator.h"
#include "xpath/ast.h"

namespace xsq::dtd {
namespace {

Dtd ParseOk(std::string_view text) {
  Result<Dtd> dtd = Dtd::Parse(text);
  EXPECT_TRUE(dtd.ok()) << dtd.status().ToString();
  return dtd.ok() ? *std::move(dtd) : Dtd();
}

TEST(DtdEdgeTest, ToStringRoundTripsThroughParser) {
  const char* sources[] = {
      "<!ELEMENT a (b,c?,(d|e)*)>\n<!ELEMENT b EMPTY>\n",
      "<!ELEMENT a (#PCDATA|b)*>\n",
      "<!ELEMENT a ANY>\n<!ATTLIST a x CDATA #REQUIRED>\n",
      "<!ELEMENT a ((b,c)+|d)>\n",
  };
  for (const char* source : sources) {
    Dtd first = ParseOk(source);
    Dtd second = ParseOk(first.ToString());
    EXPECT_EQ(first.ToString(), second.ToString()) << source;
  }
}

TEST(DtdEdgeTest, NestedGroupAutomaton) {
  Dtd dtd = ParseOk("<!ELEMENT a ((b,c)+|d)>");
  ContentAutomaton automaton =
      ContentAutomaton::Compile(dtd.FindElement("a")->model.particle);
  auto run = [&](std::initializer_list<const char*> children) {
    std::vector<int> states = automaton.Start();
    for (const char* child : children) {
      states = automaton.Advance(states, child);
      if (states.empty()) return false;
    }
    return automaton.Accepts(states);
  };
  EXPECT_TRUE(run({"b", "c"}));
  EXPECT_TRUE(run({"b", "c", "b", "c"}));
  EXPECT_TRUE(run({"d"}));
  EXPECT_FALSE(run({}));
  EXPECT_FALSE(run({"b"}));
  EXPECT_FALSE(run({"b", "c", "d"}));
  EXPECT_FALSE(run({"d", "d"}));
}

TEST(DtdEdgeTest, GroupRepeatWrapsSingleChild) {
  // (a?)* folds to a*.
  Dtd dtd = ParseOk("<!ELEMENT r ((a?)*)>");
  ContentAutomaton automaton =
      ContentAutomaton::Compile(dtd.FindElement("r")->model.particle);
  std::vector<int> states = automaton.Start();
  EXPECT_TRUE(automaton.Accepts(states));
  for (int i = 0; i < 4; ++i) {
    states = automaton.Advance(states, "a");
    ASSERT_FALSE(states.empty());
    EXPECT_TRUE(automaton.Accepts(states));
  }
}

TEST(DtdEdgeTest, RedeclarationKeepsLatestModel) {
  Dtd dtd = ParseOk("<!ELEMENT a (b)>\n<!ELEMENT a ANY>");
  EXPECT_EQ(dtd.element_count(), 1u);
  EXPECT_EQ(dtd.FindElement("a")->model.kind, ContentModel::Kind::kAny);
}

TEST(DtdEdgeTest, AttlistBeforeElementDeclaration) {
  Dtd dtd = ParseOk(
      "<!ATTLIST a x CDATA #IMPLIED>\n<!ELEMENT a EMPTY>");
  const ElementDecl* a = dtd.FindElement("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->attributes.size(), 1u);
  EXPECT_EQ(a->model.kind, ContentModel::Kind::kEmpty);
}

TEST(DtdEdgeTest, DblpCorpusValidatesAgainstItsDtd) {
  Dtd dtd = ParseOk(R"(
    <!ELEMENT dblp (article|inproceedings)*>
    <!ELEMENT article (author*,title,year,journal,pages)>
    <!ELEMENT inproceedings (author*,title,year,booktitle,pages)>
    <!ATTLIST article key CDATA #REQUIRED>
    <!ATTLIST inproceedings key CDATA #REQUIRED>
    <!ELEMENT author (#PCDATA)>
    <!ELEMENT title (#PCDATA)>
    <!ELEMENT year (#PCDATA)>
    <!ELEMENT journal (#PCDATA)>
    <!ELEMENT booktitle (#PCDATA)>
    <!ELEMENT pages (#PCDATA)>
  )");
  std::string xml = datagen::GenerateDblp(80000, 3);
  EXPECT_TRUE(ValidateDocument(dtd, xml, "dblp").ok());
}

TEST(DtdEdgeTest, PubsCorpusValidatesAgainstItsDtd) {
  Dtd dtd = ParseOk(R"(
    <!ELEMENT pubs (pub+)>
    <!ELEMENT pub (year?,(book|pub)*)>
    <!ELEMENT book (title,price)>
    <!ATTLIST book id CDATA #IMPLIED>
    <!ELEMENT title (#PCDATA)>
    <!ELEMENT price (#PCDATA)>
    <!ELEMENT year (#PCDATA)>
  )");
  std::string xml = datagen::GenerateRecursivePubs(80000, 4);
  Status status = ValidateDocument(dtd, xml, "pubs");
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(DtdEdgeTest, OptimizerStepTagsOnWildcardQuery) {
  Dtd dtd = ParseOk(R"(
    <!ELEMENT r (a,b)>
    <!ELEMENT a (x?)>
    <!ELEMENT b EMPTY>
    <!ELEMENT x (#PCDATA)>
  )");
  auto query = xpath::ParseQuery("/r/*");
  ASSERT_TRUE(query.ok());
  auto analysis = AnalyzeQuery(dtd, "r", *query);
  ASSERT_TRUE(analysis.ok());
  EXPECT_EQ(analysis->step_tags[1],
            (std::vector<std::string>{"a", "b"}));
}

TEST(DtdEdgeTest, OptimizerHandlesAnyContent) {
  Dtd dtd = ParseOk("<!ELEMENT r ANY><!ELEMENT leaf (#PCDATA)>");
  auto query = xpath::ParseQuery("//leaf/text()");
  ASSERT_TRUE(query.ok());
  auto analysis = AnalyzeQuery(dtd, "r", *query);
  ASSERT_TRUE(analysis.ok());
  EXPECT_TRUE(analysis->satisfiable);
  // ANY makes the element graph cyclic-ish (r can contain r), so no
  // unique-path rewrite should be claimed.
  EXPECT_FALSE(analysis->closure_free_rewrite.has_value());
}

TEST(DtdEdgeTest, ValidatorStopsAtFirstErrorAndReportsIt) {
  Dtd dtd = ParseOk("<!ELEMENT r (a)><!ELEMENT a EMPTY>");
  Status status =
      ValidateDocument(dtd, "<r><a/><a/></r>", "r");  // one a too many
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("not allowed"), std::string::npos);
}

}  // namespace
}  // namespace xsq::dtd
