#include "core/engine.h"

#include <gtest/gtest.h>

#include "xml/sax_parser.h"

namespace xsq::core {
namespace {

constexpr const char* kFig1 =
    "<root><pub>"
    "<book id=\"1\"><price>12.00</price><name>First</name>"
    "<author>A</author><price type=\"discount\">10.00</price></book>"
    "<book id=\"2\"><price>14.00</price><name>Second</name>"
    "<author>A</author><author>B</author>"
    "<price type=\"discount\">12.00</price></book>"
    "<year>2002</year>"
    "</pub></root>";

constexpr const char* kFig2 =
    "<root><pub>"
    "<book><name>X</name><author>A</author></book>"
    "<book><name>Y</name>"
    "<pub><book><name>Z</name><author>B</author></book>"
    "<year>1999</year></pub>"
    "</book>"
    "<year>2002</year>"
    "</pub></root>";

QueryResult RunQ(std::string_view query, std::string_view xml) {
  Result<QueryResult> result = RunQuery(query, xml);
  EXPECT_TRUE(result.ok()) << query << ": " << result.status().ToString();
  return result.ok() ? *std::move(result) : QueryResult{};
}

TEST(XsqEngineTest, PaperExample1BuffersUntilPredicatesResolve) {
  // The author A must be buffered until year=2002 arrives (Section 1).
  QueryResult r = RunQ("/root/pub[year=2002]/book[price<11]/author", kFig1);
  ASSERT_EQ(r.items.size(), 1u);
  EXPECT_EQ(r.items[0], "<author>A</author>");
}

TEST(XsqEngineTest, PaperExample1FailingOuterPredicateClearsAll) {
  QueryResult r = RunQ("/root/pub[year=1999]/book[price<11]/author", kFig1);
  EXPECT_TRUE(r.items.empty());
}

TEST(XsqEngineTest, PaperExample2RecursiveClosures) {
  // Three overlapping matches; only chains proving both predicates
  // true keep their items, without duplicates (Section 4.3).
  QueryResult r = RunQ("//pub[year=2002]//book[author]//name", kFig2);
  ASSERT_EQ(r.items.size(), 2u);
  EXPECT_EQ(r.items[0], "<name>X</name>");
  EXPECT_EQ(r.items[1], "<name>Z</name>");
}

TEST(XsqEngineTest, PaperExample2TextOutput) {
  QueryResult r = RunQ("//pub[year=2002]//book[author]//name/text()", kFig2);
  ASSERT_EQ(r.items.size(), 2u);
  EXPECT_EQ(r.items[0], "X");
  EXPECT_EQ(r.items[1], "Z");
}

TEST(XsqEngineTest, DuplicateAvoidanceWhenMultipleChainsSucceed) {
  // Both the outer and inner pub satisfy [year]; name matches via both
  // chains but must be output exactly once (end of Example 2).
  const char* doc =
      "<root><pub><year>2002</year>"
      "<pub><year>2001</year><name>N</name></pub>"
      "</pub></root>";
  QueryResult r = RunQ("//pub[year]//name/text()", doc);
  ASSERT_EQ(r.items.size(), 1u);
  EXPECT_EQ(r.items[0], "N");
}

TEST(XsqEngineTest, PredicateSatisfiedAfterResultStreamsPast) {
  // The result text arrives before the predicate's deciding event.
  const char* doc = "<a><n>v</n><ok/></a>";
  QueryResult r = RunQ("/a[ok]/n/text()", doc);
  ASSERT_EQ(r.items.size(), 1u);
  EXPECT_EQ(r.items[0], "v");
}

TEST(XsqEngineTest, PredicateFailsAtEndTagDiscardsBuffer) {
  QueryResult r = RunQ("/a[ok]/n/text()", "<a><n>v</n></a>");
  EXPECT_TRUE(r.items.empty());
}

TEST(XsqEngineTest, OwnPredicateOnOutputStep) {
  const char* doc = "<r><n><q/>keep</n><n>drop</n></r>";
  QueryResult r = RunQ("/r/n[q]/text()", doc);
  ASSERT_EQ(r.items.size(), 1u);
  EXPECT_EQ(r.items[0], "keep");
}

TEST(XsqEngineTest, ExistentialChildPredicateOverManyChildren) {
  // Only when ALL price children fail does the book fail (Example 1).
  const char* doc =
      "<r><book><price>20</price><price>5</price><t>A</t></book>"
      "<book><price>20</price><t>B</t></book></r>";
  QueryResult r = RunQ("/r/book[price<11]/t/text()", doc);
  ASSERT_EQ(r.items.size(), 1u);
  EXPECT_EQ(r.items[0], "A");
}

TEST(XsqEngineTest, AttributePredicateDecidedAtBegin) {
  const char* doc = "<r><a id=\"5\"><t>x</t></a><a id=\"9\"><t>y</t></a></r>";
  QueryResult r = RunQ("/r/a[@id<7]/t/text()", doc);
  ASSERT_EQ(r.items.size(), 1u);
  EXPECT_EQ(r.items[0], "x");
}

TEST(XsqEngineTest, ChildAttributePredicate) {
  const char* doc =
      "<r><p><b id=\"3\"/><t>yes</t></p><p><b/><t>no</t></p></r>";
  QueryResult r = RunQ("/r/p[b@id]/t/text()", doc);
  ASSERT_EQ(r.items.size(), 1u);
  EXPECT_EQ(r.items[0], "yes");
}

TEST(XsqEngineTest, MultiplePredicatesPerStepAreConjunctive) {
  const char* doc =
      "<r><a id=\"1\"><b/><t>both</t></a>"
      "<a id=\"1\"><t>attr-only</t></a>"
      "<a><b/><t>child-only</t></a></r>";
  QueryResult r = RunQ("/r/a[@id][b]/t/text()", doc);
  ASSERT_EQ(r.items.size(), 1u);
  EXPECT_EQ(r.items[0], "both");
}

TEST(XsqEngineTest, WildcardSteps) {
  QueryResult r = RunQ("/r/*/t/text()", "<r><x><t>1</t></x><y><t>2</t></y></r>");
  ASSERT_EQ(r.items.size(), 2u);
}

TEST(XsqEngineTest, AttributeOutput) {
  QueryResult r =
      RunQ("//book/@id", "<r><book id=\"1\"/><book/><book id=\"2\"/></r>");
  ASSERT_EQ(r.items.size(), 2u);
  EXPECT_EQ(r.items[0], "1");
  EXPECT_EQ(r.items[1], "2");
}

TEST(XsqEngineTest, BufferedAttributeOutput) {
  // Attribute captured at begin but only released by a later predicate.
  const char* doc = "<r><a id=\"7\"><ok/></a><a id=\"8\"></a></r>";
  QueryResult r = RunQ("/r/a[ok]/@id", doc);
  ASSERT_EQ(r.items.size(), 1u);
  EXPECT_EQ(r.items[0], "7");
}

TEST(XsqEngineTest, ElementOutputSerializesWholeSubtree) {
  const char* doc = "<r><a x=\"1\">t<b>u</b></a></r>";
  QueryResult r = RunQ("/r/a", doc);
  ASSERT_EQ(r.items.size(), 1u);
  EXPECT_EQ(r.items[0], "<a x=\"1\">t<b>u</b></a>");
}

TEST(XsqEngineTest, NestedElementOutputInDocumentOrder) {
  QueryResult r = RunQ("//a", "<a>1<a>2</a></a>");
  ASSERT_EQ(r.items.size(), 2u);
  EXPECT_EQ(r.items[0], "<a>1<a>2</a></a>");
  EXPECT_EQ(r.items[1], "<a>2</a>");
}

TEST(XsqEngineTest, BufferedElementOutputWithLatePredicate) {
  const char* doc = "<r><p><a>keep</a><ok/></p><p><a>drop</a></p></r>";
  QueryResult r = RunQ("/r/p[ok]/a", doc);
  ASSERT_EQ(r.items.size(), 1u);
  EXPECT_EQ(r.items[0], "<a>keep</a>");
}

TEST(XsqEngineTest, MixedContentEmitsPerTextEvent) {
  QueryResult r = RunQ("/a/text()", "<a>x<b/>y</a>");
  ASSERT_EQ(r.items.size(), 2u);
  EXPECT_EQ(r.items[0], "x");
  EXPECT_EQ(r.items[1], "y");
}

TEST(XsqEngineTest, CountAggregation) {
  QueryResult r = RunQ("//book/name/count()", kFig2);
  ASSERT_TRUE(r.aggregate.has_value());
  EXPECT_DOUBLE_EQ(*r.aggregate, 3.0);
}

TEST(XsqEngineTest, CountOnlyCountsChainsThatProvePredicates) {
  QueryResult r = RunQ("//pub[year=2002]//book[author]//name/count()", kFig2);
  ASSERT_TRUE(r.aggregate.has_value());
  EXPECT_DOUBLE_EQ(*r.aggregate, 2.0);
}

TEST(XsqEngineTest, SumAggregation) {
  QueryResult r =
      RunQ("/r/x/sum()", "<r><x>1.5</x><x>skip</x><x>2</x></r>");
  ASSERT_TRUE(r.aggregate.has_value());
  EXPECT_DOUBLE_EQ(*r.aggregate, 3.5);
}

TEST(XsqEngineTest, AggregateUpdatesStreamIncrementally) {
  // Section 4.4: stat.update emits a value per change, usable on
  // unbounded streams.
  Result<xpath::Query> query = xpath::ParseQuery("/r/x/count()");
  ASSERT_TRUE(query.ok());
  CollectingSink sink;
  auto engine = XsqEngine::Create(*query, &sink);
  ASSERT_TRUE(engine.ok());
  xml::SaxParser parser(engine->get());
  ASSERT_TRUE(parser.Parse("<r><x/><y/><x/><x/></r>").ok());
  ASSERT_EQ(sink.aggregate_updates.size(), 3u);
  EXPECT_DOUBLE_EQ(sink.aggregate_updates[0], 1.0);
  EXPECT_DOUBLE_EQ(sink.aggregate_updates[1], 2.0);
  EXPECT_DOUBLE_EQ(sink.aggregate_updates[2], 3.0);
  ASSERT_TRUE(sink.aggregate.has_value());
  EXPECT_DOUBLE_EQ(*sink.aggregate, 3.0);
}

TEST(XsqEngineTest, AvgMinMaxAggregations) {
  const char* doc = "<r><x>2</x><x>4</x><x>9</x></r>";
  EXPECT_DOUBLE_EQ(*RunQ("/r/x/avg()", doc).aggregate, 5.0);
  EXPECT_DOUBLE_EQ(*RunQ("/r/x/min()", doc).aggregate, 2.0);
  EXPECT_DOUBLE_EQ(*RunQ("/r/x/max()", doc).aggregate, 9.0);
}

TEST(XsqEngineTest, DeeplyRecursiveClosureData) {
  // 30 nested a's: //a//a matches every a except the outermost once.
  std::string doc;
  const int depth = 30;
  for (int i = 0; i < depth; ++i) doc += "<a>";
  for (int i = 0; i < depth; ++i) doc += "</a>";
  QueryResult r = RunQ("//a//a/count()", doc);
  ASSERT_TRUE(r.aggregate.has_value());
  EXPECT_DOUBLE_EQ(*r.aggregate, depth - 1.0);
}

TEST(XsqEngineTest, ClosureIsStrictDescendant) {
  QueryResult r = RunQ("//a//a", "<a><a/></a>");
  ASSERT_EQ(r.items.size(), 1u);
  EXPECT_EQ(r.items[0], "<a></a>");
}

TEST(XsqEngineTest, DocumentOrderPreservedAcrossLateSelection) {
  // Both items pend on different books; earlier item resolves later.
  const char* doc =
      "<r><b><t>first</t><ok/></b><b><t>second</t><ok/></b></r>";
  QueryResult r = RunQ("/r/b[ok]/t/text()", doc);
  ASSERT_EQ(r.items.size(), 2u);
  EXPECT_EQ(r.items[0], "first");
  EXPECT_EQ(r.items[1], "second");
}

TEST(XsqEngineTest, StatsTrackMatchesAndItems) {
  Result<xpath::Query> query = xpath::ParseQuery("//a/text()");
  ASSERT_TRUE(query.ok());
  CollectingSink sink;
  auto engine = XsqEngine::Create(*query, &sink);
  ASSERT_TRUE(engine.ok());
  xml::SaxParser parser(engine->get());
  ASSERT_TRUE(parser.Parse("<a>1<a>2</a></a>").ok());
  ASSERT_TRUE((*engine)->status().ok());
  EXPECT_GE((*engine)->stats().matches_created, 2u);
  EXPECT_EQ((*engine)->stats().items_emitted, 2u);  // "1" and "2"
}

TEST(XsqEngineTest, MemoryReleasedAfterRun) {
  Result<xpath::Query> query = xpath::ParseQuery("/r/a[z]/t/text()");
  ASSERT_TRUE(query.ok());
  CollectingSink sink;
  auto engine = XsqEngine::Create(*query, &sink);
  ASSERT_TRUE(engine.ok());
  xml::SaxParser parser(engine->get());
  ASSERT_TRUE(parser.Parse("<r><a><t>buffered</t></a></r>").ok());
  EXPECT_GT((*engine)->memory().peak_bytes(), 0u);
  EXPECT_EQ((*engine)->memory().current_bytes(), 0u);
}

TEST(XsqEngineTest, PeakMemoryBoundedByBufferedDataNotDocument) {
  // Long stretches of irrelevant data must not be buffered.
  std::string doc = "<r><a><ok/><t>x</t>";
  for (int i = 0; i < 1000; ++i) doc += "<junk>filler filler</junk>";
  doc += "</a></r>";
  Result<xpath::Query> query = xpath::ParseQuery("/r/a[ok]/t/text()");
  ASSERT_TRUE(query.ok());
  CollectingSink sink;
  auto engine = XsqEngine::Create(*query, &sink);
  ASSERT_TRUE(engine.ok());
  xml::SaxParser parser(engine->get());
  ASSERT_TRUE(parser.Parse(doc).ok());
  EXPECT_LT((*engine)->memory().peak_bytes(), 100u);
  ASSERT_EQ(sink.items.size(), 1u);
}

TEST(XsqEngineTest, ReusableAcrossDocuments) {
  Result<xpath::Query> query = xpath::ParseQuery("//a/text()");
  ASSERT_TRUE(query.ok());
  CollectingSink sink;
  auto engine = XsqEngine::Create(*query, &sink);
  ASSERT_TRUE(engine.ok());
  for (const char* doc : {"<r><a>1</a></r>", "<r><a>2</a></r>"}) {
    xml::SaxParser parser(engine->get());
    ASSERT_TRUE(parser.Parse(doc).ok());
    ASSERT_TRUE((*engine)->status().ok());
  }
  ASSERT_EQ(sink.items.size(), 2u);
  EXPECT_EQ(sink.items[1], "2");
}

TEST(XsqEngineTest, EmptyResultOnNonMatchingDocument) {
  QueryResult r = RunQ("//nosuch/text()", kFig1);
  EXPECT_TRUE(r.items.empty());
}

TEST(XsqEngineTest, EscapedContentRoundTrips) {
  QueryResult r = RunQ("//a", "<r><a m=\"x&amp;y\">1 &lt; 2</a></r>");
  ASSERT_EQ(r.items.size(), 1u);
  EXPECT_EQ(r.items[0], "<a m=\"x&amp;y\">1 &lt; 2</a>");
}

}  // namespace
}  // namespace xsq::core
