// The pre-SWAR, copying SAX parser, vendored verbatim as the ext_scan
// performance baseline. This is the byte-at-a-time scan loop with
// per-token std::string materialization (owned tag stack, per-attribute
// string copies, text decoded into a std::string) that the production
// parser replaced. It is kept here — not synthesized from the new
// parser's kScalar mode, which shares the zero-copy event path — so the
// ">= 1.5x parse throughput" gate measures the real before/after, scan
// loop and copy discipline together.
//
// The only change from the original: xml::Attribute became a view pair,
// so this parser stores its attribute strings in OwnedAttribute scratch
// and hands the handler a reused vector of views over them. The string
// assignments (the costs being measured) are unchanged.
#ifndef XSQ_BENCH_BASELINE_SAX_PARSER_H_
#define XSQ_BENCH_BASELINE_SAX_PARSER_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "xml/events.h"

namespace xsq::bench::baseline {

class BaselineSaxParser {
 public:
  explicit BaselineSaxParser(xml::SaxHandler* handler) : handler_(handler) {}

  BaselineSaxParser(const BaselineSaxParser&) = delete;
  BaselineSaxParser& operator=(const BaselineSaxParser&) = delete;

  Status Feed(std::string_view chunk);
  Status Finish();
  Status Parse(std::string_view document);
  void Reset();

 private:
  enum class Progress { kOk, kNeedMore };

  Status ParseBuffer(std::string_view data, size_t* consumed, bool at_eof);
  Status HandleMarkup(std::string_view data, size_t* consumed,
                      Progress* progress);
  Status ParseElementTag(std::string_view markup_body, bool self_closing);
  Status ParseEndTag(std::string_view markup_body);
  Status FlushText();
  Status DecodeEntities(std::string_view raw, std::string* out);
  Status ErrorHere(const std::string& message) const;
  void AdvancePosition(std::string_view consumed_text);

  xml::SaxHandler* handler_;
  std::string pending_;            // unconsumed tail from prior Feed
  std::string text_;               // decoded pending character data
  bool has_pending_text_ = false;  // a text run is in progress
  std::vector<std::string> open_elements_;
  std::vector<xml::OwnedAttribute> attributes_;  // scratch, per begin tag
  std::vector<xml::Attribute> attribute_views_;  // reused view vector
  bool seen_root_ = false;
  bool document_begun_ = false;
  bool bom_checked_ = false;
  bool finished_ = false;
  size_t bytes_consumed_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace xsq::bench::baseline

#endif  // XSQ_BENCH_BASELINE_SAX_PARSER_H_
