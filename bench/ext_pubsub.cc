// Extension experiment: standing-query pub/sub — thousands of XPath
// subscriptions matched per single parse (the selective-dissemination
// workload the paper positions XSQ against in Section 1 / Figure 14).
//
// Three claims, each ENFORCED by exit status (any violation exits 1),
// so this binary doubles as a regression gate:
//
//   1. Shared matching beats one-engine-per-query: at Q >= 1000
//      predicate-free subscriptions the registry's publish throughput
//      is at least 5x a baseline that runs one persistent
//      StreamingQuery per subscription per document.
//   2. Skeleton pruning is exact bookkeeping: on a mixed predicate
//      workload every publish reports hpdt_evaluations ==
//      filter_survivors (engines run for survivors, never for pruned
//      subscriptions).
//   3. Zero result diffs: every delivery equals standalone
//      StreamingQuery evaluation on SHAKE / NASA / DBLP documents.
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/strings.h"
#include "core/streaming_query.h"
#include "datagen/generators.h"
#include "fig_util.h"
#include "pubsub/subscription_registry.h"
#include "xpath/ast.h"

namespace xsq::bench {
namespace {

int g_failures = 0;

void Check(bool ok, const char* what) {
  if (!ok) {
    std::printf("FAIL: %s\n", what);
    ++g_failures;
  }
}

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Predicate-free subscriptions over the DBLP vocabulary with heavy
// shared prefixes (the YFilter workload shape).
std::vector<std::string> MakeSubscriptions(size_t n, uint64_t seed) {
  static constexpr const char* kRecords[] = {"article", "inproceedings"};
  static constexpr const char* kFields[] = {"title", "author", "year",
                                            "pages", "booktitle", "journal"};
  SplitMix64 rng(seed);
  std::vector<std::string> subscriptions;
  subscriptions.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::string q = "/dblp/";
    q += kRecords[rng.Below(2)];
    q += rng.Chance(0.3) ? "//" : "/";
    q += kFields[rng.Below(6)];
    if (rng.Chance(0.5)) q += "/text()";
    subscriptions.push_back(std::move(q));
  }
  return subscriptions;
}

// ---------------------------------------------------------------------------
// Claim 1: shared matching vs one-engine-per-query.

void ThroughputScaleUp() {
  std::printf("\n--- Publish throughput: shared parse vs per-query engines\n");
  const size_t doc_budget = static_cast<size_t>(
      400 * BenchScale() < 100 ? 100 : 400 * BenchScale());
  std::vector<std::string> documents;
  documents.reserve(doc_budget);
  size_t total_bytes = 0;
  for (size_t i = 0; i < doc_budget; ++i) {
    documents.push_back(datagen::GenerateDblp(300, i));
    total_bytes += documents.back().size();
  }
  std::printf("%zu documents, %s total (per-Q doc count bounded so the\n"
              "baseline's Q x docs engine runs stay tractable)\n",
              documents.size(), FormatBytes(total_bytes).c_str());

  TablePrinter table({"Subscriptions", "NFA nodes", "Shared docs/s",
                      "Per-engine docs/s", "Speedup", "Items/doc"});
  for (size_t q : {10, 100, 1000}) {
    // The baseline pays Q engine runs per document; cap its document
    // count so the experiment finishes on one core.
    size_t docs = 40000 / q;
    if (docs < 20) docs = 20;
    if (docs > documents.size()) docs = documents.size();
    std::vector<std::string> subscriptions = MakeSubscriptions(q, 42);

    pubsub::SubscriptionRegistry registry;
    for (const std::string& sub : subscriptions) {
      if (!registry.Subscribe(sub).ok()) {
        Check(false, "subscription rejected by the registry");
        return;
      }
    }
    auto shared_start = std::chrono::steady_clock::now();
    size_t shared_items = 0;
    for (size_t d = 0; d < docs; ++d) {
      auto outcome = registry.Publish(documents[d]);
      if (!outcome.ok()) {
        Check(false, "publish failed on a well-formed document");
        return;
      }
      for (const auto& delivery : outcome->deliveries) {
        shared_items += delivery.items.size();
      }
    }
    double shared_seconds = Seconds(shared_start);

    // Baseline: one persistent StreamingQuery per subscription (compiled
    // once, Reset between documents) — every document parsed Q times.
    std::vector<std::unique_ptr<core::StreamingQuery>> engines;
    engines.reserve(q);
    for (const std::string& sub : subscriptions) {
      auto engine = core::StreamingQuery::Open(sub);
      if (!engine.ok()) {
        Check(false, "baseline engine rejected a subscription");
        return;
      }
      engines.push_back(*std::move(engine));
    }
    auto baseline_start = std::chrono::steady_clock::now();
    size_t baseline_items = 0;
    for (size_t d = 0; d < docs; ++d) {
      for (auto& engine : engines) {
        engine->Reset();
        if (!engine->Push(documents[d]).ok() || !engine->Close().ok()) {
          Check(false, "baseline engine failed on a well-formed document");
          return;
        }
        while (engine->NextItem()) ++baseline_items;
      }
    }
    double baseline_seconds = Seconds(baseline_start);

    Check(shared_items == baseline_items,
          "shared and per-engine runs disagree on total item count");
    double shared_rate = static_cast<double>(docs) / shared_seconds;
    double baseline_rate = static_cast<double>(docs) / baseline_seconds;
    double speedup = baseline_seconds / shared_seconds;
    if (q >= 1000) {
      Check(speedup >= 5.0,
            "shared matching is not >= 5x one-engine-per-query at Q >= 1000");
    }
    table.AddRow({std::to_string(q), std::to_string(registry.node_count()),
                  FormatDouble(shared_rate, 0), FormatDouble(baseline_rate, 0),
                  FormatDouble(speedup, 1),
                  FormatDouble(static_cast<double>(shared_items) /
                                   static_cast<double>(docs),
                               2)});
  }
  table.Print();
}

// ---------------------------------------------------------------------------
// Claim 2: hpdt_evaluations == filter_survivors on a mixed workload.

void MixedPredicateWorkload() {
  std::printf("\n--- Mixed predicate workload: skeleton pruning bookkeeping\n");
  pubsub::SubscriptionRegistry registry;
  std::vector<std::string> subscriptions = {
      "//dataset/title/text()",          // predicate-free
      "//field/name/text()",             // predicate-free
      "//dataset[@subject]/title/text()",
      "//dataset[tableHead]/title",
      "//dataset[altname]/title/count()",
      "//zebra[x]/y",                    // skeleton can never match
      "/nope/dataset[title]/other",      // skeleton can never match
  };
  for (int year = 1975; year < 1995; ++year) {
    subscriptions.push_back("//other[year>" + std::to_string(year) +
                            "]/name/text()");
  }
  for (const std::string& sub : subscriptions) {
    if (!registry.Subscribe(sub).ok()) {
      Check(false, "mixed-workload subscription rejected");
      return;
    }
  }
  const size_t docs = static_cast<size_t>(
      100 * BenchScale() < 50 ? 50 : 100 * BenchScale());
  size_t predicate_slots = 0;
  size_t survivors = 0;
  size_t evaluations = 0;
  bool bookkeeping_exact = true;
  for (size_t d = 0; d < docs; ++d) {
    auto outcome = registry.Publish(datagen::GenerateNasa(1000, d));
    if (!outcome.ok()) {
      Check(false, "mixed-workload publish failed");
      return;
    }
    bookkeeping_exact &=
        outcome->hpdt_evaluations == outcome->filter_survivors;
    predicate_slots += outcome->predicate_subs;
    survivors += outcome->filter_survivors;
    evaluations += outcome->hpdt_evaluations;
  }
  Check(bookkeeping_exact,
        "hpdt_evaluations != filter_survivors on some publish");
  Check(survivors < predicate_slots,
        "never-matching skeletons were not pruned by the shared NFA");
  std::printf(
      "%zu documents, %zu subscriptions (%zu predicate-bearing slots "
      "cumulative):\n  %zu engine evaluations for %zu survivors "
      "(%.1f%% of predicate work pruned)\n",
      docs, subscriptions.size(), predicate_slots, evaluations, survivors,
      100.0 * static_cast<double>(predicate_slots - survivors) /
          static_cast<double>(predicate_slots));
}

// ---------------------------------------------------------------------------
// Claim 3: zero diffs against standalone evaluation.

struct StandaloneResult {
  std::vector<std::string> items;
  std::optional<double> aggregate;
  bool is_aggregate = false;
  bool ok = false;
};

StandaloneResult RunStandalone(const std::string& query_text,
                               const std::string& document) {
  StandaloneResult result;
  auto query = core::StreamingQuery::Open(query_text);
  if (!query.ok()) return result;
  if (!(*query)->Push(document).ok() || !(*query)->Close().ok()) {
    return result;
  }
  while (std::optional<std::string> item = (*query)->NextItem()) {
    result.items.push_back(std::move(*item));
  }
  result.aggregate = (*query)->final_aggregate();
  Result<xpath::Query> parsed = xpath::ParseQuery(query_text);
  result.is_aggregate =
      parsed.ok() && xpath::IsAggregation(parsed->output.kind);
  result.ok = true;
  return result;
}

size_t DiffCorpus(const char* name, const std::string& document,
                  const std::vector<std::string>& queries) {
  pubsub::SubscriptionRegistry registry;
  std::vector<uint64_t> ids;
  for (const std::string& query : queries) {
    auto id = registry.Subscribe(query);
    if (!id.ok()) {
      Check(false, "differential subscription rejected");
      return 1;
    }
    ids.push_back(*id);
  }
  auto outcome = registry.Publish(document);
  if (!outcome.ok()) {
    Check(false, "differential publish failed");
    return 1;
  }
  std::map<uint64_t, const pubsub::Delivery*> by_id;
  for (const auto& delivery : outcome->deliveries) {
    by_id[delivery.subscription_id] = &delivery;
  }
  size_t diffs = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    StandaloneResult expected = RunStandalone(queries[i], document);
    if (!expected.ok) {
      ++diffs;
      continue;
    }
    auto it = by_id.find(ids[i]);
    if (it == by_id.end()) {
      // Legal only for an item query with no matches.
      if (expected.is_aggregate || !expected.items.empty()) ++diffs;
      continue;
    }
    const pubsub::Delivery& delivery = *it->second;
    if (expected.is_aggregate) {
      if (!delivery.is_aggregate ||
          delivery.aggregate != expected.aggregate) {
        ++diffs;
      }
    } else if (delivery.is_aggregate || delivery.items != expected.items) {
      ++diffs;
    }
  }
  std::printf("  %-6s %2zu queries, %s document: %zu diffs\n", name,
              queries.size(), FormatBytes(document.size()).c_str(), diffs);
  return diffs;
}

void DifferentialSweep() {
  std::printf("\n--- Differential: pub/sub deliveries vs standalone engines\n");
  size_t bytes = ScaledBytes(32 * 1024);
  size_t diffs = 0;
  diffs += DiffCorpus("SHAKE", datagen::GenerateShake(bytes, 7),
                      {"/PLAY/ACT/SCENE/SPEECH/SPEAKER/text()",
                       "//ACT//SPEAKER/text()",
                       "/PLAY/ACT/SCENE/SPEECH[LINE%love]/SPEAKER/text()",
                       "//SPEECH/count()", "//SCENE/TITLE"});
  diffs += DiffCorpus("NASA", datagen::GenerateNasa(bytes, 11),
                      {"//dataset/title/text()", "//other[year>1990]/name",
                       "//reference/count()", "//field/name/text()",
                       "//dataset[tableHead]/title/text()"});
  diffs += DiffCorpus("DBLP", datagen::GenerateDblp(bytes, 13),
                      {"//article/author/text()", "//inproceedings[author]/title",
                       "//inproceedings/year/count()",
                       "/dblp/article[year>1995]/title", "//article/@key"});
  Check(diffs == 0, "pub/sub deliveries diverged from standalone results");
}

int Main() {
  PrintHeader("Extension: standing-query pub/sub",
              "Q subscriptions matched per single parse vs per-query engines");
  ThroughputScaleUp();
  MixedPredicateWorkload();
  DifferentialSweep();
  if (g_failures > 0) {
    std::printf("\n%d enforced claim(s) FAILED\n", g_failures);
    return 1;
  }
  std::printf(
      "\nAll enforced claims hold: >=5x shared-matching speedup at Q=1000,\n"
      "hpdt_evaluations == filter_survivors throughout, zero result diffs.\n");
  return 0;
}

}  // namespace
}  // namespace xsq::bench

int main() { return xsq::bench::Main(); }
