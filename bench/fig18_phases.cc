// Figure 18: where the time goes - query compilation ("building"),
// preprocessing (DOM construction for non-streaming systems), and query
// processing - on the SHAKE dataset with
// /PLAY/ACT/SCENE/SPEECH/SPEAKER/text(). PureParser rows bound the
// attainable streaming time.
#include <string>

#include "datagen/generators.h"
#include "fig_util.h"

namespace xsq::bench {
namespace {

int Main() {
  PrintHeader("Figure 18", "per-phase processing time, SHAKE");
  const std::string xml =
      datagen::GenerateShake(ScaledBytes(8u << 20), 2003);
  const char* query = "/PLAY/ACT/SCENE/SPEECH/SPEAKER/text()";

  TablePrinter table({"System", "Build (ms)", "Preprocess (ms)",
                      "Query (ms)", "Total (ms)"});
  const System systems[] = {System::kPureParser, System::kXsqNc,
                            System::kXsqF,       System::kLazyDfa,
                            System::kDom,        System::kNaive,
                            System::kTextIndex};
  for (System system : systems) {
    Result<RunMeasurement> m = RunBest(
        system, system == System::kPureParser ? "" : query, xml);
    if (!m.ok()) return 1;
    if (!m->supported) {
      table.AddRow({SystemName(system), "-", "-", "-",
                    "(cannot handle the query)"});
      continue;
    }
    auto ms = [](double seconds) { return FormatDouble(seconds * 1e3, 2); };
    table.AddRow({SystemName(system), ms(m->compile_seconds),
                  ms(m->preprocess_seconds), ms(m->query_seconds),
                  ms(m->total_seconds())});
  }
  table.Print();
  std::printf(
      "\nPaper shape check (Fig. 18): streaming systems spend almost\n"
      "everything in the query phase and start returning results\n"
      "immediately; the DOM system pays a large preprocessing phase\n"
      "before the first result. Query compilation is negligible for\n"
      "all systems.\n");
  return 0;
}

}  // namespace
}  // namespace xsq::bench

int main() { return xsq::bench::Main(); }
