// Extension experiment: the cluster front tier (src/cluster/), enforced
// by exit status against real xsqd shard processes (argv[1] names the
// binary; the ctest registration passes $<TARGET_FILE:xsqd>).
//
//   (a) transcript parity: a client speaking to the router over a
//       3-shard cluster reads the exact bytes a single-node xsqd would
//       have answered — RECORD/OPEN/RUNCACHED/CLOSE/EVICT, including
//       the error replies;
//   (b) throughput scaling: the aggregate RUNCACHED replay rate of
//       3 shards is >= 1.5x one shard's. Hardware-gated: the bound is
//       enforced only when hardware_concurrency >= 4 (on smaller boxes
//       the ratio is reported and the leg passes as a skip);
//   (c) scatter-gather exactness: the router's merged cluster view
//       equals the sum of per-shard scrapes — summed STATS counters
//       and the merged xsq_tape_replay_us histogram count;
//   (d) SIGKILL recovery: after a shard is killed -9, every re-issued
//       idempotent request succeeds via failover, the dead shard's
//       keys remap within one probe pass (fail_threshold = 1), the
//       survivors' keys do not move, and every document replays with
//       the same bytes as before the kill.
//
// Any violated bound fails the run (exit status 1).
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/router.h"
#include "datagen/generators.h"
#include "fig_util.h"
#include "net/client.h"
#include "net/line_protocol.h"
#include "obs/exposition.h"
#include "service/query_service.h"
#include "service/stats.h"

namespace xsq::bench {
namespace {

using cluster::Router;
using cluster::RouterConfig;
using cluster::ShardAddress;
using cluster::ShardHealth;
using net::LineProtocol;
using service::QueryService;
using service::ServiceConfig;
using service::StatsSnapshot;

constexpr const char* kQuery = "/dblp/article/title/text()";

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// One forked xsqd: --listen=0, stdin parked on /dev/null (the daemon
// serves sockets after stdin EOF, but a closed stdin would still race
// startup), stdout piped back so the parent can read the LISTENING
// banner. Kill(SIGKILL) is leg (d)'s failure injection.
class ShardProcess {
 public:
  bool Start(const std::string& binary) {
    int pipefd[2];
    if (::pipe(pipefd) != 0) return false;
    pid_ = ::fork();
    if (pid_ < 0) return false;
    if (pid_ == 0) {
      ::dup2(pipefd[1], STDOUT_FILENO);
      ::close(pipefd[0]);
      ::close(pipefd[1]);
      int devnull = ::open("/dev/null", O_RDONLY);
      if (devnull >= 0) ::dup2(devnull, STDIN_FILENO);
      ::execl(binary.c_str(), binary.c_str(), "--listen=0", "--workers=2",
              static_cast<char*>(nullptr));
      std::_Exit(127);
    }
    ::close(pipefd[1]);
    // Read the banner a byte at a time; the pipe stays open for the
    // daemon's lifetime, so a buffered reader would block forever.
    std::string banner;
    char ch = 0;
    while (banner.find('\n') == std::string::npos &&
           ::read(pipefd[0], &ch, 1) == 1) {
      banner.push_back(ch);
    }
    out_fd_ = pipefd[0];
    unsigned port = 0;
    if (std::sscanf(banner.c_str(), "LISTENING %u", &port) != 1 ||
        port == 0) {
      Kill(SIGKILL);
      return false;
    }
    port_ = static_cast<uint16_t>(port);
    return true;
  }

  void Kill(int sig) {
    if (pid_ > 0) {
      ::kill(pid_, sig);
      ::waitpid(pid_, nullptr, 0);
      pid_ = -1;
    }
    if (out_fd_ >= 0) {
      ::close(out_fd_);
      out_fd_ = -1;
    }
  }

  ~ShardProcess() { Kill(SIGTERM); }

  uint16_t port() const { return port_; }

 private:
  pid_t pid_ = -1;
  int out_fd_ = -1;
  uint16_t port_ = 0;
};

struct Cluster {
  std::vector<std::unique_ptr<ShardProcess>> shards;
  std::unique_ptr<Router> router;

  bool Start(const std::string& binary, size_t n) {
    RouterConfig config;
    for (size_t i = 0; i < n; ++i) {
      auto shard = std::make_unique<ShardProcess>();
      if (!shard->Start(binary)) {
        std::fprintf(stderr, "failed to start shard %zu\n", i);
        return false;
      }
      config.shards.push_back(ShardAddress{"127.0.0.1", shard->port()});
      shards.push_back(std::move(shard));
    }
    config.start_prober = false;  // deterministic: health moves on ProbeNow
    config.probe.fail_threshold = 1;
    config.backend.connect_timeout_ms = 500;
    config.backend.client_max_retries = 0;  // failover is the router's job
    auto created = Router::Create(std::move(config));
    if (!created.ok()) {
      std::fprintf(stderr, "router init failed: %s\n",
                   created.status().ToString().c_str());
      return false;
    }
    router = *std::move(created);
    router->ProbeNow();
    return true;
  }
};

// Runs `commands` through a fresh router connection (one handler) and
// returns the per-command reply blocks.
std::vector<std::string> RunScript(Router* router,
                                   const std::vector<std::string>& commands) {
  auto handler = router->MakeHandler();
  std::vector<std::string> replies;
  replies.reserve(commands.size());
  for (const std::string& command : commands) {
    std::string out;
    handler->HandleLine(command, &out);
    replies.push_back(std::move(out));
  }
  return replies;
}

size_t CountItems(const std::vector<std::string>& replies) {
  size_t items = 0;
  for (const std::string& block : replies) {
    for (size_t at = 0; (at = block.find("ITEM ", at)) != std::string::npos;
         at += 5) {
      if (at == 0 || block[at - 1] == '\n') ++items;
    }
  }
  return items;
}

// ------------------------------------------------- (a) transcript parity

int TranscriptParity(Cluster* cluster, const std::vector<std::string>& docs,
                     std::vector<std::string>* cached_blocks, bool* match) {
  std::printf("\n(a) Router transcript vs single-node xsqd\n");
  std::vector<std::string> commands;
  for (size_t i = 0; i < docs.size(); ++i) {
    commands.push_back("RECORD doc" + std::to_string(i) + " " +
                       LineProtocol::Escape(docs[i]));
  }
  commands.push_back(std::string("OPEN ") + kQuery);
  for (size_t i = 0; i < docs.size(); ++i) {
    commands.push_back("RUNCACHED 1 doc" + std::to_string(i));
  }
  commands.push_back("CLOSE 1");
  commands.push_back("EVICT doc0");
  commands.push_back("RUNCACHED 2 doc0");  // error parity: unknown session
  commands.push_back(std::string("OPEN ") + kQuery);
  commands.push_back("RUNCACHED 2 doc0");  // error parity: evicted document
  commands.push_back("CLOSE 2");

  std::vector<std::string> expected;
  {
    QueryService service(ServiceConfig{});
    LineProtocol local(&service);
    for (const std::string& command : commands) {
      std::string out;
      local.HandleLine(command, &out);
      expected.push_back(std::move(out));
    }
    local.ReleaseAll();
    service.Shutdown();
  }
  std::vector<std::string> actual = RunScript(cluster->router.get(), commands);

  size_t first_diff = commands.size();
  for (size_t i = 0; i < commands.size(); ++i) {
    if (expected[i] != actual[i]) {
      first_diff = i;
      break;
    }
  }
  *match = first_diff == commands.size();
  // Keep the per-document RUNCACHED blocks: leg (d) re-checks them
  // byte-for-byte after the SIGKILL recovery. (The reply block carries
  // no session id, so it is comparable across sessions.)
  cached_blocks->assign(expected.begin() + docs.size() + 1,
                        expected.begin() + docs.size() + 1 + docs.size());

  TablePrinter table({"Quantity", "Value"});
  table.AddRow({"commands", std::to_string(commands.size())});
  table.AddRow({"items via router", std::to_string(CountItems(actual))});
  table.AddRow({"items single node", std::to_string(CountItems(expected))});
  table.AddRow({"first divergence",
                *match ? "none" : commands[first_diff]});
  table.Print();
  if (!*match) {
    std::fprintf(stderr, "router:\n%.400s\nsingle node:\n%.400s\n",
                 actual[first_diff].c_str(), expected[first_diff].c_str());
  }
  std::printf("bound: byte-identical transcript -> %s\n",
              *match ? "PASS" : "FAIL");
  return 0;
}

// ------------------------------------------------ (b) throughput scaling

// Aggregate replay rate: `kThreads` concurrent router connections, each
// with one session, replaying the recorded corpus round-robin.
double ReplayRate(Router* router, size_t docs, int rounds, bool* ok) {
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  std::vector<char> success(kThreads, 0);
  auto start = std::chrono::steady_clock::now();
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto handler = router->MakeHandler();
      std::string out;
      if (!handler->HandleLine(std::string("OPEN ") + kQuery, &out) ||
          out.rfind("OK ", 0) != 0) {
        return;
      }
      std::string id = out.substr(3, out.find('\n') - 3);
      for (int r = 0; r < rounds; ++r) {
        for (size_t d = 0; d < docs; ++d) {
          std::string reply;
          handler->HandleLine(
              "RUNCACHED " + id + " doc" + std::to_string(d), &reply);
          if (reply.find("\nOK\n") == std::string::npos &&
              reply.rfind("OK\n", 0) != 0) {
            return;
          }
        }
      }
      std::string closed;
      handler->HandleLine("CLOSE " + id, &closed);
      success[t] = 1;
    });
  }
  for (std::thread& thread : threads) thread.join();
  double elapsed = Seconds(start);
  *ok = true;
  for (char s : success) *ok = *ok && s != 0;
  return static_cast<double>(kThreads) * rounds * static_cast<double>(docs) /
         elapsed;
}

int ThroughputScaling(const std::string& binary, Cluster* three,
                      const std::vector<std::string>& docs, bool* scales) {
  std::printf("\n(b) Aggregate replay throughput, 3 shards vs 1\n");
  Cluster one;
  if (!one.Start(binary, 1)) return 1;
  std::vector<std::string> records;
  for (size_t i = 0; i < docs.size(); ++i) {
    records.push_back("RECORD doc" + std::to_string(i) + " " +
                      LineProtocol::Escape(docs[i]));
  }
  // (Re-)record everywhere: leg (a) evicted doc0 from the 3-shard
  // cluster, and the 1-shard comparator starts empty.
  for (const std::string& block : RunScript(three->router.get(), records)) {
    if (block.rfind("OK ", 0) != 0) return 1;
  }
  for (const std::string& block : RunScript(one.router.get(), records)) {
    if (block.rfind("OK ", 0) != 0) return 1;
  }

  constexpr int kRounds = 6;
  bool ok_one = false;
  bool ok_three = false;
  ReplayRate(one.router.get(), docs.size(), 1, &ok_one);  // warm up
  double rate_one = ReplayRate(one.router.get(), docs.size(), kRounds,
                               &ok_one);
  ReplayRate(three->router.get(), docs.size(), 1, &ok_three);
  double rate_three = ReplayRate(three->router.get(), docs.size(), kRounds,
                                 &ok_three);
  double ratio = rate_one > 0.0 ? rate_three / rate_one : 0.0;

  const unsigned cores = std::thread::hardware_concurrency();
  const bool enforce = cores >= 4;
  *scales = ok_one && ok_three && (!enforce || ratio >= 1.5);

  TablePrinter table({"Quantity", "Value"});
  table.AddRow({"hardware threads", std::to_string(cores)});
  table.AddRow({"1-shard replays/s", FormatDouble(rate_one, 1)});
  table.AddRow({"3-shard replays/s", FormatDouble(rate_three, 1)});
  table.AddRow({"ratio", FormatDouble(ratio, 2)});
  table.Print();
  if (enforce) {
    std::printf("bound: ratio >= 1.5 with >= 4 cores -> %s\n",
                *scales ? "PASS" : "FAIL");
  } else {
    std::printf(
        "bound: skipped (needs >= 4 hardware threads, have %u); ratio "
        "reported above\n",
        cores);
  }
  return 0;
}

// -------------------------------------------- (c) scatter-gather exactness

int ScatterExactness(Cluster* cluster, bool* exact) {
  std::printf("\n(c) Merged cluster view vs per-shard scrapes\n");
  // Quiesced cluster: the prober is manual and no traffic runs between
  // the direct scrapes and the router's scatter, so every counter the
  // scrapes themselves do not move must agree exactly.
  uint64_t sessions = 0;
  uint64_t replays = 0;
  uint64_t items = 0;
  uint64_t hist_count = 0;
  for (const auto& shard : cluster->shards) {
    net::ClientConfig config;
    config.port = shard->port();
    net::Client direct(config);
    auto stats = direct.Request("STATS");
    if (!stats.ok() || !stats->status.ok()) return 1;
    std::string text;
    for (const std::string& line : stats->lines) {
      if (line.rfind("STAT ", 0) == 0) text += line.substr(5) + "\n";
    }
    auto snap = StatsSnapshot::Parse(text);
    if (!snap.ok()) return 1;
    sessions += snap->sessions_opened;
    replays += snap->tape_replays;
    items += snap->items_emitted;

    auto metrics = direct.Request("METRICS");
    if (!metrics.ok() || !metrics->status.ok()) return 1;
    std::string exposition;
    for (const std::string& line : metrics->lines) {
      if (line.rfind("METRIC ", 0) == 0) exposition += line.substr(7) + "\n";
    }
    auto parsed = obs::Exposition::Parse(exposition);
    if (!parsed.ok()) return 1;
    const obs::ExpositionSeries* series =
        parsed->Find("xsq_tape_replay_us");
    if (series != nullptr) hist_count += series->hist.count;
  }

  StatsSnapshot merged = cluster->router->ClusterStats();
  obs::Exposition cluster_metrics = cluster->router->ClusterMetrics();
  const obs::ExpositionSeries* merged_hist =
      cluster_metrics.Find("xsq_tape_replay_us");
  uint64_t merged_count = merged_hist != nullptr ? merged_hist->hist.count : 0;

  *exact = merged.sessions_opened == sessions &&
           merged.tape_replays == replays && merged.items_emitted == items &&
           merged_count == hist_count && hist_count == replays &&
           cluster->router->own_counters().scatter_failures_total == 0;

  TablePrinter table({"Quantity", "Shard sum", "Cluster view"});
  table.AddRow({"sessions_opened", std::to_string(sessions),
                std::to_string(merged.sessions_opened)});
  table.AddRow({"tape_replays", std::to_string(replays),
                std::to_string(merged.tape_replays)});
  table.AddRow({"items_emitted", std::to_string(items),
                std::to_string(merged.items_emitted)});
  table.AddRow({"replay histogram count", std::to_string(hist_count),
                std::to_string(merged_count)});
  table.Print();
  std::printf("bound: merged view == sum of scrapes -> %s\n",
              *exact ? "PASS" : "FAIL");
  return 0;
}

// ------------------------------------------------- (d) SIGKILL recovery

int KillRecovery(Cluster* cluster, const std::vector<std::string>& docs,
                 const std::vector<std::string>& cached_blocks,
                 bool* recovers) {
  std::printf("\n(d) SIGKILL one shard: failover, remap, replay parity\n");
  Router* router = cluster->router.get();

  std::map<size_t, std::vector<size_t>> by_owner;
  std::vector<size_t> owner_before(docs.size());
  for (size_t i = 0; i < docs.size(); ++i) {
    auto owner = router->OwnerOf("doc" + std::to_string(i));
    if (!owner.has_value()) return 1;
    owner_before[i] = *owner;
    by_owner[*owner].push_back(i);
  }
  // Kill the owner of the most keys: the worst case for remapping.
  size_t victim = by_owner.begin()->first;
  for (const auto& [shard, keys] : by_owner) {
    if (keys.size() > by_owner[victim].size()) victim = shard;
  }
  const size_t victim_keys = by_owner[victim].size();
  cluster->shards[victim]->Kill(SIGKILL);

  // Every re-issued idempotent request must succeed: the ring owner is
  // dead, so RECORD fails over to the next live owner.
  const uint64_t failovers_before = router->own_counters().failovers_total;
  size_t rerecorded = 0;
  {
    auto handler = router->MakeHandler();
    for (size_t i : by_owner[victim]) {
      std::string out;
      handler->HandleLine("RECORD doc" + std::to_string(i) + " " +
                              LineProtocol::Escape(docs[i]),
                          &out);
      if (out.rfind("OK ", 0) == 0) ++rerecorded;
    }
  }
  const uint64_t failovers =
      router->own_counters().failovers_total - failovers_before;

  // One probe pass (fail_threshold = 1) must mark the shard dead and
  // remap exactly its keys.
  router->ProbeNow();
  bool marked_dead = router->shard_health(victim) == ShardHealth::kDead;
  bool remapped = true;
  bool survivors_stable = true;
  for (size_t i = 0; i < docs.size(); ++i) {
    auto owner = router->OwnerOf("doc" + std::to_string(i));
    if (!owner.has_value()) {
      remapped = false;
      continue;
    }
    if (owner_before[i] == victim) {
      remapped = remapped && *owner != victim;
    } else {
      survivors_stable = survivors_stable && *owner == owner_before[i];
    }
  }

  // And the data answers exactly as before the kill.
  std::vector<std::string> commands;
  commands.push_back(std::string("OPEN ") + kQuery);
  for (size_t i = 0; i < docs.size(); ++i) {
    commands.push_back("RUNCACHED <id> doc" + std::to_string(i));
  }
  auto handler = router->MakeHandler();
  std::string opened;
  handler->HandleLine(commands[0], &opened);
  if (opened.rfind("OK ", 0) != 0) return 1;
  std::string id = opened.substr(3, opened.find('\n') - 3);
  size_t replay_matches = 0;
  for (size_t i = 0; i < docs.size(); ++i) {
    std::string reply;
    handler->HandleLine("RUNCACHED " + id + " doc" + std::to_string(i),
                        &reply);
    if (reply == cached_blocks[i]) ++replay_matches;
  }
  std::string closed;
  handler->HandleLine("CLOSE " + id, &closed);

  *recovers = rerecorded == victim_keys && marked_dead && remapped &&
              survivors_stable && replay_matches == docs.size();

  TablePrinter table({"Quantity", "Value"});
  table.AddRow({"victim shard", std::to_string(victim)});
  table.AddRow({"victim's keys", std::to_string(victim_keys)});
  table.AddRow({"re-records succeeded", std::to_string(rerecorded)});
  table.AddRow({"failovers counted", std::to_string(failovers)});
  table.AddRow({"dead after one probe", marked_dead ? "yes" : "no"});
  table.AddRow({"keys remapped / stable",
                std::string(remapped ? "yes" : "no") + " / " +
                    (survivors_stable ? "yes" : "no")});
  table.AddRow({"replay blocks identical",
                std::to_string(replay_matches) + "/" +
                    std::to_string(docs.size())});
  table.Print();
  std::printf(
      "bound: every retried request succeeds, remap within one probe "
      "pass, byte-identical replays -> %s\n",
      *recovers ? "PASS" : "FAIL");
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <path-to-xsqd-binary>\n", argv[0]);
    return 2;
  }
  PrintHeader("Extension: cluster",
              "router transcript parity + 3v1 scaling + scatter-gather "
              "exactness + SIGKILL recovery");
  std::vector<std::string> docs;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    docs.push_back(datagen::GenerateDblp(ScaledBytes(512u << 10), seed));
  }

  Cluster three;
  if (!three.Start(argv[1], 3)) return 1;

  bool parity = false;
  bool scales = false;
  bool exact = false;
  bool recovers = false;
  std::vector<std::string> cached_blocks;
  if (TranscriptParity(&three, docs, &cached_blocks, &parity) != 0) return 1;
  if (ThroughputScaling(argv[1], &three, docs, &scales) != 0) return 1;
  if (ScatterExactness(&three, &exact) != 0) return 1;
  if (KillRecovery(&three, docs, cached_blocks, &recovers) != 0) return 1;

  std::printf(
      "\nExpected shape: the router is invisible to clients (byte-identical\n"
      "transcripts), aggregate replay throughput scales with shards when\n"
      "the hardware can parallelize, the merged observability view is the\n"
      "exact sum of per-shard scrapes, and a SIGKILLed shard costs one\n"
      "probe interval of remapping with zero lost idempotent requests.\n");
  return parity && scales && exact && recovers ? 0 : 1;
}

}  // namespace
}  // namespace xsq::bench

int main(int argc, char** argv) { return xsq::bench::Main(argc, argv); }
