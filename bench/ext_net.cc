// Extension experiment: network front-end guarantees, enforced by exit
// status. The TCP serving path (src/net/) promises that
//
//   (a) a connection abandoned mid-query has its evaluation cancelled
//       promptly: the engine-side stop is bounded by 2x the
//       cancellation sampling interval (CancelToken's grain, in SAX
//       events), and the end-to-end reclaim — disconnect propagation
//       through the poll thread plus the engine stop — completes in a
//       small fraction of what the full evaluation would have cost;
//   (b) GET /metrics served over HTTP/1.0 on the protocol port is the
//       same exposition as the METRICS verb (identical metric-name
//       sequence; values may move between the two scrapes);
//   (c) accept-side load shedding is lossless for clients that retry:
//       under deliberate connection starvation every net::Client with
//       backoff retries eventually succeeds, while the shed counter
//       records the turned-away attempts.
//
// Any violated bound fails the run (exit status 1).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/cancel_token.h"
#include "datagen/generators.h"
#include "fig_util.h"
#include "net/client.h"
#include "net/line_protocol.h"
#include "net/server.h"
#include "service/query_service.h"
#include "tape/recorder.h"

namespace xsq::bench {
namespace {

using net::Client;
using net::ClientConfig;
using net::LineProtocol;
using net::Server;
using net::ServerConfig;
using service::QueryService;
using service::ServiceConfig;

constexpr const char* kQuery = "/dblp/article/title/text()";
constexpr size_t kChunkBytes = 256 * 1024;  // per PUSH line

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Minimal blocking socket for fault-shaped interactions (net::Client
// deliberately cannot vanish mid-request).
class RawConn {
 public:
  explicit RawConn(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ok_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
          0;
    timeval tv{30, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  ~RawConn() { Close(); }
  bool ok() const { return ok_; }
  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  bool SendAll(std::string_view data) {
    size_t sent = 0;
    while (sent < data.size()) {
      ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                         MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }
  std::string ReadLines(size_t lines) {
    std::string out;
    size_t seen = 0;
    char buf[8192];
    while (seen < lines) {
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) break;
      for (ssize_t i = 0; i < n; ++i) seen += buf[i] == '\n';
      out.append(buf, static_cast<size_t>(n));
    }
    return out;
  }
  std::string ReadAll() {
    std::string out;
    char buf[8192];
    for (;;) {
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    return out;
  }

 private:
  int fd_ = -1;
  bool ok_ = false;
};

// The wire form of one document evaluation on an already-open session:
// the document as escaped PUSH chunks, then CLOSE. `chunks` returns
// the PUSH count.
std::string WireDocument(const std::string& doc, const std::string& id,
                         size_t* chunks) {
  std::string wire;
  *chunks = 0;
  for (size_t pos = 0; pos < doc.size(); pos += kChunkBytes) {
    std::string_view chunk(doc.data() + pos,
                           std::min(kChunkBytes, doc.size() - pos));
    wire += "PUSH " + id + " " + LineProtocol::Escape(chunk) + "\n";
    ++*chunks;
  }
  wire += "CLOSE " + id + "\n";
  return wire;
}

// OPEN on a fresh raw connection; returns the session id ("" on error).
std::string OpenSession(RawConn* conn) {
  if (!conn->SendAll("OPEN " + std::string(kQuery) + "\n")) return "";
  std::string ack = conn->ReadLines(1);
  if (ack.rfind("OK ", 0) != 0) return "";
  return ack.substr(3, ack.find('\n') - 3);
}

template <typename Predicate>
bool WaitFor(Predicate predicate, int timeout_ms) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return predicate();
}

// ------------------------------------------------------- (a) cancel bound

int DisconnectCancelLatency(const std::string& doc, bool* within_bound) {
  std::printf("\n(a) Disconnect-to-cancel latency on a %s document\n",
              FormatBytes(doc.size()).c_str());

  ServiceConfig service_config;
  service_config.num_workers = 2;
  QueryService service(service_config);
  ServerConfig server_config;
  auto created = Server::Create(&service, server_config);
  if (!created.ok()) return 1;
  std::unique_ptr<Server> server = *std::move(created);

  // Event count of the document, to convert the sampling interval from
  // events into wall-clock time at this run's throughput.
  auto tape = tape::RecordDocument(doc);
  if (!tape.ok()) return 1;
  const uint64_t events = tape->event_count();

  // Baseline: the full evaluation, answered and read to completion.
  double full_seconds = 0.0;
  size_t chunks = 0;
  {
    RawConn conn(server->port());
    if (!conn.ok()) return 1;
    std::string id = OpenSession(&conn);
    if (id.empty()) return 1;
    const std::string wire = WireDocument(doc, id, &chunks);
    auto start = std::chrono::steady_clock::now();
    if (!conn.SendAll(wire)) return 1;
    std::string all = conn.ReadLines(chunks);  // the PUSH acks
    conn.SendAll("QUIT\n");
    all += conn.ReadAll();  // ITEMs + CLOSE OK + QUIT OK, until EOF
    full_seconds = Seconds(start);
    if (all.rfind("ERR", 0) == 0 || all.find("\nERR") != std::string::npos) {
      std::fprintf(stderr, "baseline evaluation failed:\n%s\n",
                   all.substr(0, 400).c_str());
      return 1;
    }
  }

  // Propagation floor: disconnect with the session idle — no engine
  // work in flight — measures the poll-thread wake + teardown +
  // release path alone.
  const uint64_t cancels_before_idle = service.stats().disconnect_cancels;
  double idle_reclaim_seconds = 0.0;
  {
    RawConn conn(server->port());
    if (!conn.ok()) return 1;
    if (!conn.SendAll("OPEN " + std::string(kQuery) + "\n")) return 1;
    conn.ReadLines(1);
    auto start = std::chrono::steady_clock::now();
    conn.Close();
    if (!WaitFor([&] { return service.active_sessions() == 0; }, 5000)) {
      std::fprintf(stderr, "idle session never reclaimed\n");
      return 1;
    }
    idle_reclaim_seconds = Seconds(start);
  }

  // Abandoned run: send the whole evaluation, wait until the service is
  // verifiably mid-document (some chunks evaluated, several still
  // queued), then vanish. The poll thread must cancel the in-flight
  // work and the session must be reclaimed without the evaluation
  // running out. The disconnect can race past the evaluation's tail,
  // so the run retries until the cancel demonstrably landed mid-work.
  double abandoned_seconds = 0.0;
  bool was_cancelled = false;
  constexpr int kMaxAttempts = 5;
  for (int attempt = 0; attempt < kMaxAttempts && !was_cancelled; ++attempt) {
    const uint64_t cancelled_before = service.stats().cancelled;
    const uint64_t processed_before = service.stats().chunks_processed;
    RawConn conn(server->port());
    if (!conn.ok()) return 1;
    std::string id = OpenSession(&conn);
    if (id.empty()) return 1;
    size_t n = 0;
    if (!conn.SendAll(WireDocument(doc, id, &n))) return 1;
    // Mid-document: at least one chunk evaluated, at least a quarter
    // still unevaluated. If the evaluation outruns us, retry.
    bool mid_stream = WaitFor(
        [&] {
          uint64_t done = service.stats().chunks_processed - processed_before;
          return done >= 1;
        },
        5000);
    mid_stream = mid_stream &&
                 service.stats().chunks_processed - processed_before <
                     n - n / 4;
    auto start = std::chrono::steady_clock::now();
    conn.Close();
    if (!WaitFor([&] { return service.active_sessions() == 0; }, 10000)) {
      std::fprintf(stderr, "abandoned session never reclaimed\n");
      return 1;
    }
    abandoned_seconds = Seconds(start);
    was_cancelled =
        mid_stream && service.stats().cancelled > cancelled_before;
  }
  if (service.stats().disconnect_cancels <= cancels_before_idle) {
    std::fprintf(stderr, "disconnect cancels were not counted\n");
    return 1;
  }

  // Bound: the engine-side stop is <= 2x the sampling interval
  // (ext_resilience leg (b) enforces that at event granularity); here
  // the end-to-end reclaim must fit the propagation floor plus the
  // interval converted to wall clock at this run's event rate, plus a
  // scheduling allowance for the worker thread handing back control —
  // and, the actual robustness claim, far under the full evaluation.
  const uint32_t interval = core::CancelToken::kCheckIntervalEvents;
  const double seconds_per_event = full_seconds / static_cast<double>(events);
  const double interval_seconds = interval * seconds_per_event;
  constexpr double kSchedulingAllowance = 0.025;  // 25ms
  const double bound =
      idle_reclaim_seconds + 2.0 * interval_seconds + kSchedulingAllowance;
  *within_bound = was_cancelled && abandoned_seconds <= bound &&
                  abandoned_seconds < full_seconds * 0.5;

  TablePrinter table({"Quantity", "Value"});
  table.AddRow({"document events", std::to_string(events)});
  table.AddRow({"full evaluation (ms)", FormatDouble(full_seconds * 1e3, 1)});
  table.AddRow({"sampling interval (events)", std::to_string(interval)});
  table.AddRow(
      {"2x interval, wall clock (us)", FormatDouble(2e6 * interval_seconds, 2)});
  table.AddRow({"idle reclaim floor (ms)",
                FormatDouble(idle_reclaim_seconds * 1e3, 2)});
  table.AddRow({"abandoned reclaim (ms)",
                FormatDouble(abandoned_seconds * 1e3, 2)});
  table.AddRow({"cancelled via disconnect", was_cancelled ? "yes" : "no"});
  table.Print();
  std::printf(
      "bound: reclaim <= floor + 2x interval + 25ms sched (%.1fms), and < "
      "50%% of full -> %s\n",
      bound * 1e3, *within_bound ? "PASS" : "FAIL");

  server->Stop();
  service.Shutdown();
  return 0;
}

// ------------------------------------------- (b) scrape path equivalence

// The metric-name sequence (name plus label set, the part dashboards
// key on) must be identical between the METRICS verb and GET /metrics;
// values may move between the two scrapes.
std::vector<std::string> MetricNames(const std::vector<std::string>& lines) {
  std::vector<std::string> names;
  for (const std::string& line : lines) {
    if (line.empty()) continue;
    size_t space = line.find(' ');
    std::string head = line.substr(0, space);
    if (head == "#") {
      // Comment lines (# HELP / # TYPE / # exemplar) carry no values
      // that move between back-to-back scrapes: compare them whole.
      names.push_back(line);
    } else {
      names.push_back(head);
    }
  }
  return names;
}

int ScrapeEquivalence(bool* equivalent) {
  std::printf("\n(b) GET /metrics vs METRICS verb\n");
  ServiceConfig service_config;
  QueryService service(service_config);
  auto created = Server::Create(&service, ServerConfig());
  if (!created.ok()) return 1;
  std::unique_ptr<Server> server = *std::move(created);

  // Populate both engines' series and the exemplar store.
  ClientConfig client_config;
  client_config.port = server->port();
  Client client(client_config);
  for (const char* query : {"/r/a/text()", "//a/text()"}) {
    auto open = client.Request(std::string("OPEN ") + query);
    if (!open.ok() || !open->status.ok()) return 1;
    client.Request("PUSH " + open->ok_payload + " <r><a>v</a></r>");
    client.Request("CLOSE " + open->ok_payload);
  }

  auto verb = client.Request("METRICS");
  if (!verb.ok() || !verb->status.ok()) return 1;
  std::vector<std::string> verb_lines;
  for (const std::string& line : verb->lines) {
    if (line.rfind("METRIC ", 0) != 0) return 1;
    verb_lines.push_back(line.substr(7));
  }

  RawConn conn(server->port());
  if (!conn.ok()) return 1;
  if (!conn.SendAll("GET /metrics HTTP/1.0\r\n\r\n")) return 1;
  std::string response = conn.ReadAll();
  size_t body_at = response.find("\r\n\r\n");
  if (response.rfind("HTTP/1.0 200", 0) != 0 ||
      body_at == std::string::npos) {
    std::fprintf(stderr, "bad HTTP response\n");
    return 1;
  }
  std::vector<std::string> http_lines;
  for (size_t begin = body_at + 4; begin < response.size();) {
    size_t end = response.find('\n', begin);
    if (end == std::string::npos) end = response.size();
    http_lines.push_back(response.substr(begin, end - begin));
    begin = end + 1;
  }
  if (!http_lines.empty() && http_lines.back().empty()) {
    http_lines.pop_back();
  }

  std::vector<std::string> verb_names = MetricNames(verb_lines);
  std::vector<std::string> http_names = MetricNames(http_lines);
  size_t first_diff = 0;
  while (first_diff < verb_names.size() && first_diff < http_names.size() &&
         verb_names[first_diff] == http_names[first_diff]) {
    ++first_diff;
  }
  *equivalent = verb_names == http_names && !verb_names.empty();

  TablePrinter table({"Quantity", "Value"});
  table.AddRow({"verb exposition lines", std::to_string(verb_lines.size())});
  table.AddRow({"http exposition lines", std::to_string(http_lines.size())});
  std::string divergence = "none";
  if (!*equivalent) {
    divergence = first_diff < verb_names.size() ? verb_names[first_diff]
                                                : "(length)";
  }
  table.AddRow({"first name divergence", divergence});
  table.Print();
  std::printf("bound: identical metric-name sequence -> %s\n",
              *equivalent ? "PASS" : "FAIL");

  server->Stop();
  service.Shutdown();
  return 0;
}

// ---------------------------------------------- (c) shed + retry recovery

int ShedRecovery(bool* lossless) {
  std::printf("\n(c) Load shedding with client retries\n");
  ServiceConfig service_config;
  service_config.num_workers = 2;
  QueryService service(service_config);
  ServerConfig server_config;
  server_config.max_connections = 2;  // deliberate starvation
  auto created = Server::Create(&service, server_config);
  if (!created.ok()) return 1;
  std::unique_ptr<Server> server = *std::move(created);

  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 6;
  std::atomic<int> succeeded{0};
  std::atomic<int> total_attempts{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      ClientConfig config;
      config.port = server->port();
      config.max_retries = 10;
      config.backoff_base_ms = 5;
      config.backoff_max_ms = 100;
      config.retry_seed = static_cast<uint64_t>(c + 1);
      for (int i = 0; i < kRequestsPerClient; ++i) {
        Client client(config);  // fresh connection per request: churn
        auto response = client.Request("STATS");
        if (response.ok() && response->status.ok()) {
          succeeded.fetch_add(1);
          total_attempts.fetch_add(response->attempts);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const uint64_t shed = service.stats().connections_shed;
  const int expected = kClients * kRequestsPerClient;
  *lossless = succeeded.load() == expected;

  TablePrinter table({"Quantity", "Value"});
  table.AddRow({"clients x requests", std::to_string(expected)});
  table.AddRow({"succeeded", std::to_string(succeeded.load())});
  table.AddRow({"total attempts", std::to_string(total_attempts.load())});
  table.AddRow({"connections shed", std::to_string(shed)});
  table.Print();
  std::printf("bound: every request eventually succeeds -> %s\n",
              *lossless ? "PASS" : "FAIL");

  server->Stop();
  service.Shutdown();
  return 0;
}

int Main() {
  PrintHeader("Extension: net",
              "disconnect-to-cancel latency + scrape equivalence + shed "
              "recovery");
  std::string xml = datagen::GenerateDblp(ScaledBytes(12u << 20), 3);

  bool cancel_ok = false;
  bool scrape_ok = false;
  bool shed_ok = false;
  if (DisconnectCancelLatency(xml, &cancel_ok) != 0) return 1;
  if (ScrapeEquivalence(&scrape_ok) != 0) return 1;
  if (ShedRecovery(&shed_ok) != 0) return 1;

  std::printf(
      "\nExpected shape: an abandoned connection's evaluation stops within\n"
      "the propagation floor plus 2x the %u-event sampling interval (and\n"
      "well under the full evaluation); the HTTP scrape and the METRICS\n"
      "verb expose the same metric families; shed clients with jittered\n"
      "backoff retries lose no requests.\n",
      core::CancelToken::kCheckIntervalEvents);
  return cancel_ok && scrape_ok && shed_ok ? 0 : 1;
}

}  // namespace
}  // namespace xsq::bench

int main() { return xsq::bench::Main(); }
