// Extension experiment: resilience-layer cost and promptness. The
// cancellation/deadline layer promises that (a) keeping a CancelToken
// attached costs at most 2% throughput on the DBLP serving path — the
// token poll is a null test per sampled event plus one clock read per
// interval while a deadline is armed; (b) a tripped token is observed
// within 2x the engine's sampling granularity (CancelToken::
// kCheckIntervalEvents events), not at the next chunk boundary; and
// (c) the tape format's CRC32C trailers reject 100% of single-bit
// corruptions. This harness enforces all three; any violated bound
// fails the run (exit status 1).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/cancel_token.h"
#include "core/streaming_query.h"
#include "datagen/generators.h"
#include "fig_util.h"
#include "tape/recorder.h"
#include "tape/tape.h"
#include "xml/events.h"

namespace xsq::bench {
namespace {

constexpr size_t kChunkBytes = 64 * 1024;
constexpr double kOverheadBound = 0.02;  // the 2% acceptance bar
constexpr const char* kQuery = "/dblp/article/title/text()";

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// One full evaluation of kQuery over `xml` in kChunkBytes chunks.
// `token` null = the bare baseline; non-null = the guarded run, with a
// far-future deadline armed so every sampled poll also pays the
// steady_clock read (the worst honest case of the serving path).
double RunOnce(const std::string& xml, core::CancelToken* token,
               uint64_t* items_out) {
  auto query = core::StreamingQuery::Open(kQuery);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return -1.0;
  }
  if (token != nullptr) {
    token->Reset();
    token->SetDeadlineAfterMs(60'000);
    (*query)->set_cancel_token(token);
  }
  auto start = std::chrono::steady_clock::now();
  for (size_t pos = 0; pos < xml.size(); pos += kChunkBytes) {
    std::string_view chunk(xml.data() + pos,
                           std::min(kChunkBytes, xml.size() - pos));
    if (!(*query)->Push(chunk).ok()) return -1.0;
  }
  if (!(*query)->Close().ok()) return -1.0;
  double elapsed = Seconds(start);
  uint64_t items = 0;
  while ((*query)->NextItem()) ++items;
  if (items_out != nullptr) *items_out = items;
  return elapsed;
}

// Mean of the fastest half (see ext_obs: preemption stalls only add
// time, so the fast tail of interleaved runs is the true cost floor).
double TrimmedMean(std::vector<double> times) {
  std::sort(times.begin(), times.end());
  size_t keep = times.size() / 2;
  if (keep == 0) keep = 1;
  double total = 0.0;
  for (size_t i = 0; i < keep; ++i) total += times[i];
  return total / static_cast<double>(keep);
}

int CancellationOverhead(const std::string& xml, bool* within_bound) {
  std::printf("\n(a) Cancellation-check overhead on chunked DBLP (%s, %zuKB "
              "chunks)\n",
              FormatBytes(xml.size()).c_str(), kChunkBytes / 1024);
  constexpr int kEvalsPerVariant = 40;
  core::CancelToken token;
  uint64_t bare_items = 0;
  uint64_t guarded_items = 0;
  std::vector<double> bare_times;
  std::vector<double> guarded_times;
  for (int i = 0; i < kEvalsPerVariant; ++i) {
    double bare = RunOnce(xml, nullptr, &bare_items);
    double guarded = RunOnce(xml, &token, &guarded_items);
    if (bare < 0.0 || guarded < 0.0) return 1;
    bare_times.push_back(bare);
    guarded_times.push_back(guarded);
  }
  if (bare_items != guarded_items) {
    std::fprintf(stderr, "result mismatch: bare %llu vs guarded %llu\n",
                 static_cast<unsigned long long>(bare_items),
                 static_cast<unsigned long long>(guarded_items));
    return 1;
  }

  double bare_floor = TrimmedMean(bare_times);
  double guarded_floor = TrimmedMean(guarded_times);
  double overhead = guarded_floor / bare_floor - 1.0;
  if (overhead < 0.0) overhead = 0.0;  // noise floor: guarded won
  *within_bound = overhead <= kOverheadBound;

  TablePrinter table({"Variant", "Floor (ms)", "MB/s", "Items", "Overhead"});
  double mb = static_cast<double>(xml.size()) / (1024.0 * 1024.0);
  table.AddRow({"bare", FormatDouble(bare_floor * 1e3, 1),
                FormatDouble(mb / bare_floor, 1), std::to_string(bare_items),
                "-"});
  table.AddRow({"token + armed deadline",
                FormatDouble(guarded_floor * 1e3, 1),
                FormatDouble(mb / guarded_floor, 1),
                std::to_string(guarded_items),
                FormatDouble(overhead * 100.0, 2) + "%"});
  table.Print();
  std::printf("bound: <= %.0f%% -> %s\n", kOverheadBound * 100.0,
              *within_bound ? "PASS" : "FAIL");
  return 0;
}

// How many events pass between tripping the token and the engine
// noticing? The contract is within one sampling interval; the bound
// enforced here is 2x for slack on where inside the interval the trip
// lands.
int DetectionLatency(bool* within_bound) {
  std::printf("\n(b) Deadline detection latency at event granularity\n");
  auto query = core::StreamingQuery::Open("//a/text()");
  if (!query.ok()) return 1;
  core::CancelToken token;
  (*query)->set_cancel_token(&token);
  xml::SaxHandler* handler = (*query)->event_handler();
  handler->OnDocumentBegin();
  handler->OnBegin("r", {}, 1);

  // Warm pass: measure per-event cost with the token attached but
  // quiet, to convert the interval into wall-clock terms.
  constexpr int kWarmupEvents = 200'000;
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kWarmupEvents / 2; ++i) {
    handler->OnBegin("a", {}, 2);
    handler->OnEnd("a", 2);
  }
  double ns_per_event = Seconds(start) * 1e9 / kWarmupEvents;
  if (!(*query)->engine_status().ok()) return 1;

  // Trip an (already expired) deadline mid-stream and count events
  // until the engine fails.
  token.SetDeadlineAfter(std::chrono::nanoseconds(-1));
  int events_to_detect = 0;
  while ((*query)->engine_status().ok() && events_to_detect < 100'000) {
    handler->OnBegin("a", {}, 2);
    handler->OnEnd("a", 2);
    events_to_detect += 2;
  }
  Status status = (*query)->engine_status();
  const int interval = static_cast<int>(core::CancelToken::kCheckIntervalEvents);
  *within_bound = status.code() == StatusCode::kDeadlineExceeded &&
                  events_to_detect <= 2 * interval;

  TablePrinter table({"Quantity", "Value"});
  table.AddRow({"sampling interval (events)", std::to_string(interval)});
  table.AddRow({"events to detection", std::to_string(events_to_detect)});
  table.AddRow({"ns/event (token attached)", FormatDouble(ns_per_event, 1)});
  table.AddRow({"detection latency (us)",
                FormatDouble(events_to_detect * ns_per_event / 1e3, 2)});
  table.Print();
  std::printf("bound: <= 2x interval (%d events) -> %s\n", 2 * interval,
              *within_bound ? "PASS" : "FAIL");
  return 0;
}

int BitFlipRejection(bool* all_rejected) {
  std::printf("\n(c) Tape CRC32C single-bit-flip rejection sweep\n");
  std::string doc = datagen::GenerateDblp(64 * 1024, 7);
  Result<tape::Tape> tape = tape::RecordDocument(doc);
  if (!tape.ok()) return 1;
  const std::string image = tape->Serialize();
  size_t rejected = 0;
  const size_t total = image.size() * 8;
  for (size_t byte = 0; byte < image.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = image;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      if (!tape::Tape::FromBytes(std::move(mutated), "flip").ok()) {
        ++rejected;
      }
    }
  }
  *all_rejected = rejected == total;
  TablePrinter table({"Quantity", "Value"});
  table.AddRow({"tape image bytes", std::to_string(image.size())});
  table.AddRow({"single-bit flips tried", std::to_string(total)});
  table.AddRow({"rejected", std::to_string(rejected)});
  table.AddRow({"rejection rate",
                FormatDouble(100.0 * static_cast<double>(rejected) /
                                 static_cast<double>(total),
                             2) +
                    "%"});
  table.Print();
  std::printf("bound: 100%% -> %s\n", *all_rejected ? "PASS" : "FAIL");
  return 0;
}

int Main() {
  PrintHeader("Extension: resilience",
              "cancellation overhead + detection latency + corruption "
              "rejection");
  std::string xml = datagen::GenerateDblp(ScaledBytes(6u << 20), 1);

  bool overhead_ok = false;
  bool latency_ok = false;
  bool rejection_ok = false;
  if (CancellationOverhead(xml, &overhead_ok) != 0) return 1;
  if (DetectionLatency(&latency_ok) != 0) return 1;
  if (BitFlipRejection(&rejection_ok) != 0) return 1;

  std::printf(
      "\nExpected shape: the token poll (a null test per sampled event, a\n"
      "clock read per %u-event interval while a deadline is armed) stays\n"
      "within the %.0f%% bound; a tripped token is seen within 2x the\n"
      "interval; every single-bit tape corruption is rejected by CRC32C.\n",
      core::CancelToken::kCheckIntervalEvents, kOverheadBound * 100.0);
  return overhead_ok && latency_ok && rejection_ok ? 0 : 1;
}

}  // namespace
}  // namespace xsq::bench

int main() { return xsq::bench::Main(); }
