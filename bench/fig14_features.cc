// Figure 14: the feature matrix of the systems under study. Regenerated
// from live capability probes: each engine is asked to compile queries
// that exercise a feature, and the matrix records what it accepts.
#include <string>

#include "bench_util/table.h"
#include "core/engine.h"
#include "core/engine_nc.h"
#include "core/result_sink.h"
#include "fig_util.h"
#include "lazydfa/lazy_dfa_engine.h"
#include "naive/naive_engine.h"
#include "textindex/text_index_engine.h"
#include "xpath/ast.h"

namespace xsq::bench {
namespace {

enum class Probe {
  kBufferedPredicate,  // /a[b]/c : decision after the result streams by
  kMultiplePredicates,
  kClosure,
  kAggregation,
};

const char* ProbeQuery(Probe probe) {
  switch (probe) {
    case Probe::kBufferedPredicate:
      return "/a[b]/c/text()";
    case Probe::kMultiplePredicates:
      return "/a[b]/c[@d]/e[f=1]/text()";
    case Probe::kClosure:
      return "//a//b/text()";
    case Probe::kAggregation:
      return "/a/b/count()";
  }
  return "";
}

bool Accepts(System system, Probe probe) {
  Result<xpath::Query> query = xpath::ParseQuery(ProbeQuery(probe));
  if (!query.ok()) return false;
  core::CountingSink sink;
  switch (system) {
    case System::kXsqF:
      return core::XsqEngine::Create(*query, &sink).ok();
    case System::kXsqNc:
      return core::XsqNcEngine::Create(*query, &sink).ok();
    case System::kLazyDfa:
      return lazydfa::LazyDfaEngine::Create(*query, &sink).ok();
    case System::kNaive:
      return naive::NaiveEngine::Create(*query, &sink).ok();
    case System::kDom:
    case System::kTextIndex:
      return true;  // DOM-based evaluation handles the full subset
    case System::kPureParser:
      return false;  // parses only; answers no queries
  }
  return false;
}

int Main() {
  PrintHeader("Figure 14", "system features");
  TablePrinter table({"Name", "Language", "Streaming", "Buffered pred.",
                      "Multiple preds", "Closure", "Aggregation"});
  struct Row {
    System system;
    const char* language;
    bool streaming;
  };
  const Row rows[] = {
      {System::kXsqF, "XPath", true},
      {System::kXsqNc, "XPath", true},
      {System::kLazyDfa, "XPath (no preds)", true},
      {System::kNaive, "XPath", true},
      {System::kDom, "XPath", false},
      {System::kTextIndex, "XPath+keywords", false},
  };
  for (const Row& row : rows) {
    auto mark = [&](Probe probe) {
      return std::string(Accepts(row.system, probe) ? "X" : "");
    };
    table.AddRow({SystemName(row.system), row.language,
                  row.streaming ? "X" : "", mark(Probe::kBufferedPredicate),
                  mark(Probe::kMultiplePredicates), mark(Probe::kClosure),
                  mark(Probe::kAggregation)});
  }
  table.Print();
  std::printf(
      "\nPaper shape check: only the XSQ engines combine streaming with\n"
      "buffered/multiple predicates, closure, and aggregation; the\n"
      "lazy-DFA (XMLTK-like) engine streams but takes no predicates; the\n"
      "DOM engine takes everything but is not streaming.\n");
  return 0;
}

}  // namespace
}  // namespace xsq::bench

int main() { return xsq::bench::Main(); }
