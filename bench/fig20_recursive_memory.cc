// Figure 20: memory usage on recursive synthetic data (IBM XML
// Generator stand-in) with the closure query
// //pub[year]//book[@id]/title/text().
//
// The paper's point: even on highly recursive data with closures,
// XSQ-F's buffer is bounded by the largest element in the stream, not
// by the document size; DOM systems grow linearly and Joost-like
// subtree buffering sits in between. XSQ-NC and the lazy DFA cannot
// handle the query at all (the figure's footnotes).
#include <string>
#include <vector>

#include "datagen/generators.h"
#include "fig_util.h"

namespace xsq::bench {
namespace {

int Main() {
  PrintHeader("Figure 20", "memory on recursive data, closure query");
  const char* query = "//pub[year]//book[@id]/title/text()";

  datagen::RecursiveOptions options;
  options.nested_levels = 15;
  options.max_repeats = 20;

  const System systems[] = {System::kXsqF, System::kXsqNc, System::kLazyDfa,
                            System::kDom, System::kNaive};
  TablePrinter table({"Input", "XSQ-F", "XSQ-NC", "LazyDFA(XMLTK)",
                      "DOM(Saxon)", "Subtree(Joost)"});
  for (size_t mb = 2; mb <= 10; mb += 2) {
    const std::string xml =
        datagen::GenerateRecursivePubs(ScaledBytes(mb << 20), 7, options);
    std::vector<std::string> row = {FormatBytes(xml.size())};
    for (System system : systems) {
      Result<RunMeasurement> m = RunSystem(system, query, xml);
      if (!m.ok()) return 1;
      row.push_back(m->supported ? FormatBytes(m->peak_memory_bytes)
                                 : "(n/a)");
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\nPaper shape check (Fig. 20): XSQ-F memory is bounded by the\n"
      "largest element (flat as the document grows); XSQ-NC and the\n"
      "lazy DFA cannot handle the query (footnotes 1/2 of the figure);\n"
      "DOM grows linearly; subtree buffering tracks the largest\n"
      "candidate subtree, which on recursive data is nearly the whole\n"
      "document.\n");
  return 0;
}

}  // namespace
}  // namespace xsq::bench

int main() { return xsq::bench::Main(); }
