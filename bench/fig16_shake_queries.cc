// Figure 16: relative throughput (normalized to the PureParser) of all
// systems for queries Q1-Q3 on the SHAKE corpus.
//
//   Q1: /PLAY/ACT/SCENE/SPEECH[LINE%love]/SPEAKER/text()   (predicate)
//   Q2: /PLAY/ACT/SCENE/SPEECH/SPEAKER/text()              (plain path)
//   Q3: //ACT//SPEAKER/text()                              (closures)
#include <string>

#include "datagen/generators.h"
#include "fig_util.h"

namespace xsq::bench {
namespace {

int Main() {
  PrintHeader("Figure 16",
              "relative throughput by query, SHAKE dataset");
  const std::string xml =
      datagen::GenerateShake(ScaledBytes(8u << 20), 2003);
  Result<RunMeasurement> pure = RunBest(System::kPureParser, "", xml);
  if (!pure.ok()) return 1;

  const struct {
    const char* name;
    const char* query;
  } queries[] = {
      {"Q1", "/PLAY/ACT/SCENE/SPEECH[LINE%love]/SPEAKER/text()"},
      {"Q2", "/PLAY/ACT/SCENE/SPEECH/SPEAKER/text()"},
      {"Q3", "//ACT//SPEAKER/text()"},
  };
  const System systems[] = {System::kXsqNc, System::kXsqF,
                            System::kLazyDfa,  System::kDom,
                            System::kNaive,    System::kTextIndex};

  for (const auto& q : queries) {
    std::printf("\n%s: %s\n", q.name, q.query);
    TablePrinter table({"System", "Rel. throughput", "", "MB/s", "Items"});
    for (System system : systems) {
      Result<RunMeasurement> m = RunBest(system, q.query, xml);
      if (!m.ok()) {
        std::fprintf(stderr, "%s: %s\n", SystemName(system),
                     m.status().ToString().c_str());
        return 1;
      }
      if (!m->supported) {
        table.AddRow({SystemName(system), "(cannot handle the query)", "",
                      "", ""});
        continue;
      }
      double rel = RelativeThroughput(*m, *pure);
      table.AddRow({SystemName(system), FormatDouble(rel, 2), Bar(rel),
                    FormatDouble(m->throughput_mb_per_s(), 1),
                    std::to_string(m->item_count)});
    }
    table.Print();
  }
  std::printf(
      "\nPaper shape check (Fig. 16): XMLTK-like and XSQ-NC are the\n"
      "fastest where applicable; XSQ-F pays for nondeterminism (more so\n"
      "on Q3's closures); the DOM system sits below the streaming\n"
      "engines once its preprocessing is charged.\n");
  return 0;
}

}  // namespace
}  // namespace xsq::bench

int main() { return xsq::bench::Main(); }
