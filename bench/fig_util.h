// Shared helpers for the per-figure benchmark binaries.
//
// Every binary regenerates one table/figure of the paper's Section 6 on
// synthetic corpora (see DESIGN.md for the experiment index). Corpus
// sizes default to a few MB so the whole suite runs in seconds; set
// XSQ_BENCH_SCALE=N to scale all inputs by N (e.g. 16 approximates the
// paper's dataset sizes).
#ifndef XSQ_BENCH_FIG_UTIL_H_
#define XSQ_BENCH_FIG_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_util/runner.h"
#include "bench_util/table.h"

namespace xsq::bench {

inline double BenchScale() {
  const char* env = std::getenv("XSQ_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  double scale = std::atof(env);
  return scale > 0.0 ? scale : 1.0;
}

inline size_t ScaledBytes(size_t base) {
  return static_cast<size_t>(static_cast<double>(base) * BenchScale());
}

// Runs `reps` times and keeps the fastest run (steadier numbers for
// small corpora).
inline Result<RunMeasurement> RunBest(System system,
                                      std::string_view query_text,
                                      std::string_view xml, int reps = 3) {
  Result<RunMeasurement> best = RunSystem(system, query_text, xml);
  if (!best.ok() || !best->supported) return best;
  for (int i = 1; i < reps; ++i) {
    Result<RunMeasurement> next = RunSystem(system, query_text, xml);
    if (next.ok() && next->supported &&
        next->total_seconds() < best->total_seconds()) {
      best = next;
    }
  }
  return best;
}

inline void PrintHeader(const char* figure, const char* description) {
  std::printf("==================================================\n");
  std::printf("%s: %s\n", figure, description);
  std::printf("(scale=%.2g; set XSQ_BENCH_SCALE to resize corpora)\n",
              BenchScale());
  std::printf("==================================================\n");
}

}  // namespace xsq::bench

#endif  // XSQ_BENCH_FIG_UTIL_H_
