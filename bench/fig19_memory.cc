// Figure 19: maximum memory usage versus dataset size on DBLP excerpts,
// query /dblp/inproceedings[author]/title/text(). The DOM engine grows
// linearly with the input (the paper reports a 4-5x constant); the
// streaming engines stay flat.
//
// The lazy-DFA engine cannot take the predicate; per the paper's own
// footnote it runs /dblp/inproceedings/title/text() instead.
#include <string>
#include <vector>

#include "datagen/generators.h"
#include "fig_util.h"

namespace xsq::bench {
namespace {

int Main() {
  PrintHeader("Figure 19", "memory usage vs. DBLP dataset size");
  const char* query = "/dblp/inproceedings[author]/title/text()";
  const char* lazydfa_query = "/dblp/inproceedings/title/text()";

  std::vector<size_t> sizes;
  for (size_t mb = 2; mb <= 10; mb += 2) {
    sizes.push_back(ScaledBytes(mb << 20));
  }
  const System systems[] = {System::kXsqNc, System::kXsqF, System::kLazyDfa,
                            System::kDom,   System::kNaive,
                            System::kTextIndex};

  TablePrinter table({"Input", "XSQ-NC", "XSQ-F", "LazyDFA(XMLTK)*",
                      "DOM(Saxon)", "Subtree(Joost)", "TextIndex**"});
  for (size_t size : sizes) {
    const std::string xml = datagen::GenerateDblp(size, 1);
    std::vector<std::string> row = {FormatBytes(xml.size())};
    for (System system : systems) {
      const char* q = system == System::kLazyDfa ? lazydfa_query : query;
      Result<RunMeasurement> m = RunSystem(system, q, xml);
      if (!m.ok()) return 1;
      row.push_back(m->supported ? FormatBytes(m->peak_memory_bytes) : "-");
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\n* LazyDFA runs the predicate-free variant (paper footnote 1).\n"
      "** TextIndex(XQEngine) supports only 32K elements per document\n"
      "   (paper footnote 2), so DBLP excerpts exceed it.\n"
      "Paper shape check (Fig. 19): DOM memory is linear in input size\n"
      "with a multi-x constant; every streaming engine's buffer stays\n"
      "flat (bytes, not megabytes) as the input grows 5x.\n");
  return 0;
}

}  // namespace
}  // namespace xsq::bench

int main() { return xsq::bench::Main(); }
