// Extension experiment: schema-aware optimization (the future work the
// paper names at the end of Section 5).
//
// With the SHAKE DTD, the optimizer rewrites the closure query Q3
// (//ACT//SPEAKER/text()) into the child-only Q2
// (/PLAY/ACT/SCENE/SPEECH/SPEAKER/text()), which the deterministic
// XSQ-NC engine can run - recovering the XSQ-NC vs XSQ-F gap of
// Figure 16 automatically. Unsatisfiable queries are proven empty
// without reading the stream at all.
#include <chrono>
#include <string>

#include "core/engine.h"
#include "core/engine_nc.h"
#include "core/result_sink.h"
#include "datagen/generators.h"
#include "dtd/dtd.h"
#include "dtd/optimizer.h"
#include "dtd/validator.h"
#include "fig_util.h"
#include "xml/sax_parser.h"

namespace xsq::bench {
namespace {

constexpr const char* kShakeDtd = R"(
  <!ELEMENT PLAY (TITLE, ACT+)>
  <!ELEMENT TITLE (#PCDATA)>
  <!ELEMENT ACT (TITLE, SCENE+)>
  <!ELEMENT SCENE (TITLE, SPEECH+)>
  <!ELEMENT SPEECH (SPEAKER, LINE+)>
  <!ELEMENT SPEAKER (#PCDATA)>
  <!ELEMENT LINE (#PCDATA)>
)";

double RunXsqF(const xpath::Query& query, const std::string& xml,
               size_t* items) {
  core::CountingSink sink;
  auto engine = core::XsqEngine::Create(query, &sink);
  auto start = std::chrono::steady_clock::now();
  xml::SaxParser parser(engine->get());
  (void)parser.Parse(xml);
  *items = sink.item_count;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

double RunXsqNc(const xpath::Query& query, const std::string& xml,
                size_t* items) {
  core::CountingSink sink;
  auto engine = core::XsqNcEngine::Create(query, &sink);
  auto start = std::chrono::steady_clock::now();
  xml::SaxParser parser(engine->get());
  (void)parser.Parse(xml);
  *items = sink.item_count;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

int Main() {
  PrintHeader("Extension: schema-aware optimization",
              "DTD-based closure elimination and unsatisfiability");
  const std::string xml =
      datagen::GenerateShake(ScaledBytes(8u << 20), 2003);
  Result<dtd::Dtd> schema = dtd::Dtd::Parse(kShakeDtd);
  if (!schema.ok()) return 1;

  // The corpus really is valid under the schema (streaming validation).
  {
    auto start = std::chrono::steady_clock::now();
    Status valid = dtd::ValidateDocument(*schema, xml, "PLAY");
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    std::printf("streaming DTD validation: %s in %.1f ms (%.1f MB/s)\n",
                valid.ok() ? "valid" : valid.ToString().c_str(),
                seconds * 1e3,
                static_cast<double>(xml.size()) / (1024 * 1024) / seconds);
  }

  const char* queries[] = {
      "//ACT//SPEAKER/text()",
      "//SPEECH[LINE%love]/SPEAKER/text()",
      "//SCENE//LINE/text()",
  };
  TablePrinter table({"Query", "XSQ-F (ms)", "Rewritten -> XSQ-NC (ms)",
                      "Speedup", "Rewrite"});
  for (const char* query_text : queries) {
    Result<xpath::Query> query = xpath::ParseQuery(query_text);
    if (!query.ok()) return 1;
    Result<dtd::QueryAnalysis> analysis =
        dtd::AnalyzeQuery(*schema, "PLAY", *query);
    if (!analysis.ok()) return 1;
    size_t items_f = 0;
    double f_seconds = RunXsqF(*query, xml, &items_f);
    if (!analysis->closure_free_rewrite.has_value()) {
      table.AddRow({query_text, FormatDouble(f_seconds * 1e3, 1),
                    "(no rewrite)", "", ""});
      continue;
    }
    size_t items_nc = 0;
    double nc_seconds =
        RunXsqNc(*analysis->closure_free_rewrite, xml, &items_nc);
    if (items_nc != items_f) {
      std::fprintf(stderr, "rewrite mismatch on %s!\n", query_text);
      return 1;
    }
    table.AddRow({query_text, FormatDouble(f_seconds * 1e3, 1),
                  FormatDouble(nc_seconds * 1e3, 1),
                  FormatDouble(f_seconds / nc_seconds, 2),
                  analysis->closure_free_rewrite->ToString()});
  }
  table.Print();

  // Unsatisfiable queries are answered without touching the stream.
  Result<xpath::Query> ghost = xpath::ParseQuery("//ACT/GHOST/text()");
  Result<dtd::QueryAnalysis> ghost_analysis =
      dtd::AnalyzeQuery(*schema, "PLAY", *ghost);
  if (ghost_analysis.ok() && !ghost_analysis->satisfiable) {
    std::printf(
        "\n//ACT/GHOST/text(): proven empty by the schema in O(|DTD|), "
        "0 bytes of the %s stream read\n(%s)\n",
        FormatBytes(xml.size()).c_str(),
        ghost_analysis->unsatisfiable_reason.c_str());
  }
  std::printf(
      "\nExpected shape: rewritten queries run at XSQ-NC speed (the\n"
      "Figure 16 XSQ-NC vs XSQ-F gap, obtained automatically); recursive\n"
      "or ambiguous schemas refuse the rewrite and keep XSQ-F.\n");
  return 0;
}

}  // namespace
}  // namespace xsq::bench

int main() { return xsq::bench::Main(); }
