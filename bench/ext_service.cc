// Extension experiment: the concurrent query-service layer.
//
// Two questions a server operator asks:
//   1. How does aggregate throughput scale with the worker pool when
//      many sessions stream documents concurrently?
//   2. How much does the plan cache buy on open-heavy workloads
//      (sessions are short, queries repeat)?
//
// Note: scaling beyond 1x requires real cores; on a single-CPU host the
// worker columns collapse to ~1x and only the cache table is
// meaningful.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "datagen/generators.h"
#include "fig_util.h"
#include "service/query_service.h"

namespace xsq::bench {
namespace {

using service::QueryService;
using service::ServiceConfig;
using service::SessionId;

const char* kQueries[] = {
    "//book[price<20]/title/text()",
    "/dblp/article/title/text()",
    "//inproceedings[year>1995]/author/text()",
    "/dblp/article[author]/year/text()",
};

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Streams `docs` through `sessions_per_client` sessions per client
// thread; returns wall seconds.
double RunWorkload(int workers, int clients,
                   const std::vector<std::string>& docs) {
  ServiceConfig config;
  config.num_workers = workers;
  config.max_sessions = 1024;
  config.max_queued_chunks_per_session = 32;
  QueryService service(config);
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&service, &docs, c] {
      for (size_t d = static_cast<size_t>(c); d < docs.size();
           d += 4 /* clients */) {
        auto id = service.OpenSession(
            kQueries[(c + static_cast<int>(d)) % 4]);
        if (!id.ok()) return;
        const std::string& doc = docs[d];
        constexpr size_t kChunk = 64 * 1024;
        for (size_t pos = 0; pos < doc.size(); pos += kChunk) {
          Status status;
          do {
            status = service.Push(*id, doc.substr(pos, kChunk));
          } while (status.code() == StatusCode::kResourceExhausted);
          if (!status.ok()) return;
        }
        service.Close(*id);
        service.Drain(*id);
        service.Release(*id);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  double seconds = Seconds(start);
  service.Shutdown();
  return seconds;
}

int Main() {
  PrintHeader("Extension: query service",
              "worker-pool scaling and plan-cache sensitivity");

  const size_t doc_bytes = ScaledBytes(192 * 1024);
  std::vector<std::string> docs;
  size_t total_bytes = 0;
  for (uint64_t i = 0; i < 16; ++i) {
    docs.push_back(datagen::GenerateDblp(doc_bytes, i));
    total_bytes += docs.back().size();
  }
  std::printf("%zu documents, %s total, 4 client threads\n", docs.size(),
              FormatBytes(total_bytes).c_str());

  TablePrinter scaling({"Workers", "Seconds", "MB/s", "Speedup vs 1"});
  double base_seconds = 0;
  for (int workers : {1, 2, 4, 8}) {
    // Warm-up + best-of-2 to steady the numbers.
    double seconds = RunWorkload(workers, 4, docs);
    double again = RunWorkload(workers, 4, docs);
    if (again < seconds) seconds = again;
    if (workers == 1) base_seconds = seconds;
    scaling.AddRow({std::to_string(workers), FormatDouble(seconds, 3),
                    FormatDouble(static_cast<double>(total_bytes) /
                                     (1024.0 * 1024.0) / seconds, 1),
                    FormatDouble(base_seconds / seconds, 2)});
  }
  scaling.Print();
  std::printf(
      "\nExpected shape: near-linear speedup while workers <= cores\n"
      "(hardware here: %u); flat on a single-CPU host.\n\n",
      std::thread::hardware_concurrency());

  // Plan-cache sensitivity: many short sessions over 4 distinct
  // queries. Capacity 4 serves every open after the first four from
  // cache; capacity 1 thrashes and recompiles almost every open.
  TablePrinter cache_table(
      {"Cache capacity", "Opens/s", "Hit rate", "Compiles"});
  const std::string small_doc = datagen::GenerateDblp(2048, 99);
  for (size_t capacity : {1, 2, 4}) {
    ServiceConfig config;
    config.num_workers = 2;
    config.plan_cache_capacity = capacity;
    QueryService service(config);
    const int opens = static_cast<int>(400 * BenchScale());
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < opens; ++i) {
      auto id = service.OpenSession(kQueries[i % 4]);
      if (!id.ok()) return 1;
      if (!service.Push(*id, small_doc).ok()) return 1;
      service.Close(*id);
      service.Release(*id);
    }
    double seconds = Seconds(start);
    service::StatsSnapshot snap = service.stats();
    double hit_rate =
        static_cast<double>(snap.plan_cache_hits) /
        static_cast<double>(snap.plan_cache_hits + snap.plan_cache_misses);
    cache_table.AddRow(
        {std::to_string(capacity),
         FormatDouble(static_cast<double>(opens) / seconds, 0),
         FormatDouble(hit_rate, 3),
         std::to_string(snap.plan_cache_misses)});
    service.Shutdown();
  }
  cache_table.Print();
  std::printf(
      "\nExpected shape: hit rate ~0 at capacity 1 (LRU thrash over 4\n"
      "round-robin queries), ~1.0 at capacity 4, with opens/s rising as\n"
      "compilation leaves the hot path.\n");
  return 0;
}

}  // namespace
}  // namespace xsq::bench

int main() { return xsq::bench::Main(); }
