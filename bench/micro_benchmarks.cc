// Micro-benchmarks (google-benchmark) for the individual components:
// SAX parsing, query compilation, HPDT construction, per-event engine
// cost, and the ablation the paper discusses in Section 6.2 - the price
// of nondeterminism (XSQ-F vs XSQ-NC on the same closure-free query)
// and of closure depth.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "core/engine.h"
#include "core/engine_nc.h"
#include "core/hpdt.h"
#include "core/result_sink.h"
#include "datagen/generators.h"
#include "dom/builder.h"
#include "dom/evaluator.h"
#include "dtd/dtd.h"
#include "dtd/validator.h"
#include "filter/filter_engine.h"
#include "lazydfa/lazy_dfa_engine.h"
#include "textindex/text_index_engine.h"
#include "xml/sax_parser.h"
#include "xml/scan.h"
#include "xpath/ast.h"
#include "xsm/xsm_engine.h"

namespace xsq {
namespace {

class NullHandler : public xml::SaxHandler {
 public:
  void OnBegin(std::string_view, const std::vector<xml::Attribute>&,
               int) override {}
  void OnEnd(std::string_view, int) override {}
  void OnText(std::string_view, std::string_view, int) override {}
};

const std::string& DblpCorpus() {
  static const std::string* corpus =
      new std::string(datagen::GenerateDblp(2u << 20, 1));
  return *corpus;
}

const std::string& RecursiveCorpus() {
  static const std::string* corpus =
      new std::string(datagen::GenerateRecursivePubs(2u << 20, 7));
  return *corpus;
}

void ReportThroughput(benchmark::State& state, size_t bytes_per_iter) {
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations() * bytes_per_iter));
}

// The scan primitive underneath the parser, isolated: find the next
// structural byte over DBLP-shaped input with each implementation.
// Arg selects the ScanImpl (0=scalar, 1=swar, 2=simd).
void BM_ScanFindTextSpecial(benchmark::State& state) {
  const std::string& xml = DblpCorpus();
  const auto impl = static_cast<xml::ScanImpl>(state.range(0));
  if (!xml::SetScanImpl(impl)) {
    state.SkipWithError("scan impl not available in this build");
    return;
  }
  for (auto _ : state) {
    size_t pos = 0;
    size_t hits = 0;
    while ((pos = xml::FindTextSpecial(xml, pos)) != std::string_view::npos) {
      ++hits;
      ++pos;
    }
    benchmark::DoNotOptimize(hits);
  }
  xml::SetScanImpl(xml::BestScanImpl());
  ReportThroughput(state, xml.size());
}
BENCHMARK(BM_ScanFindTextSpecial)->Arg(0)->Arg(1)->Arg(2);

void BM_ScanCountNewlines(benchmark::State& state) {
  const std::string& xml = DblpCorpus();
  const auto impl = static_cast<xml::ScanImpl>(state.range(0));
  if (!xml::SetScanImpl(impl)) {
    state.SkipWithError("scan impl not available in this build");
    return;
  }
  for (auto _ : state) {
    size_t n = xml::CountNewlines(xml);
    benchmark::DoNotOptimize(n);
  }
  xml::SetScanImpl(xml::BestScanImpl());
  ReportThroughput(state, xml.size());
}
BENCHMARK(BM_ScanCountNewlines)->Arg(0)->Arg(1)->Arg(2);

void BM_SaxParse(benchmark::State& state) {
  const std::string& xml = DblpCorpus();
  for (auto _ : state) {
    NullHandler handler;
    xml::SaxParser parser(&handler);
    Status status = parser.Parse(xml);
    benchmark::DoNotOptimize(status);
  }
  ReportThroughput(state, xml.size());
}
BENCHMARK(BM_SaxParse);

void BM_SaxParseChunked(benchmark::State& state) {
  const std::string& xml = DblpCorpus();
  const size_t chunk = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    NullHandler handler;
    xml::SaxParser parser(&handler);
    for (size_t pos = 0; pos < xml.size(); pos += chunk) {
      Status status = parser.Feed(
          std::string_view(xml).substr(pos, chunk));
      benchmark::DoNotOptimize(status);
    }
    benchmark::DoNotOptimize(parser.Finish());
  }
  ReportThroughput(state, xml.size());
}
BENCHMARK(BM_SaxParseChunked)->Arg(1 << 10)->Arg(1 << 16);

void BM_QueryCompile(benchmark::State& state) {
  for (auto _ : state) {
    auto query =
        xpath::ParseQuery("//pub[year>2000]//book[author]//name/text()");
    benchmark::DoNotOptimize(query);
  }
}
BENCHMARK(BM_QueryCompile);

void BM_HpdtBuild(benchmark::State& state) {
  // HPDT size doubles per delayed predicate; range(0) = predicate count.
  std::string text;
  for (int i = 0; i < state.range(0); ++i) text += "/a[b]";
  text += "/text()";
  auto query = xpath::ParseQuery(text);
  for (auto _ : state) {
    auto hpdt = core::Hpdt::Build(*query);
    benchmark::DoNotOptimize(hpdt);
  }
  auto hpdt = core::Hpdt::Build(*query);
  state.counters["bpdts"] = static_cast<double>((*hpdt)->bpdt_count());
}
BENCHMARK(BM_HpdtBuild)->Arg(2)->Arg(6)->Arg(10);

template <typename Engine>
void RunEngine(benchmark::State& state, const char* query_text,
               const std::string& xml) {
  auto query = xpath::ParseQuery(query_text);
  core::CountingSink sink;
  auto engine = Engine::Create(*query, &sink);
  if (!engine.ok()) {
    state.SkipWithError(engine.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    xml::SaxParser parser(engine->get());
    Status status = parser.Parse(xml);
    benchmark::DoNotOptimize(status);
  }
  ReportThroughput(state, xml.size());
}

// Ablation: the cost of nondeterminism. Identical closure-free query,
// identical input; the only difference is the engine machinery.
void BM_XsqNc_ClosureFree(benchmark::State& state) {
  RunEngine<core::XsqNcEngine>(
      state, "/dblp/inproceedings[author]/title/text()", DblpCorpus());
}
BENCHMARK(BM_XsqNc_ClosureFree);

void BM_XsqF_ClosureFree(benchmark::State& state) {
  RunEngine<core::XsqEngine>(
      state, "/dblp/inproceedings[author]/title/text()", DblpCorpus());
}
BENCHMARK(BM_XsqF_ClosureFree);

void BM_LazyDfa_PredicateFree(benchmark::State& state) {
  RunEngine<lazydfa::LazyDfaEngine>(
      state, "/dblp/inproceedings/title/text()", DblpCorpus());
}
BENCHMARK(BM_LazyDfa_PredicateFree);

// Ablation: closure depth on recursive data - each extra '//' step
// multiplies the live match chains.
void BM_XsqF_ClosureDepth(benchmark::State& state) {
  std::string query;
  for (int i = 0; i < state.range(0); ++i) query += "//pub";
  query += "//book/title/text()";
  RunEngine<core::XsqEngine>(state, query.c_str(), RecursiveCorpus());
}
BENCHMARK(BM_XsqF_ClosureDepth)->Arg(1)->Arg(2)->Arg(3);

void BM_XsqF_RecursiveClosurePredicates(benchmark::State& state) {
  RunEngine<core::XsqEngine>(
      state, "//pub[year]//book[@id]/title/text()", RecursiveCorpus());
}
BENCHMARK(BM_XsqF_RecursiveClosurePredicates);

void BM_DomBuild(benchmark::State& state) {
  const std::string& xml = DblpCorpus();
  for (auto _ : state) {
    auto doc = dom::BuildFromString(xml);
    benchmark::DoNotOptimize(doc);
  }
  ReportThroughput(state, xml.size());
}
BENCHMARK(BM_DomBuild);

void BM_DomEvaluate(benchmark::State& state) {
  auto doc = dom::BuildFromString(DblpCorpus());
  auto query = xpath::ParseQuery("/dblp/inproceedings[author]/title/text()");
  for (auto _ : state) {
    auto result = dom::Evaluate(*doc, *query);
    benchmark::DoNotOptimize(result);
  }
  ReportThroughput(state, DblpCorpus().size());
}
BENCHMARK(BM_DomEvaluate);

// Aggregation path: stat-buffer updates instead of item emission.
void BM_XsqF_Aggregation(benchmark::State& state) {
  RunEngine<core::XsqEngine>(state, "//book/price/sum()",
                             RecursiveCorpus());
}
BENCHMARK(BM_XsqF_Aggregation);

// Union ablation: one union branch vs two, same matched set.
void BM_XsqF_SingleBranch(benchmark::State& state) {
  RunEngine<core::XsqEngine>(state, "/dblp/article/title/text()",
                             DblpCorpus());
}
BENCHMARK(BM_XsqF_SingleBranch);

void BM_XsqF_UnionTwoBranches(benchmark::State& state) {
  RunEngine<core::XsqEngine>(
      state, "/dblp/article/title/text() | /dblp/inproceedings/title/text()",
      DblpCorpus());
}
BENCHMARK(BM_XsqF_UnionTwoBranches);

// XSM chained-transducer throughput for the Section 5 comparison.
void BM_Xsm_ClosureFree(benchmark::State& state) {
  RunEngine<xsm::XsmEngine>(
      state, "/dblp/inproceedings[author]/title/text()", DblpCorpus());
}
BENCHMARK(BM_Xsm_ClosureFree);

// Streaming DTD validation throughput (pushdown validator).
void BM_DtdValidation(benchmark::State& state) {
  static const char* kDblpDtd =
      "<!ELEMENT dblp (article|inproceedings)*>"
      "<!ELEMENT article (author*,title,year,journal,pages)>"
      "<!ELEMENT inproceedings (author*,title,year,booktitle,pages)>"
      "<!ATTLIST article key CDATA #REQUIRED>"
      "<!ATTLIST inproceedings key CDATA #REQUIRED>"
      "<!ELEMENT author (#PCDATA)><!ELEMENT title (#PCDATA)>"
      "<!ELEMENT year (#PCDATA)><!ELEMENT journal (#PCDATA)>"
      "<!ELEMENT booktitle (#PCDATA)><!ELEMENT pages (#PCDATA)>";
  auto dtd = dtd::Dtd::Parse(kDblpDtd);
  if (!dtd.ok()) {
    state.SkipWithError(dtd.status().ToString().c_str());
    return;
  }
  const std::string& xml = DblpCorpus();
  for (auto _ : state) {
    Status status = dtd::ValidateDocument(*dtd, xml, "dblp");
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
  }
  ReportThroughput(state, xml.size());
}
BENCHMARK(BM_DtdValidation);

// Shared-NFA filtering cost per document, by subscription count.
void BM_FilterDocument(benchmark::State& state) {
  filter::FilterEngine engine;
  for (int i = 0; i < state.range(0); ++i) {
    std::string query = i % 2 == 0 ? "/dblp/article/title" : "//author";
    query += "";  // queries repeat; sharing collapses them
    if (!engine.AddQuery(query).ok()) {
      state.SkipWithError("AddQuery failed");
      return;
    }
  }
  const std::string doc = datagen::GenerateDblp(2000, 1);
  for (auto _ : state) {
    auto matched = engine.FilterDocument(doc);
    benchmark::DoNotOptimize(matched);
  }
  ReportThroughput(state, doc.size());
}
BENCHMARK(BM_FilterDocument)->Arg(8)->Arg(128);

// Full-text index construction (the XQEngine preprocessing phase).
void BM_TextIndexBuild(benchmark::State& state) {
  const std::string xml = datagen::GenerateShake(1u << 20, 1);
  for (auto _ : state) {
    auto engine = textindex::TextIndexEngine::Build(xml);
    benchmark::DoNotOptimize(engine);
  }
  ReportThroughput(state, xml.size());
}
BENCHMARK(BM_TextIndexBuild);

}  // namespace
}  // namespace xsq

BENCHMARK_MAIN();
