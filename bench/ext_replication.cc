// Extension experiment: the replication plane (ReplicationConfig
// factor >= 2), enforced by exit status against real xsqd shard
// processes (argv[1] names the binary; the ctest registration passes
// $<TARGET_FILE:xsqd>). rf=2 over 3 shards throughout:
//
//   (a) fanout placement: after RECORD + WaitIdle every tape resides
//       on exactly its owner set (primary + next ring owner), nothing
//       is over-replicated, and the replication queue reports zero
//       failures;
//   (b) write overhead: client-observed RECORD p50 at rf=2 is at most
//       15% above rf=1 over the same shards — the replica copies ride
//       the asynchronous fanout queue, not the client's ACK path;
//   (c) SIGKILL failover: one shard killed -9 mid-workload, then 100%
//       of RUNCACHED requests for its keys succeed with ZERO client
//       re-records and byte-identical reply blocks — first through
//       transport failover while the corpse is still in the ring,
//       then through remapped ownership after one probe pass;
//   (d) anti-entropy: one probe pass plus one sweep after the kill
//       restores the replication factor among the survivors — every
//       key ends up resident on all of its (now two) live owners.
//
// Any violated bound fails the run (exit status 1).
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/router.h"
#include "datagen/generators.h"
#include "fig_util.h"
#include "net/client.h"
#include "net/line_protocol.h"
#include "service/query_service.h"

namespace xsq::bench {
namespace {

using cluster::Router;
using cluster::RouterConfig;
using cluster::ShardAddress;
using cluster::ShardHealth;
using net::LineProtocol;

constexpr const char* kQuery = "/dblp/article/title/text()";
constexpr double kRecordOverheadBound = 0.15;  // rf=2 vs rf=1 p50

// One forked xsqd: --listen=0, stdin parked on /dev/null, stdout piped
// back so the parent can read the LISTENING banner. Kill(SIGKILL) is
// leg (c)'s failure injection.
class ShardProcess {
 public:
  bool Start(const std::string& binary) {
    int pipefd[2];
    if (::pipe(pipefd) != 0) return false;
    pid_ = ::fork();
    if (pid_ < 0) return false;
    if (pid_ == 0) {
      ::dup2(pipefd[1], STDOUT_FILENO);
      ::close(pipefd[0]);
      ::close(pipefd[1]);
      int devnull = ::open("/dev/null", O_RDONLY);
      if (devnull >= 0) ::dup2(devnull, STDIN_FILENO);
      // --doc-cache=0 (unlimited): leg (b)'s throwaway corpus must not
      // LRU-evict the replicated documents leg (d) audits.
      ::execl(binary.c_str(), binary.c_str(), "--listen=0", "--workers=2",
              "--doc-cache=0", static_cast<char*>(nullptr));
      std::_Exit(127);
    }
    ::close(pipefd[1]);
    // Byte-at-a-time: the pipe stays open for the daemon's lifetime, so
    // a buffered reader would block forever.
    std::string banner;
    char ch = 0;
    while (banner.find('\n') == std::string::npos &&
           ::read(pipefd[0], &ch, 1) == 1) {
      banner.push_back(ch);
    }
    out_fd_ = pipefd[0];
    unsigned port = 0;
    if (std::sscanf(banner.c_str(), "LISTENING %u", &port) != 1 ||
        port == 0) {
      Kill(SIGKILL);
      return false;
    }
    port_ = static_cast<uint16_t>(port);
    return true;
  }

  void Kill(int sig) {
    if (pid_ > 0) {
      ::kill(pid_, sig);
      ::waitpid(pid_, nullptr, 0);
      pid_ = -1;
    }
    if (out_fd_ >= 0) {
      ::close(out_fd_);
      out_fd_ = -1;
    }
  }

  ~ShardProcess() { Kill(SIGTERM); }

  uint16_t port() const { return port_; }

 private:
  pid_t pid_ = -1;
  int out_fd_ = -1;
  uint16_t port_ = 0;
};

std::unique_ptr<Router> MakeRouter(
    const std::vector<std::unique_ptr<ShardProcess>>& shards, size_t factor) {
  RouterConfig config;
  for (const auto& shard : shards) {
    config.shards.push_back(ShardAddress{"127.0.0.1", shard->port()});
  }
  config.start_prober = false;  // deterministic: health moves on ProbeNow
  config.probe.fail_threshold = 1;
  config.backend.connect_timeout_ms = 500;
  config.backend.client_max_retries = 0;  // failover is the router's job
  config.replication.factor = factor;
  auto created = Router::Create(std::move(config));
  if (!created.ok()) {
    std::fprintf(stderr, "router init failed: %s\n",
                 created.status().ToString().c_str());
    return nullptr;
  }
  (*created)->ProbeNow();
  return *std::move(created);
}

// The shard's resident-document inventory, straight from its
// REPLSTATUS verb over a throwaway connection.
bool Inventory(uint16_t port, std::set<std::string>* docs) {
  net::ClientConfig config;
  config.port = port;
  net::Client direct(config);
  auto reply = direct.Request("REPLSTATUS");
  if (!reply.ok() || !reply->status.ok()) return false;
  docs->clear();
  for (const std::string& line : reply->lines) {
    if (line.rfind("DOC ", 0) != 0) continue;
    size_t end = line.find(' ', 4);
    docs->insert(line.substr(4, end - 4));
  }
  return true;
}

// Opens a session on `handler`; empty string on failure.
std::string OpenSession(net::ConnectionHandler* handler) {
  std::string opened;
  handler->HandleLine(std::string("OPEN ") + kQuery, &opened);
  if (opened.rfind("OK ", 0) != 0) {
    std::fprintf(stderr, "OPEN failed: %.200s\n", opened.c_str());
    return "";
  }
  return opened.substr(3, opened.find('\n') - 3);
}

// Replays every doc through the session and returns the reply blocks
// (they carry no session id, so they compare across sessions).
void ReplayDocs(net::ConnectionHandler* handler, const std::string& id,
                size_t docs, std::vector<std::string>* blocks) {
  blocks->clear();
  for (size_t i = 0; i < docs; ++i) {
    std::string reply;
    handler->HandleLine("RUNCACHED " + id + " rdoc" + std::to_string(i),
                        &reply);
    blocks->push_back(std::move(reply));
  }
}

// Replays every doc through one fresh session.
bool ReplayAll(net::ConnectionHandler* handler, size_t docs,
               std::vector<std::string>* blocks) {
  std::string id = OpenSession(handler);
  if (id.empty()) return false;
  ReplayDocs(handler, id, docs, blocks);
  std::string closed;
  handler->HandleLine("CLOSE " + id, &closed);
  return true;
}

// --------------------------------------------------- (a) fanout placement

int FanoutPlacement(Router* router, const std::vector<std::string>& docs,
                    bool* placed) {
  std::printf("\n(a) RECORD fan-out: every tape on exactly its owner set\n");
  auto handler = router->MakeHandler();
  for (size_t i = 0; i < docs.size(); ++i) {
    std::string out;
    handler->HandleLine("RECORD rdoc" + std::to_string(i) + " " +
                            LineProtocol::Escape(docs[i]),
                        &out);
    if (out.rfind("OK ", 0) != 0) {
      std::fprintf(stderr, "RECORD failed: %.200s\n", out.c_str());
      return 1;
    }
  }
  if (!router->replicator()->WaitIdle()) {
    std::fprintf(stderr, "replication queue did not drain\n");
    return 1;
  }

  std::vector<std::set<std::string>> resident(router->shard_count());
  for (size_t s = 0; s < router->shard_count(); ++s) {
    if (!Inventory(router->backend(s)->address().port, &resident[s])) {
      return 1;
    }
  }

  size_t exact = 0;
  for (size_t i = 0; i < docs.size(); ++i) {
    std::string name = "rdoc" + std::to_string(i);
    std::vector<size_t> owners = router->shard_map().Owners(
        name, router->replication_factor(), router->ServingMask());
    bool ok = owners.size() == router->replication_factor();
    for (size_t s = 0; s < router->shard_count(); ++s) {
      bool should = std::find(owners.begin(), owners.end(), s) != owners.end();
      ok = ok && resident[s].count(name) == (should ? 1u : 0u);
    }
    if (ok) ++exact;
  }
  auto counters = router->replicator()->counters();
  *placed = exact == docs.size() && counters.failed == 0 &&
            counters.pending == 0 && counters.fanouts == docs.size();

  TablePrinter table({"Quantity", "Value"});
  table.AddRow({"documents", std::to_string(docs.size())});
  table.AddRow({"exact owner-set residency",
                std::to_string(exact) + "/" + std::to_string(docs.size())});
  table.AddRow({"fanouts enqueued", std::to_string(counters.fanouts)});
  table.AddRow({"jobs delivered", std::to_string(counters.repaired)});
  table.AddRow({"jobs failed", std::to_string(counters.failed)});
  table.Print();
  std::printf("bound: every tape on its owner set, zero failures -> %s\n",
              *placed ? "PASS" : "FAIL");
  return 0;
}

// ----------------------------------------------------- (b) write overhead

double Percentile50(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples.empty() ? 0.0 : samples[samples.size() / 2];
}

int RecordOverhead(Router* rf1, Router* rf2, bool* within) {
  std::printf("\n(b) Client-observed RECORD p50, rf=2 vs rf=1\n");
  const std::string payload =
      LineProtocol::Escape(datagen::GenerateDblp(ScaledBytes(32u << 10), 9));
  constexpr int kWarmup = 10;
  constexpr int kSamples = 120;
  auto handler1 = rf1->MakeHandler();
  auto handler2 = rf2->MakeHandler();
  auto one = [&](net::ConnectionHandler* handler, const char* prefix, int i,
                 double* elapsed) {
    std::string out;
    auto start = std::chrono::steady_clock::now();
    bool ok = true;
    handler->HandleLine(std::string("RECORD ") + prefix + std::to_string(i) +
                            " " + payload,
                        &out);
    ok = out.rfind("OK ", 0) == 0;
    *elapsed = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count();
    return ok;
  };
  // Strictly alternating samples so both variants see the same load
  // profile (the rf=2 fanout workers run concurrently, as they would
  // in production).
  std::vector<double> p1;
  std::vector<double> p2;
  double elapsed = 0.0;
  for (int i = 0; i < kWarmup + kSamples; ++i) {
    if (!one(handler1.get(), "p1doc", i, &elapsed)) return 1;
    if (i >= kWarmup) p1.push_back(elapsed);
    if (!one(handler2.get(), "p2doc", i, &elapsed)) return 1;
    if (i >= kWarmup) p2.push_back(elapsed);
  }
  if (!rf2->replicator()->WaitIdle()) return 1;

  double p50_rf1 = Percentile50(p1);
  double p50_rf2 = Percentile50(p2);
  double overhead = p50_rf1 > 0.0 ? p50_rf2 / p50_rf1 - 1.0 : 0.0;
  if (overhead < 0.0) overhead = 0.0;  // noise floor: rf=2 won
  *within = overhead <= kRecordOverheadBound;

  TablePrinter table({"Variant", "RECORD p50 (us)", "Overhead"});
  table.AddRow({"rf=1", FormatDouble(p50_rf1 * 1e6, 1), "-"});
  table.AddRow({"rf=2", FormatDouble(p50_rf2 * 1e6, 1),
                FormatDouble(overhead * 100.0, 2) + "%"});
  table.Print();
  std::printf("bound: <= %.0f%% -> %s\n", kRecordOverheadBound * 100.0,
              *within ? "PASS" : "FAIL");
  return 0;
}

// ---------------------------------------------------- (c) SIGKILL failover

int KillFailover(std::vector<std::unique_ptr<ShardProcess>>* shards,
                 Router* router, size_t docs, size_t* victim_out,
                 bool* serves) {
  std::printf("\n(c) SIGKILL the primary: replicas serve, zero re-records\n");

  // Baseline blocks before the kill, through a session that stays open
  // across the kill: pre-probe the corpse still looks serving, so a
  // fresh OPEN could land on it — an already-open session replays
  // through per-document failover instead.
  auto handler = router->MakeHandler();
  std::string session = OpenSession(handler.get());
  if (session.empty()) return 1;
  std::vector<std::string> baseline;
  ReplayDocs(handler.get(), session, docs, &baseline);

  // Kill the primary owner of the most keys: the worst case.
  std::map<size_t, size_t> primaries;
  for (size_t i = 0; i < docs; ++i) {
    auto owner = router->OwnerOf("rdoc" + std::to_string(i));
    if (!owner.has_value()) return 1;
    ++primaries[*owner];
  }
  size_t victim = primaries.begin()->first;
  for (const auto& [shard, keys] : primaries) {
    if (keys > primaries[victim]) victim = shard;
  }
  *victim_out = victim;
  const size_t victim_keys = primaries[victim];
  const uint64_t failovers_before = router->own_counters().failovers_total;
  (*shards)[victim]->Kill(SIGKILL);

  // Window 1: the corpse is still in the ring — RUNCACHED reaches it,
  // fails at transport, and fails over to the replica that already
  // holds the tape. No RECORD is ever issued.
  std::vector<std::string> window1;
  ReplayDocs(handler.get(), session, docs, &window1);
  std::string closed;
  handler->HandleLine("CLOSE " + session, &closed);  // primary may be dead
  size_t match1 = 0;
  for (size_t i = 0; i < docs; ++i) {
    if (window1[i] == baseline[i]) ++match1;
  }
  const uint64_t failovers =
      router->own_counters().failovers_total - failovers_before;

  // Window 2: one probe pass remaps the victim's keys onto the shard
  // the fanout already populated.
  router->ProbeNow();
  bool marked_dead = router->shard_health(victim) == ShardHealth::kDead;
  auto fresh = router->MakeHandler();
  std::vector<std::string> window2;
  if (!ReplayAll(fresh.get(), docs, &window2)) return 1;
  size_t match2 = 0;
  for (size_t i = 0; i < docs; ++i) {
    if (window2[i] == baseline[i]) ++match2;
  }

  *serves = match1 == docs && match2 == docs && marked_dead && failovers > 0;

  TablePrinter table({"Quantity", "Value"});
  table.AddRow({"victim shard", std::to_string(victim)});
  table.AddRow({"victim's primary keys", std::to_string(victim_keys)});
  table.AddRow({"client re-records", "0"});
  table.AddRow({"pre-probe replays identical",
                std::to_string(match1) + "/" + std::to_string(docs)});
  table.AddRow({"transport failovers", std::to_string(failovers)});
  table.AddRow({"dead after one probe", marked_dead ? "yes" : "no"});
  table.AddRow({"post-probe replays identical",
                std::to_string(match2) + "/" + std::to_string(docs)});
  table.Print();
  std::printf(
      "bound: 100%% of reads served from replicas, byte-identical, zero "
      "re-records -> %s\n",
      *serves ? "PASS" : "FAIL");
  return 0;
}

// -------------------------------------------------------- (d) anti-entropy

int AntiEntropy(Router* router, size_t docs, size_t victim, bool* restored) {
  std::printf("\n(d) Anti-entropy: one probe pass + sweep restores rf\n");
  // The mask-changing probe pass in leg (c) already requested a sweep;
  // a synchronous pass + WaitIdle makes the check deterministic.
  router->replicator()->SweepNow();
  if (!router->replicator()->WaitIdle()) {
    std::fprintf(stderr, "anti-entropy repairs did not drain\n");
    return 1;
  }

  // With two live owners left, full replication means every key is
  // resident on BOTH survivors.
  std::vector<std::set<std::string>> resident(router->shard_count());
  for (size_t s = 0; s < router->shard_count(); ++s) {
    if (s == victim) continue;
    if (!Inventory(router->backend(s)->address().port, &resident[s])) {
      return 1;
    }
  }
  size_t fully_replicated = 0;
  for (size_t i = 0; i < docs; ++i) {
    std::string name = "rdoc" + std::to_string(i);
    bool everywhere = true;
    for (size_t s = 0; s < router->shard_count(); ++s) {
      if (s == victim) continue;
      everywhere = everywhere && resident[s].count(name) == 1;
    }
    if (everywhere) ++fully_replicated;
  }
  auto counters = router->replicator()->counters();
  *restored = fully_replicated == docs && counters.sweeps >= 1 &&
              counters.pending == 0;

  // The operator's view of the same fact.
  auto handler = router->MakeHandler();
  std::string repl_status;
  handler->HandleLine("REPLSTATUS", &repl_status);
  repl_status.resize(repl_status.find('\n'));

  TablePrinter table({"Quantity", "Value"});
  table.AddRow({"keys on every live owner",
                std::to_string(fully_replicated) + "/" +
                    std::to_string(docs)});
  table.AddRow({"sweeps completed", std::to_string(counters.sweeps)});
  table.AddRow({"jobs delivered", std::to_string(counters.repaired)});
  table.AddRow({"jobs failed", std::to_string(counters.failed)});
  table.AddRow({"REPLSTATUS", repl_status});
  table.Print();
  std::printf("bound: factor restored among survivors -> %s\n",
              *restored ? "PASS" : "FAIL");
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <path-to-xsqd-binary>\n", argv[0]);
    return 2;
  }
  PrintHeader("Extension: replication",
              "rf=2 fanout placement + RECORD overhead + SIGKILL "
              "replica serving + anti-entropy repair");
  std::vector<std::string> docs;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    docs.push_back(datagen::GenerateDblp(ScaledBytes(128u << 10), seed));
  }

  std::vector<std::unique_ptr<ShardProcess>> shards;
  for (size_t i = 0; i < 3; ++i) {
    auto shard = std::make_unique<ShardProcess>();
    if (!shard->Start(argv[1])) {
      std::fprintf(stderr, "failed to start shard %zu\n", i);
      return 1;
    }
    shards.push_back(std::move(shard));
  }
  // Two routers over the SAME shard processes: the rf=1 comparator uses
  // distinct document names, so the corpora never collide.
  std::unique_ptr<Router> rf2 = MakeRouter(shards, 2);
  std::unique_ptr<Router> rf1 = MakeRouter(shards, 1);
  if (rf2 == nullptr || rf1 == nullptr) return 1;

  bool placed = false;
  bool within = false;
  bool serves = false;
  bool restored = false;
  size_t victim = 0;
  if (FanoutPlacement(rf2.get(), docs, &placed) != 0) return 1;
  if (RecordOverhead(rf1.get(), rf2.get(), &within) != 0) return 1;
  if (KillFailover(&shards, rf2.get(), docs.size(), &victim, &serves) != 0) {
    return 1;
  }
  if (AntiEntropy(rf2.get(), docs.size(), victim, &restored) != 0) return 1;

  std::printf(
      "\nExpected shape: tapes land on exactly their owner sets, the\n"
      "client's RECORD ACK path is unchanged (replicas ride the async\n"
      "queue), a SIGKILLed primary costs zero re-records because the\n"
      "next ring owner already holds every tape, and one probe pass\n"
      "plus one sweep re-replicates the dead shard's keys from the\n"
      "surviving holders.\n");
  return placed && within && serves && restored ? 0 : 1;
}

}  // namespace
}  // namespace xsq::bench

int main(int argc, char** argv) { return xsq::bench::Main(argc, argv); }
