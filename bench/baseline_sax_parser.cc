#include "baseline_sax_parser.h"

#include <cstring>

#include "common/strings.h"

namespace xsq::bench::baseline {

using xml::Attribute;
using xml::OwnedAttribute;

namespace {

bool IsNameStartChar(unsigned char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':' || c >= 0x80;
}

bool IsNameChar(unsigned char c) {
  return IsNameStartChar(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
}

bool IsValidName(std::string_view name) {
  if (name.empty() || !IsNameStartChar(name[0])) return false;
  for (size_t i = 1; i < name.size(); ++i) {
    if (!IsNameChar(name[i])) return false;
  }
  return true;
}

bool AppendUtf8(uint32_t codepoint, std::string* out) {
  if (codepoint <= 0x7f) {
    out->push_back(static_cast<char>(codepoint));
  } else if (codepoint <= 0x7ff) {
    out->push_back(static_cast<char>(0xc0 | (codepoint >> 6)));
    out->push_back(static_cast<char>(0x80 | (codepoint & 0x3f)));
  } else if (codepoint <= 0xffff) {
    if (codepoint >= 0xd800 && codepoint <= 0xdfff) return false;
    out->push_back(static_cast<char>(0xe0 | (codepoint >> 12)));
    out->push_back(static_cast<char>(0x80 | ((codepoint >> 6) & 0x3f)));
    out->push_back(static_cast<char>(0x80 | (codepoint & 0x3f)));
  } else if (codepoint <= 0x10ffff) {
    out->push_back(static_cast<char>(0xf0 | (codepoint >> 18)));
    out->push_back(static_cast<char>(0x80 | ((codepoint >> 12) & 0x3f)));
    out->push_back(static_cast<char>(0x80 | ((codepoint >> 6) & 0x3f)));
    out->push_back(static_cast<char>(0x80 | (codepoint & 0x3f)));
  } else {
    return false;
  }
  return true;
}

// The original byte-at-a-time quote-aware '>' finder.
size_t FindTagEnd(std::string_view s, bool* saw_lt) {
  char quote = '\0';
  *saw_lt = false;
  for (size_t i = 1; i < s.size(); ++i) {  // s[0] is '<'
    char c = s[i];
    if (quote != '\0') {
      if (c == quote) quote = '\0';
    } else if (c == '"' || c == '\'') {
      quote = c;
    } else if (c == '>') {
      return i;
    } else if (c == '<') {
      *saw_lt = true;
      return std::string_view::npos;
    }
  }
  return std::string_view::npos;
}

bool IsWhitespaceOnly(std::string_view s) {
  for (char c : s) {
    if (!IsXmlWhitespace(c)) return false;
  }
  return true;
}

}  // namespace

void BaselineSaxParser::Reset() {
  pending_.clear();
  text_.clear();
  has_pending_text_ = false;
  open_elements_.clear();
  attributes_.clear();
  attribute_views_.clear();
  seen_root_ = false;
  document_begun_ = false;
  bom_checked_ = false;
  finished_ = false;
  bytes_consumed_ = 0;
  line_ = 1;
  column_ = 1;
}

Status BaselineSaxParser::ErrorHere(const std::string& message) const {
  return Status::ParseError(message + " at line " + std::to_string(line_) +
                            ", column " + std::to_string(column_));
}

void BaselineSaxParser::AdvancePosition(std::string_view consumed_text) {
  bytes_consumed_ += consumed_text.size();
  size_t last_newline = consumed_text.rfind('\n');
  if (last_newline == std::string_view::npos) {
    column_ += static_cast<int>(consumed_text.size());
    return;
  }
  const char* p = consumed_text.data();
  const char* end = p + consumed_text.size();
  int newlines = 0;
  while ((p = static_cast<const char*>(
              memchr(p, '\n', static_cast<size_t>(end - p)))) != nullptr) {
    ++newlines;
    ++p;
  }
  line_ += newlines;
  column_ = static_cast<int>(consumed_text.size() - last_newline);
}

Status BaselineSaxParser::DecodeEntities(std::string_view raw,
                                         std::string* out) {
  size_t pos = 0;
  while (pos < raw.size()) {
    const char* amp = static_cast<const char*>(
        memchr(raw.data() + pos, '&', raw.size() - pos));
    if (amp == nullptr) {
      out->append(raw.data() + pos, raw.size() - pos);
      break;
    }
    size_t amp_pos = static_cast<size_t>(amp - raw.data());
    out->append(raw.data() + pos, amp_pos - pos);
    size_t semi = raw.find(';', amp_pos + 1);
    if (semi == std::string_view::npos) {
      return ErrorHere("unterminated entity reference");
    }
    if (semi - amp_pos - 1 > 64) {
      return ErrorHere("entity reference too long");
    }
    std::string_view name = raw.substr(amp_pos + 1, semi - amp_pos - 1);
    if (name == "#" || name == "#x" || name == "#X") {
      return ErrorHere("empty character reference '&" + std::string(name) +
                       ";'");
    }
    if (name == "lt") {
      out->push_back('<');
    } else if (name == "gt") {
      out->push_back('>');
    } else if (name == "amp") {
      out->push_back('&');
    } else if (name == "apos") {
      out->push_back('\'');
    } else if (name == "quot") {
      out->push_back('"');
    } else if (!name.empty() && name[0] == '#') {
      uint32_t code = 0;
      bool valid = name.size() > 1;
      if (name.size() > 2 && (name[1] == 'x' || name[1] == 'X')) {
        for (size_t i = 2; i < name.size() && valid; ++i) {
          char c = name[i];
          uint32_t digit;
          if (c >= '0' && c <= '9') {
            digit = static_cast<uint32_t>(c - '0');
          } else if (c >= 'a' && c <= 'f') {
            digit = static_cast<uint32_t>(c - 'a' + 10);
          } else if (c >= 'A' && c <= 'F') {
            digit = static_cast<uint32_t>(c - 'A' + 10);
          } else {
            valid = false;
            break;
          }
          code = code * 16 + digit;
          if (code > 0x10ffff) valid = false;
        }
        valid = valid && name.size() > 2;
      } else {
        for (size_t i = 1; i < name.size() && valid; ++i) {
          char c = name[i];
          if (c < '0' || c > '9') {
            valid = false;
            break;
          }
          code = code * 10 + static_cast<uint32_t>(c - '0');
          if (code > 0x10ffff) valid = false;
        }
      }
      if (!valid || !AppendUtf8(code, out)) {
        return ErrorHere("invalid character reference '&" + std::string(name) +
                         ";'");
      }
    } else {
      return ErrorHere("unknown entity reference '&" + std::string(name) +
                       ";'");
    }
    pos = semi + 1;
  }
  return Status::OK();
}

Status BaselineSaxParser::FlushText() {
  if (!has_pending_text_) return Status::OK();
  has_pending_text_ = false;
  if (open_elements_.empty()) {
    text_.clear();
    return ErrorHere("character data outside the root element");
  }
  handler_->OnText(open_elements_.back(), text_,
                   static_cast<int>(open_elements_.size()));
  text_.clear();
  return Status::OK();
}

Status BaselineSaxParser::ParseElementTag(std::string_view markup_body,
                                          bool self_closing) {
  XSQ_RETURN_IF_ERROR(FlushText());
  size_t pos = 0;
  while (pos < markup_body.size() &&
         IsNameChar(static_cast<unsigned char>(markup_body[pos]))) {
    ++pos;
  }
  std::string_view name = markup_body.substr(0, pos);
  if (!IsValidName(name)) {
    return ErrorHere("invalid element name '" + std::string(name) + "'");
  }

  attributes_.clear();
  while (true) {
    while (pos < markup_body.size() && IsXmlWhitespace(markup_body[pos])) {
      ++pos;
    }
    if (pos >= markup_body.size()) break;
    size_t name_start = pos;
    while (pos < markup_body.size() &&
           IsNameChar(static_cast<unsigned char>(markup_body[pos]))) {
      ++pos;
    }
    std::string_view attr_name =
        markup_body.substr(name_start, pos - name_start);
    if (!IsValidName(attr_name)) {
      return ErrorHere("invalid attribute name in element '" +
                       std::string(name) + "'");
    }
    while (pos < markup_body.size() && IsXmlWhitespace(markup_body[pos])) ++pos;
    if (pos >= markup_body.size() || markup_body[pos] != '=') {
      return ErrorHere("expected '=' after attribute '" +
                       std::string(attr_name) + "'");
    }
    ++pos;
    while (pos < markup_body.size() && IsXmlWhitespace(markup_body[pos])) ++pos;
    if (pos >= markup_body.size() ||
        (markup_body[pos] != '"' && markup_body[pos] != '\'')) {
      return ErrorHere("expected quoted value for attribute '" +
                       std::string(attr_name) + "'");
    }
    char quote = markup_body[pos];
    ++pos;
    size_t value_end = markup_body.find(quote, pos);
    if (value_end == std::string_view::npos) {
      return ErrorHere("unterminated value for attribute '" +
                       std::string(attr_name) + "'");
    }
    std::string_view raw_value = markup_body.substr(pos, value_end - pos);
    if (raw_value.find('<') != std::string_view::npos) {
      return ErrorHere("'<' is not allowed in attribute values");
    }
    for (const OwnedAttribute& existing : attributes_) {
      if (existing.name == attr_name) {
        return ErrorHere("duplicate attribute '" + std::string(attr_name) +
                         "'");
      }
    }
    OwnedAttribute attr;
    attr.name.assign(attr_name);
    XSQ_RETURN_IF_ERROR(DecodeEntities(raw_value, &attr.value));
    attributes_.push_back(std::move(attr));
    pos = value_end + 1;
    if (pos < markup_body.size() && !IsXmlWhitespace(markup_body[pos])) {
      return ErrorHere("missing whitespace between attributes");
    }
  }

  if (open_elements_.empty()) {
    if (seen_root_) return ErrorHere("multiple root elements");
    seen_root_ = true;
  }
  open_elements_.emplace_back(name);
  int depth = static_cast<int>(open_elements_.size());
  attribute_views_.clear();
  for (const OwnedAttribute& attr : attributes_) {
    attribute_views_.push_back(Attribute{attr.name, attr.value});
  }
  handler_->OnBegin(name, attribute_views_, depth);
  if (self_closing) {
    handler_->OnEnd(name, depth);
    open_elements_.pop_back();
  }
  return Status::OK();
}

Status BaselineSaxParser::ParseEndTag(std::string_view markup_body) {
  XSQ_RETURN_IF_ERROR(FlushText());
  std::string_view name = TrimWhitespace(markup_body);
  if (!IsValidName(name)) {
    return ErrorHere("invalid end tag '</" + std::string(markup_body) + ">'");
  }
  if (open_elements_.empty()) {
    return ErrorHere("end tag '</" + std::string(name) +
                     ">' with no open element");
  }
  if (open_elements_.back() != name) {
    return ErrorHere("end tag '</" + std::string(name) +
                     ">' does not match open element '<" +
                     open_elements_.back() + ">'");
  }
  handler_->OnEnd(name, static_cast<int>(open_elements_.size()));
  open_elements_.pop_back();
  return Status::OK();
}

Status BaselineSaxParser::HandleMarkup(std::string_view data, size_t* consumed,
                                       Progress* progress) {
  *progress = Progress::kNeedMore;
  *consumed = 0;
  if (data.size() < 2) return Status::OK();

  char kind = data[1];
  if (kind == '/') {
    bool saw_lt = false;
    size_t gt = FindTagEnd(data, &saw_lt);
    if (saw_lt) return ErrorHere("'<' inside end tag");
    if (gt == std::string_view::npos) return Status::OK();
    XSQ_RETURN_IF_ERROR(ParseEndTag(data.substr(2, gt - 2)));
    *consumed = gt + 1;
    *progress = Progress::kOk;
    return Status::OK();
  }

  if (kind == '!') {
    static constexpr std::string_view kComment = "<!--";
    static constexpr std::string_view kCdata = "<![CDATA[";
    if (data.size() < kComment.size() &&
        kComment.substr(0, data.size()) == data) {
      return Status::OK();  // could still become a comment
    }
    if (data.substr(0, kComment.size()) == kComment) {
      size_t end = data.find("-->", kComment.size());
      if (end == std::string_view::npos) return Status::OK();
      *consumed = end + 3;
      *progress = Progress::kOk;
      return Status::OK();
    }
    if (data.size() < kCdata.size() && kCdata.substr(0, data.size()) == data) {
      return Status::OK();
    }
    if (data.substr(0, kCdata.size()) == kCdata) {
      size_t end = data.find("]]>", kCdata.size());
      if (end == std::string_view::npos) return Status::OK();
      if (open_elements_.empty()) {
        return ErrorHere("CDATA section outside the root element");
      }
      text_.append(data.data() + kCdata.size(), end - kCdata.size());
      has_pending_text_ = true;
      *consumed = end + 3;
      *progress = Progress::kOk;
      return Status::OK();
    }
    // DOCTYPE or other declaration: skip to the matching '>', honoring a
    // bracketed internal subset and quoted strings.
    char quote = '\0';
    bool in_subset = false;
    size_t subset_begin = 0;
    size_t subset_end = 0;
    for (size_t i = 2; i < data.size(); ++i) {
      char c = data[i];
      if (quote != '\0') {
        if (c == quote) quote = '\0';
      } else if (c == '"' || c == '\'') {
        quote = c;
      } else if (c == '[') {
        in_subset = true;
        if (subset_begin == 0) subset_begin = i + 1;
      } else if (c == ']') {
        in_subset = false;
        subset_end = i;
      } else if (c == '>' && !in_subset) {
        static constexpr std::string_view kDoctype = "<!DOCTYPE";
        if (data.substr(0, kDoctype.size()) == kDoctype) {
          size_t name_begin = kDoctype.size();
          while (name_begin < i && IsXmlWhitespace(data[name_begin])) {
            ++name_begin;
          }
          size_t name_end = name_begin;
          while (name_end < i &&
                 IsNameChar(static_cast<unsigned char>(data[name_end]))) {
            ++name_end;
          }
          std::string_view subset =
              subset_end > subset_begin
                  ? data.substr(subset_begin, subset_end - subset_begin)
                  : std::string_view();
          handler_->OnDoctype(data.substr(name_begin, name_end - name_begin),
                              subset);
        }
        *consumed = i + 1;
        *progress = Progress::kOk;
        return Status::OK();
      }
    }
    return Status::OK();  // need more input
  }

  if (kind == '?') {
    size_t end = data.find("?>", 2);
    if (end == std::string_view::npos) return Status::OK();
    *consumed = end + 2;
    *progress = Progress::kOk;
    return Status::OK();
  }

  // Ordinary element start tag.
  bool saw_lt = false;
  size_t gt = FindTagEnd(data, &saw_lt);
  if (saw_lt) return ErrorHere("'<' inside element tag");
  if (gt == std::string_view::npos) return Status::OK();
  std::string_view body = data.substr(1, gt - 1);
  bool self_closing = !body.empty() && body.back() == '/';
  if (self_closing) body.remove_suffix(1);
  XSQ_RETURN_IF_ERROR(ParseElementTag(body, self_closing));
  *consumed = gt + 1;
  *progress = Progress::kOk;
  return Status::OK();
}

Status BaselineSaxParser::ParseBuffer(std::string_view data, size_t* consumed,
                                      bool at_eof) {
  size_t pos = 0;
  if (!bom_checked_) {
    if (!data.empty() && data[0] == '\xef') {
      if (data.size() < 3 && !at_eof) {
        *consumed = 0;
        return Status::OK();  // wait for the full mark
      }
      if (data.substr(0, 3) == "\xef\xbb\xbf") {
        pos = 3;
        bytes_consumed_ += 3;
      }
    }
    bom_checked_ = true;
  }
  while (pos < data.size()) {
    if (data[pos] == '<') {
      size_t markup_consumed = 0;
      Progress progress = Progress::kNeedMore;
      XSQ_RETURN_IF_ERROR(
          HandleMarkup(data.substr(pos), &markup_consumed, &progress));
      if (progress == Progress::kNeedMore) {
        if (at_eof) {
          return ErrorHere("unexpected end of document inside markup");
        }
        break;
      }
      AdvancePosition(data.substr(pos, markup_consumed));
      pos += markup_consumed;
      continue;
    }

    const char* lt = static_cast<const char*>(
        memchr(data.data() + pos, '<', data.size() - pos));
    size_t run_end =
        lt == nullptr ? data.size() : static_cast<size_t>(lt - data.data());
    std::string_view raw = data.substr(pos, run_end - pos);

    if (lt == nullptr && !at_eof) {
      // Incomplete text run: consume the prefix that cannot be affected
      // by future bytes (everything before a possibly-unterminated
      // entity).
      size_t safe_len = raw.size();
      size_t last_amp = raw.rfind('&');
      if (last_amp != std::string_view::npos &&
          raw.find(';', last_amp) == std::string_view::npos) {
        safe_len = last_amp;
      }
      raw = raw.substr(0, safe_len);
      run_end = pos + safe_len;
      if (raw.empty()) break;
    }

    if (open_elements_.empty()) {
      if (!IsWhitespaceOnly(raw)) {
        return ErrorHere("character data outside the root element");
      }
    } else {
      XSQ_RETURN_IF_ERROR(DecodeEntities(raw, &text_));
      has_pending_text_ = true;
    }
    AdvancePosition(raw);
    pos = run_end;
    if (lt == nullptr && !at_eof) break;
  }
  *consumed = pos;
  return Status::OK();
}

Status BaselineSaxParser::Feed(std::string_view chunk) {
  if (finished_) {
    return Status::Internal("Feed called after Finish");
  }
  if (!document_begun_) {
    document_begun_ = true;
    handler_->OnDocumentBegin();
  }
  size_t consumed = 0;
  if (pending_.empty()) {
    XSQ_RETURN_IF_ERROR(ParseBuffer(chunk, &consumed, /*at_eof=*/false));
    pending_.assign(chunk.substr(consumed));
  } else {
    pending_.append(chunk);
    XSQ_RETURN_IF_ERROR(ParseBuffer(pending_, &consumed, /*at_eof=*/false));
    pending_.erase(0, consumed);
  }
  return Status::OK();
}

Status BaselineSaxParser::Finish() {
  if (finished_) return Status::Internal("Finish called twice");
  if (!document_begun_) {
    document_begun_ = true;
    handler_->OnDocumentBegin();
  }
  size_t consumed = 0;
  XSQ_RETURN_IF_ERROR(ParseBuffer(pending_, &consumed, /*at_eof=*/true));
  pending_.erase(0, consumed);
  if (!pending_.empty()) {
    return ErrorHere("unexpected end of document inside markup");
  }
  if (!open_elements_.empty()) {
    return ErrorHere("unexpected end of document: element '<" +
                     open_elements_.back() + ">' is not closed");
  }
  if (!seen_root_) {
    return ErrorHere("document has no root element");
  }
  finished_ = true;
  handler_->OnDocumentEnd();
  return Status::OK();
}

Status BaselineSaxParser::Parse(std::string_view document) {
  XSQ_RETURN_IF_ERROR(Feed(document));
  return Finish();
}

}  // namespace xsq::bench::baseline
