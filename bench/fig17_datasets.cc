// Figure 17: relative throughput of the systems across the four
// datasets, using the per-dataset queries listed under the paper's
// figure.
#include <string>

#include "datagen/generators.h"
#include "fig_util.h"

namespace xsq::bench {
namespace {

int Main() {
  PrintHeader("Figure 17", "relative throughput by dataset");
  const struct {
    const char* name;
    std::string xml;
    const char* query;
  } datasets[] = {
      {"SHAKE", datagen::GenerateShake(ScaledBytes(4u << 20), 1),
       "/PLAY/ACT/SCENE/SPEECH/SPEAKER/text()"},
      {"NASA", datagen::GenerateNasa(ScaledBytes(6u << 20), 1),
       "/datasets/dataset/reference/source/other/name/text()"},
      {"DBLP", datagen::GenerateDblp(ScaledBytes(10u << 20), 1),
       "/dblp/article/title/text()"},
      {"PSD", datagen::GeneratePsd(ScaledBytes(16u << 20), 1),
       "/ProteinDatabase/ProteinEntry/reference/refinfo/authors/author/"
       "text()"},
  };
  const System systems[] = {System::kXsqNc, System::kXsqF,
                            System::kLazyDfa,  System::kDom,
                            System::kNaive,    System::kTextIndex};

  for (const auto& dataset : datasets) {
    Result<RunMeasurement> pure =
        RunBest(System::kPureParser, "", dataset.xml);
    if (!pure.ok()) return 1;
    std::printf("\n%s (%s): %s\n", dataset.name,
                FormatBytes(dataset.xml.size()).c_str(), dataset.query);
    TablePrinter table({"System", "Rel. throughput", "", "MB/s"});
    for (System system : systems) {
      Result<RunMeasurement> m = RunBest(system, dataset.query, dataset.xml);
      if (!m.ok()) return 1;
      if (!m->supported) {
        table.AddRow({SystemName(system), "(cannot handle the query)", "",
                      ""});
        continue;
      }
      double rel = RelativeThroughput(*m, *pure);
      table.AddRow({SystemName(system), FormatDouble(rel, 2), Bar(rel),
                    FormatDouble(m->throughput_mb_per_s(), 1)});
    }
    table.Print();
  }
  std::printf(
      "\nPaper shape check (Fig. 17): the streaming engines keep a\n"
      "roughly constant fraction of PureParser speed on every dataset,\n"
      "while the DOM engine degrades as datasets grow.\n");
  return 0;
}

}  // namespace
}  // namespace xsq::bench

int main() { return xsq::bench::Main(); }
