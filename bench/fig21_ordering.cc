// Figure 21: effect of data ordering on throughput. The ToXgene
// template produces <a id="k"><prior/>...10,000 fillers...<posterior/>
// </a> records; the three queries all return the empty set but decide
// it at different points of each record:
//
//   /data/a[@id=0]       decided at the begin event: skip everything
//   /data/a[prior=0]     decided... never early: buffering until </a>
//   /data/a[posterior=0] likewise buffered until the end of <a>
//
// (The paper writes /a[...]; our document wraps records in a <data>
// root, hence the /data prefix - same semantics.)
#include <string>

#include "datagen/generators.h"
#include "fig_util.h"

namespace xsq::bench {
namespace {

int Main() {
  PrintHeader("Figure 21", "effect of data ordering on throughput");
  const std::string xml =
      datagen::GenerateOrderingDataset(ScaledBytes(10u << 20), 10000);
  Result<RunMeasurement> pure = RunBest(System::kPureParser, "", xml);
  if (!pure.ok()) return 1;

  const char* queries[] = {"/data/a[prior=0]", "/data/a[posterior=0]",
                           "/data/a[@id=0]"};
  const System systems[] = {System::kXsqNc, System::kXsqF, System::kDom};

  for (System system : systems) {
    std::printf("\n%s\n", SystemName(system));
    TablePrinter table({"Query", "Rel. throughput", "", "Peak buffer"});
    for (const char* query : queries) {
      Result<RunMeasurement> m = RunBest(system, query, xml);
      if (!m.ok()) return 1;
      if (!m->supported) {
        table.AddRow({query, "(cannot handle the query)", "", ""});
        continue;
      }
      double rel = RelativeThroughput(*m, *pure);
      table.AddRow({query, FormatDouble(rel, 2), Bar(rel),
                    FormatBytes(m->peak_memory_bytes)});
    }
    table.Print();
  }
  std::printf(
      "\nPaper shape check (Fig. 21): XSQ-NC is markedly faster on\n"
      "[@id=0] (it can skip each <a> at its begin event) than on the\n"
      "two buffering queries; XSQ-F is less order-sensitive because it\n"
      "runs the same queue machinery either way; the DOM engine is\n"
      "insensitive to ordering since it evaluates in memory.\n");
  return 0;
}

}  // namespace
}  // namespace xsq::bench

int main() { return xsq::bench::Main(); }
