// Figure 22: effect of the result size on throughput. The ToXgene
// corpus has 10% <Red>, 30% <Green>, 60% <Blue> one-character elements
// under the root <a>; the three queries return 10%/30%/60% of the
// stream respectively.
#include <string>

#include "datagen/generators.h"
#include "fig_util.h"

namespace xsq::bench {
namespace {

int Main() {
  PrintHeader("Figure 22", "effect of result size on throughput");
  const std::string xml =
      datagen::GenerateColorDataset(ScaledBytes(10u << 20), 5);
  Result<RunMeasurement> pure = RunBest(System::kPureParser, "", xml);
  if (!pure.ok()) return 1;

  const struct {
    const char* label;
    const char* query;
  } queries[] = {
      {"/a/Red: 10%", "/a/Red/text()"},
      {"/a/Green: 30%", "/a/Green/text()"},
      {"/a/Blue: 60%", "/a/Blue/text()"},
  };
  const System systems[] = {System::kXsqNc, System::kXsqF,
                            System::kLazyDfa,  System::kDom,
                            System::kNaive,    System::kTextIndex};

  for (System system : systems) {
    std::printf("\n%s\n", SystemName(system));
    TablePrinter table({"Query", "Rel. throughput", "", "Items"});
    for (const auto& q : queries) {
      Result<RunMeasurement> m = RunBest(system, q.query, xml);
      if (!m.ok()) return 1;
      if (!m->supported) {
        table.AddRow({q.label, "(cannot handle the query)", "", ""});
        continue;
      }
      double rel = RelativeThroughput(*m, *pure);
      table.AddRow({q.label, FormatDouble(rel, 2), Bar(rel),
                    std::to_string(m->item_count)});
    }
    table.Print();
  }
  std::printf(
      "\nPaper shape check (Fig. 22): the streaming engines slow down\n"
      "as the result fraction grows (more state transitions and output\n"
      "work per input byte), XSQ-NC most visibly; the DOM engine is\n"
      "much less sensitive because output is a small fraction of its\n"
      "total (load-dominated) cost.\n");
  return 0;
}

}  // namespace
}  // namespace xsq::bench

int main() { return xsq::bench::Main(); }
