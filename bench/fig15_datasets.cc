// Figure 15: dataset descriptions (size, text size, number of elements,
// average/max depth, average tag length) for the four synthetic corpora
// standing in for SHAKE, NASA, DBLP, and PSD.
#include <string>

#include "bench_util/table.h"
#include "datagen/generators.h"
#include "fig_util.h"

namespace xsq::bench {
namespace {

int Main() {
  PrintHeader("Figure 15", "dataset descriptions");
  TablePrinter table({"Name", "Size", "Text size", "Elements (K)",
                      "Avg/Max depth", "Avg tag length"});
  struct Corpus {
    const char* name;
    std::string xml;
  };
  // The paper's relative sizes: SHAKE 7.9, NASA 25, DBLP 119, PSD 716 MB.
  // We keep the ratios at a laptop-friendly base (scale with
  // XSQ_BENCH_SCALE to approach the real sizes).
  const Corpus corpora[] = {
      {"SHAKE", datagen::GenerateShake(ScaledBytes(1u << 20), 1)},
      {"NASA", datagen::GenerateNasa(ScaledBytes(3u << 20), 1)},
      {"DBLP", datagen::GenerateDblp(ScaledBytes(15u << 20), 1)},
      {"PSD", datagen::GeneratePsd(ScaledBytes(90u << 20), 1)},
  };
  for (const Corpus& corpus : corpora) {
    Result<datagen::DatasetStats> stats = datagen::ComputeStats(corpus.xml);
    if (!stats.ok()) {
      std::fprintf(stderr, "%s: %s\n", corpus.name,
                   stats.status().ToString().c_str());
      return 1;
    }
    table.AddRow({corpus.name, FormatBytes(stats->bytes),
                  FormatBytes(stats->text_bytes),
                  FormatDouble(static_cast<double>(stats->element_count) /
                                   1000.0, 1),
                  FormatDouble(stats->avg_depth, 2) + "/" +
                      std::to_string(stats->max_depth),
                  FormatDouble(stats->avg_tag_length, 2)});
  }
  table.Print();
  std::printf(
      "\nPaper shape check: PSD is by far the largest with the highest\n"
      "text fraction; DBLP is shallow (avg depth ~2.9 in the paper);\n"
      "SHAKE/NASA/PSD share avg depth around 5.5-5.8.\n");
  return 0;
}

}  // namespace
}  // namespace xsq::bench

int main() { return xsq::bench::Main(); }
