// Extension experiment: observability overhead. The obs layer promises
// that instrumenting the serving hot path (per-chunk wall timing plus
// the sampled per-event phase split behind core::PhaseListener) costs
// at most 3% throughput on a realistic corpus. This harness enforces
// that bound and reports what the instrumentation buys:
//
//   (a) Instrumented vs bare StreamingQuery runs over chunked DBLP
//       (the fig15-style path), interleaved runs, trimmed-mean floors;
//       overhead above the bound fails the run (exit status 1).
//   (b) The per-document phase breakdown the listener produced — the
//       Figure 18 split, now available at serve time.
//   (c) Histogram::Record() cost in isolation (ns/op), the primitive
//       every instrumented path bottoms out in.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/streaming_query.h"
#include "datagen/generators.h"
#include "fig_util.h"
#include "obs/histogram.h"
#include "obs/registry.h"
#include "obs/timer.h"

namespace xsq::bench {
namespace {

constexpr size_t kChunkBytes = 64 * 1024;
constexpr double kOverheadBound = 0.03;  // the 3% acceptance bar
constexpr const char* kQuery = "/dblp/article/title/text()";

// Accumulates phase samples exactly the way service::Session does.
class PhaseCollector : public core::PhaseListener {
 public:
  void OnPhaseSample(uint64_t parse_ns, uint64_t automaton_ns,
                     uint64_t buffer_ns) override {
    parse_ns_ += parse_ns;
    automaton_ns_ += automaton_ns;
    buffer_ns_ += buffer_ns;
  }
  uint64_t parse_ns() const { return parse_ns_; }
  uint64_t automaton_ns() const { return automaton_ns_; }
  uint64_t buffer_ns() const { return buffer_ns_; }
  void Reset() { parse_ns_ = automaton_ns_ = buffer_ns_ = 0; }

 private:
  uint64_t parse_ns_ = 0;
  uint64_t automaton_ns_ = 0;
  uint64_t buffer_ns_ = 0;
};

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// One full evaluation of kQuery over `xml` in kChunkBytes chunks.
// `listener` null = the bare baseline, non-null = the instrumented run.
double RunOnce(const std::string& xml, core::PhaseListener* listener,
               uint64_t* items_out) {
  auto query = core::StreamingQuery::Open(kQuery);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return -1.0;
  }
  if (listener != nullptr) (*query)->set_phase_listener(listener);
  auto start = std::chrono::steady_clock::now();
  for (size_t pos = 0; pos < xml.size(); pos += kChunkBytes) {
    std::string_view chunk(xml.data() + pos,
                           std::min(kChunkBytes, xml.size() - pos));
    if (!(*query)->Push(chunk).ok()) return -1.0;
  }
  if (!(*query)->Close().ok()) return -1.0;
  double elapsed = Seconds(start);
  uint64_t items = 0;
  while ((*query)->NextItem()) ++items;
  if (items_out != nullptr) *items_out = items;
  return elapsed;
}

// Mean of the fastest half of `times`. The box this runs on suffers
// rare but large preemption stalls (individual evaluations swing
// +-25%), so means and medians over all runs are hopelessly noisy.
// Stalls only ever ADD time, so the fastest half of a large
// interleaved sample clusters tightly at the true cost floor — the
// quantity the overhead bound is actually about.
double TrimmedMean(std::vector<double> times) {
  std::sort(times.begin(), times.end());
  size_t keep = times.size() / 2;
  if (keep == 0) keep = 1;
  double total = 0.0;
  for (size_t i = 0; i < keep; ++i) total += times[i];
  return total / static_cast<double>(keep);
}

int OverheadOnDblp(const std::string& xml, bool* within_bound,
                   PhaseCollector* phases) {
  std::printf("\n(a) Instrumentation overhead on chunked DBLP (%s, %zuKB "
              "chunks)\n",
              FormatBytes(xml.size()).c_str(), kChunkBytes / 1024);

  // Bare and instrumented evaluations strictly alternate so both
  // variants sample the same load profile; the overhead is the ratio of
  // their trimmed means (see TrimmedMean for why not plain mean/median).
  constexpr int kEvalsPerVariant = 40;
  uint64_t bare_items = 0;
  uint64_t instrumented_items = 0;
  std::vector<double> bare_times;
  std::vector<double> instrumented_times;
  for (int i = 0; i < kEvalsPerVariant; ++i) {
    double bare = RunOnce(xml, nullptr, &bare_items);
    phases->Reset();
    double instrumented = RunOnce(xml, phases, &instrumented_items);
    if (bare < 0.0 || instrumented < 0.0) return 1;
    bare_times.push_back(bare);
    instrumented_times.push_back(instrumented);
  }
  if (bare_items != instrumented_items) {
    std::fprintf(stderr, "result mismatch: bare %llu vs instrumented %llu\n",
                 static_cast<unsigned long long>(bare_items),
                 static_cast<unsigned long long>(instrumented_items));
    return 1;
  }

  double bare_floor = TrimmedMean(bare_times);
  double instrumented_floor = TrimmedMean(instrumented_times);
  double overhead = instrumented_floor / bare_floor - 1.0;
  if (overhead < 0.0) overhead = 0.0;  // noise floor: instrumented won
  *within_bound = overhead <= kOverheadBound;

  TablePrinter table({"Variant", "Floor (ms)", "MB/s", "Items", "Overhead"});
  double mb = static_cast<double>(xml.size()) / (1024.0 * 1024.0);
  table.AddRow({"bare", FormatDouble(bare_floor * 1e3, 1),
                FormatDouble(mb / bare_floor, 1), std::to_string(bare_items),
                "-"});
  table.AddRow({"instrumented", FormatDouble(instrumented_floor * 1e3, 1),
                FormatDouble(mb / instrumented_floor, 1),
                std::to_string(instrumented_items),
                FormatDouble(overhead * 100.0, 2) + "%"});
  table.Print();
  std::printf("bound: <= %.0f%% -> %s\n", kOverheadBound * 100.0,
              *within_bound ? "PASS" : "FAIL");
  return 0;
}

void PhaseBreakdown(const PhaseCollector& phases) {
  std::printf("\n(b) Phase split of the last instrumented run (Figure 18 "
              "at serve time)\n");
  double parse_ms = static_cast<double>(phases.parse_ns()) / 1e6;
  double automaton_ms = static_cast<double>(phases.automaton_ns()) / 1e6;
  double buffer_ms = static_cast<double>(phases.buffer_ns()) / 1e6;
  double total_ms = parse_ms + automaton_ms + buffer_ms;
  if (total_ms <= 0.0) {
    std::printf("  (no samples — built with XSQ_OBS=OFF)\n");
    return;
  }
  TablePrinter table({"Phase", "Time (ms)", "Share"});
  table.AddRow({"SAX parse", FormatDouble(parse_ms, 1),
                FormatDouble(parse_ms / total_ms * 100.0, 1) + "%"});
  table.AddRow({"automaton", FormatDouble(automaton_ms, 1),
                FormatDouble(automaton_ms / total_ms * 100.0, 1) + "%"});
  table.AddRow({"buffer", FormatDouble(buffer_ms, 1),
                FormatDouble(buffer_ms / total_ms * 100.0, 1) + "%"});
  table.Print();
}

void RecordMicrocost() {
  std::printf("\n(c) obs primitives in isolation\n");
  obs::Registry registry;
  obs::Histogram* histogram = registry.GetOrCreateHistogram("bench_us");
  constexpr uint64_t kOps = 2'000'000;
  auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < kOps; ++i) histogram->Record(i & 0xffff);
  double record_s = Seconds(start);

  start = std::chrono::steady_clock::now();
  constexpr int kSnapshots = 20000;
  uint64_t guard = 0;
  for (int i = 0; i < kSnapshots; ++i) guard += histogram->snapshot().count;
  double snapshot_s = Seconds(start);

  TablePrinter table({"Primitive", "ns/op"});
  table.AddRow({"Histogram::Record",
                FormatDouble(record_s / static_cast<double>(kOps) * 1e9, 1)});
  table.AddRow(
      {"Histogram::snapshot",
       FormatDouble(snapshot_s / static_cast<double>(kSnapshots) * 1e9, 0)});
  table.Print();
  if (guard == 0) std::printf("\n");  // keep the snapshot loop live
}

int Main() {
  PrintHeader("Extension: observability",
              "instrumentation overhead bound + serve-time phase split");
  std::string xml = datagen::GenerateDblp(ScaledBytes(6u << 20), 1);

  bool within_bound = false;
  PhaseCollector phases;
  if (OverheadOnDblp(xml, &within_bound, &phases) != 0) return 1;
  PhaseBreakdown(phases);
  RecordMicrocost();

  std::printf(
      "\nExpected shape: two-level sampling (every 32nd chunk through the\n"
      "phase shim, every 128th event inside it clocked) stays within the\n"
      "%.0f%% bound; the phase split mirrors Figure 18; Record() is a\n"
      "handful of relaxed atomic adds.\n",
      kOverheadBound * 100.0);
  return within_bound ? 0 : 1;
}

}  // namespace
}  // namespace xsq::bench

int main() { return xsq::bench::Main(); }
