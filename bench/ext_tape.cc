// Extension experiment: the event-tape subsystem (parse once, replay
// many). Three questions, each a table:
//
//   (a) How much faster is replaying a recorded tape than re-parsing
//       the source XML? (The parse tax the tape amortizes; the
//       acceptance bar is >= 2x on DBLP-like input.)
//   (b) How does parse-once-run-N scale against ext_multiquery's
//       shared-parse baseline? Four strategies evaluate the same N
//       queries: N separate parses, one shared parse (MultiQueryEngine),
//       one record + N single-engine replays, and one record + one
//       MultiQueryEngine replay.
//   (c) What does record-time projection buy? Tape size and replay+query
//       time for a selective query per corpus, full vs projected tape.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/multi_query.h"
#include "core/result_sink.h"
#include "core/streaming_query.h"
#include "datagen/generators.h"
#include "fig_util.h"
#include "tape/projection.h"
#include "tape/recorder.h"
#include "tape/replayer.h"
#include "xml/sax_parser.h"

namespace xsq::bench {
namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// The cheapest possible consumer: counts events so neither the parser
// nor the replayer can be optimized away.
class CountingHandler : public xml::SaxHandler {
 public:
  void OnBegin(std::string_view, const std::vector<xml::Attribute>& attrs,
               int) override {
    events_ += 1 + static_cast<uint64_t>(attrs.size());
  }
  void OnEnd(std::string_view, int) override { ++events_; }
  void OnText(std::string_view, std::string_view text, int) override {
    events_ += 1 + static_cast<uint64_t>(!text.empty());
  }
  uint64_t events() const { return events_; }

 private:
  uint64_t events_ = 0;
};

double MbPerS(size_t bytes, double seconds) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0) / seconds;
}

template <typename Fn>
double BestOf(int reps, Fn&& fn) {
  double best = 0.0;
  for (int i = 0; i < reps; ++i) {
    auto start = std::chrono::steady_clock::now();
    fn();
    double t = Seconds(start);
    if (i == 0 || t < best) best = t;
  }
  return best;
}

struct Corpus {
  const char* name;
  std::string xml;
  const char* query;  // selective query used for projection (c)
};

int ReplayVsReparse(const std::vector<Corpus>& corpora, bool* dblp_ok) {
  std::printf("\n(a) Replay vs re-parse (event delivery only)\n");
  TablePrinter table({"Corpus", "Size", "Parse MB/s", "Replay MB/s",
                      "Speedup", "Tape bytes/src"});
  for (const Corpus& corpus : corpora) {
    Result<tape::Tape> tape = tape::RecordDocument(corpus.xml);
    if (!tape.ok()) {
      std::fprintf(stderr, "%s: %s\n", corpus.name,
                   tape.status().ToString().c_str());
      return 1;
    }
    double parse = BestOf(3, [&corpus] {
      CountingHandler sink;
      xml::SaxParser parser(&sink);
      (void)parser.Parse(corpus.xml);
    });
    double replay = BestOf(3, [&tape] {
      CountingHandler sink;
      (void)tape::Replay(*tape, &sink);
    });
    double speedup = parse / replay;
    if (std::string_view(corpus.name) == "DBLP" && dblp_ok != nullptr) {
      *dblp_ok = speedup >= 2.0;
    }
    table.AddRow({corpus.name, FormatBytes(corpus.xml.size()),
                  FormatDouble(MbPerS(corpus.xml.size(), parse), 1),
                  FormatDouble(MbPerS(corpus.xml.size(), replay), 1),
                  FormatDouble(speedup, 2),
                  FormatDouble(static_cast<double>(tape->memory_bytes()) /
                                   static_cast<double>(corpus.xml.size()),
                               2)});
  }
  table.Print();
  return 0;
}

std::vector<std::string> DblpQueries(int n) {
  const char* base[] = {
      "/dblp/article/title/text()",
      "/dblp/inproceedings[author]/title/text()",
      "//inproceedings/booktitle/text()",
      "/dblp/article[year>1995]/author/text()",
      "//article/year/count()",
      "/dblp/*/pages/text()",
      "//inproceedings[@key]/year/text()",
      "/dblp/article/journal/text()",
  };
  std::vector<std::string> queries;
  for (int i = 0; i < n; ++i) {
    queries.emplace_back(base[static_cast<size_t>(i) % std::size(base)]);
  }
  return queries;
}

int ParseOnceRunN(const std::string& xml) {
  std::printf("\n(b) Parse-once-run-N on DBLP (%s)\n",
              FormatBytes(xml.size()).c_str());
  Result<tape::Tape> tape = tape::RecordDocument(xml);
  if (!tape.ok()) return 1;

  TablePrinter table({"Queries", "Separate (ms)", "SharedParse (ms)",
                      "Replay xN (ms)", "Replay+multi (ms)",
                      "Best speedup"});
  for (int n : {1, 2, 4, 8, 16, 32}) {
    std::vector<std::string> queries = DblpQueries(n);

    // N independent parse+evaluate passes (the naive baseline).
    double separate = BestOf(1, [&queries, &xml] {
      for (const std::string& query : queries) {
        core::CountingSink sink;
        auto parsed = xpath::ParseQuery(query);
        auto engine = core::XsqEngine::Create(*parsed, &sink);
        xml::SaxParser parser(engine->get());
        (void)parser.Parse(xml);
      }
    });

    // One parse fanned out to N engines (ext_multiquery's approach).
    double shared = BestOf(1, [&queries, &xml] {
      std::vector<core::CountingSink> sinks(queries.size());
      core::MultiQueryEngine multi;
      for (size_t i = 0; i < queries.size(); ++i) {
        (void)multi.AddQuery(queries[i], &sinks[i]);
      }
      xml::SaxParser parser(&multi);
      (void)parser.Parse(xml);
    });

    // One record (already paid), then one replay per query.
    double replay_each = BestOf(1, [&queries, &tape] {
      for (const std::string& query : queries) {
        core::CountingSink sink;
        auto parsed = xpath::ParseQuery(query);
        auto engine = core::XsqEngine::Create(*parsed, &sink);
        (void)tape::Replay(*tape, engine->get());
      }
    });

    // One replay fanned out to N engines: parsing amortized to zero AND
    // event dispatch shared.
    double replay_multi = BestOf(1, [&queries, &tape] {
      std::vector<core::CountingSink> sinks(queries.size());
      core::MultiQueryEngine multi;
      for (size_t i = 0; i < queries.size(); ++i) {
        (void)multi.AddQuery(queries[i], &sinks[i]);
      }
      (void)tape::Replay(*tape, &multi);
    });

    double best = replay_multi < replay_each ? replay_multi : replay_each;
    table.AddRow({std::to_string(n), FormatDouble(separate * 1e3, 1),
                  FormatDouble(shared * 1e3, 1),
                  FormatDouble(replay_each * 1e3, 1),
                  FormatDouble(replay_multi * 1e3, 1),
                  FormatDouble(separate / best, 2)});
  }
  table.Print();
  return 0;
}

int ProjectionEffect(const std::vector<Corpus>& corpora) {
  std::printf("\n(c) Record-time projection for one selective query\n");
  TablePrinter table({"Corpus", "Query", "Full tape", "Projected",
                      "Tape ratio", "Q speedup"});
  for (const Corpus& corpus : corpora) {
    Result<tape::Tape> full = tape::RecordDocument(corpus.xml);
    if (!full.ok()) return 1;
    auto plan = core::CompilePlan(corpus.query);
    if (!plan.ok()) {
      std::fprintf(stderr, "%s: %s\n", corpus.query,
                   plan.status().ToString().c_str());
      return 1;
    }
    tape::ProjectionMask mask = tape::ProjectionMask::FromPlans({*plan});
    Result<tape::Tape> projected = tape::RecordDocument(corpus.xml, &mask);
    if (!projected.ok()) return 1;

    auto run_query = [&corpus](const tape::Tape& tape) {
      auto query = core::StreamingQuery::Open(corpus.query);
      (void)tape::Replay(tape, (*query)->event_handler());
      (void)(*query)->FinishEvents();
    };
    double on_full = BestOf(3, [&] { run_query(*full); });
    double on_projected = BestOf(3, [&] { run_query(*projected); });

    table.AddRow(
        {corpus.name, corpus.query, FormatBytes(full->memory_bytes()),
         FormatBytes(projected->memory_bytes()),
         FormatDouble(static_cast<double>(projected->memory_bytes()) /
                          static_cast<double>(full->memory_bytes()),
                      2),
         FormatDouble(on_full / on_projected, 2)});
  }
  table.Print();
  return 0;
}

int Main() {
  PrintHeader("Extension: event tapes",
              "parse-once/replay-many with record-time projection");
  std::vector<Corpus> corpora;
  corpora.push_back({"SHAKE", datagen::GenerateShake(ScaledBytes(4u << 20), 1),
                     "/PLAY/ACT/SCENE/SPEECH/SPEAKER/text()"});
  corpora.push_back({"NASA", datagen::GenerateNasa(ScaledBytes(6u << 20), 1),
                     "/datasets/dataset/reference/source/other/name/text()"});
  corpora.push_back({"DBLP", datagen::GenerateDblp(ScaledBytes(6u << 20), 1),
                     "/dblp/inproceedings[author]/title/text()"});
  corpora.push_back({"PSD", datagen::GeneratePsd(ScaledBytes(8u << 20), 1),
                     "/ProteinDatabase/ProteinEntry/reference/refinfo/"
                     "authors/author/text()"});

  bool dblp_ok = false;
  if (ReplayVsReparse(corpora, &dblp_ok) != 0) return 1;
  if (ParseOnceRunN(corpora[2].xml) != 0) return 1;
  if (ProjectionEffect(corpora) != 0) return 1;

  std::printf(
      "\nExpected shape: replay skips tokenization/well-formedness work,\n"
      "so (a) clears 2x over re-parsing (checked on DBLP: %s); (b) the\n"
      "tape strategies beat ext_multiquery's shared parse because the\n"
      "remaining per-run parse cost drops to event dispatch; (c) selective\n"
      "queries shrink the tape and speed up replay proportionally.\n",
      dblp_ok ? "PASS" : "FAIL");
  return dblp_ok ? 0 : 1;
}

}  // namespace
}  // namespace xsq::bench

int main() { return xsq::bench::Main(); }
