// Extension experiment: the SWAR/SIMD scan loop and zero-copy event
// path. Three questions, each a table, each enforced by exit status:
//
//   (a) How much faster is the new parser than the pre-change
//       byte-at-a-time copying parser (vendored in
//       baseline_sax_parser.*)? The acceptance bar is >= 1.5x parse
//       throughput on DBLP for the build's best scan implementation.
//   (b) Did the faster parse erode the tape subsystem's reason to
//       exist? Replaying a recorded tape must still beat re-parsing
//       the source by >= 2x on DBLP (the same bar ext_tape enforces).
//   (c) Do all scan implementations agree? The event streams produced
//       by the baseline parser, the scalar/SWAR/SIMD scan loops, and a
//       chunked feed (4 KiB chunks, which exercises the holdback and
//       materialization paths) must be byte-identical on every corpus.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "baseline_sax_parser.h"
#include "datagen/generators.h"
#include "fig_util.h"
#include "tape/recorder.h"
#include "tape/replayer.h"
#include "xml/sax_parser.h"
#include "xml/scan.h"

namespace xsq::bench {
namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

template <typename Fn>
double BestOf(int reps, Fn&& fn) {
  double best = 0.0;
  for (int i = 0; i < reps; ++i) {
    auto start = std::chrono::steady_clock::now();
    fn();
    double t = Seconds(start);
    if (i == 0 || t < best) best = t;
  }
  return best;
}

double MbPerS(size_t bytes, double seconds) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0) / seconds;
}

// The cheapest consumer that still observes every event: sums payload
// sizes through the virtual interface (the same shape as ext_tape's
// counting sink), so neither parser can skip event delivery but the
// measurement stays on the parse path rather than on sink arithmetic.
// Payload *bytes* are compared by the part-(c) digest differential.
class ChecksumHandler : public xml::SaxHandler {
 public:
  void OnBegin(std::string_view tag, const std::vector<xml::Attribute>& attrs,
               int depth) override {
    sum_ += tag.size() + static_cast<uint64_t>(depth);
    for (const xml::Attribute& attr : attrs) {
      sum_ += attr.name.size() + attr.value.size();
    }
  }
  void OnEnd(std::string_view tag, int) override { sum_ += tag.size(); }
  void OnText(std::string_view, std::string_view text, int) override {
    sum_ += text.size();
  }
  uint64_t sum() const { return sum_; }

 private:
  uint64_t sum_ = 0;
};

// Serializes the full event stream into one string so two parsers can
// be compared byte-for-byte (tags, attribute order and values, coalesced
// text, depths, document markers).
class StreamDigestHandler : public xml::SaxHandler {
 public:
  void OnDocumentBegin() override { out_.append("D\n"); }
  void OnDoctype(std::string_view name, std::string_view subset) override {
    out_.append("Y ");
    out_.append(name);
    out_.push_back(' ');
    out_.append(subset);
    out_.push_back('\n');
  }
  void OnBegin(std::string_view tag, const std::vector<xml::Attribute>& attrs,
               int depth) override {
    out_.append("B ");
    out_.append(tag);
    out_.push_back(' ');
    out_.append(std::to_string(depth));
    for (const xml::Attribute& attr : attrs) {
      out_.push_back(' ');
      out_.append(attr.name);
      out_.push_back('=');
      out_.append(attr.value);
    }
    out_.push_back('\n');
  }
  void OnEnd(std::string_view tag, int depth) override {
    out_.append("E ");
    out_.append(tag);
    out_.push_back(' ');
    out_.append(std::to_string(depth));
    out_.push_back('\n');
  }
  void OnText(std::string_view tag, std::string_view text,
              int depth) override {
    out_.append("T ");
    out_.append(tag);
    out_.push_back(' ');
    out_.append(std::to_string(depth));
    out_.push_back(' ');
    out_.append(text);
    out_.push_back('\n');
  }
  void OnDocumentEnd() override { out_.append("Z\n"); }

  const std::string& digest() const { return out_; }

 private:
  std::string out_;
};

struct Corpus {
  const char* name;
  std::string xml;
};

const char* ImplName(xml::ScanImpl impl) {
  switch (impl) {
    case xml::ScanImpl::kScalar:
      return "scalar";
    case xml::ScanImpl::kSwar:
      return "swar";
    case xml::ScanImpl::kSimd:
      return "simd";
  }
  return "?";
}

std::vector<xml::ScanImpl> AvailableImpls() {
  std::vector<xml::ScanImpl> impls = {xml::ScanImpl::kScalar,
                                      xml::ScanImpl::kSwar};
  if (xml::SimdScanAvailable()) impls.push_back(xml::ScanImpl::kSimd);
  return impls;
}

int ParseThroughput(const std::vector<Corpus>& corpora, bool* dblp_ok) {
  std::printf("\n(a) Parse throughput: baseline (pre-change) vs scan loops\n");
  std::vector<std::string> headers = {"Corpus", "Size", "Baseline MB/s"};
  for (xml::ScanImpl impl : AvailableImpls()) {
    headers.push_back(std::string(ImplName(impl)) + " MB/s");
  }
  headers.push_back("Best speedup");
  TablePrinter table(headers);

  for (const Corpus& corpus : corpora) {
    double base = BestOf(3, [&corpus] {
      ChecksumHandler sink;
      baseline::BaselineSaxParser parser(&sink);
      (void)parser.Parse(corpus.xml);
    });
    std::vector<std::string> row = {corpus.name, FormatBytes(corpus.xml.size()),
                                    FormatDouble(MbPerS(corpus.xml.size(), base),
                                                 1)};
    double best = 0.0;
    for (xml::ScanImpl impl : AvailableImpls()) {
      xml::SetScanImpl(impl);
      double t = BestOf(3, [&corpus] {
        ChecksumHandler sink;
        xml::SaxParser parser(&sink);
        (void)parser.Parse(corpus.xml);
      });
      row.push_back(FormatDouble(MbPerS(corpus.xml.size(), t), 1));
      if (best == 0.0 || t < best) best = t;
    }
    xml::SetScanImpl(xml::BestScanImpl());
    double speedup = base / best;
    if (std::string_view(corpus.name) == "DBLP" && dblp_ok != nullptr) {
      *dblp_ok = speedup >= 1.5;
    }
    row.push_back(FormatDouble(speedup, 2));
    table.AddRow(row);
  }
  table.Print();
  return 0;
}

int ReplayAdvantage(const std::string& dblp, bool* replay_ok) {
  std::printf("\n(b) Tape replay advantage against the faster parser\n");
  Result<tape::Tape> tape = tape::RecordDocument(dblp);
  if (!tape.ok()) {
    std::fprintf(stderr, "record: %s\n", tape.status().ToString().c_str());
    return 1;
  }
  double parse = BestOf(3, [&dblp] {
    ChecksumHandler sink;
    xml::SaxParser parser(&sink);
    (void)parser.Parse(dblp);
  });
  double replay = BestOf(3, [&tape] {
    ChecksumHandler sink;
    (void)tape::Replay(*tape, &sink);
  });
  double speedup = parse / replay;
  *replay_ok = speedup >= 2.0;
  TablePrinter table({"Corpus", "Parse MB/s", "Replay MB/s", "Speedup"});
  table.AddRow({"DBLP", FormatDouble(MbPerS(dblp.size(), parse), 1),
                FormatDouble(MbPerS(dblp.size(), replay), 1),
                FormatDouble(speedup, 2)});
  table.Print();
  return 0;
}

std::string DigestWhole(const std::string& xml) {
  StreamDigestHandler handler;
  xml::SaxParser parser(&handler);
  if (!parser.Parse(xml).ok()) return "<parse error>";
  return handler.digest();
}

std::string DigestChunked(const std::string& xml, size_t chunk) {
  StreamDigestHandler handler;
  xml::SaxParser parser(&handler);
  for (size_t pos = 0; pos < xml.size(); pos += chunk) {
    if (!parser.Feed(std::string_view(xml).substr(pos, chunk)).ok()) {
      return "<parse error>";
    }
  }
  if (!parser.Finish().ok()) return "<parse error>";
  return handler.digest();
}

int Differential(const std::vector<Corpus>& corpora, bool* identical) {
  std::printf("\n(c) Event-stream differential (all must be identical)\n");
  *identical = true;
  TablePrinter table({"Corpus", "Baseline", "Whole-doc", "Chunked 4K"});
  for (const Corpus& corpus : corpora) {
    StreamDigestHandler base_handler;
    baseline::BaselineSaxParser base_parser(&base_handler);
    bool base_ok = base_parser.Parse(corpus.xml).ok();
    const std::string& reference = base_handler.digest();

    bool whole_same = true;
    bool chunked_same = true;
    for (xml::ScanImpl impl : AvailableImpls()) {
      xml::SetScanImpl(impl);
      if (DigestWhole(corpus.xml) != reference) whole_same = false;
      if (DigestChunked(corpus.xml, 4096) != reference) chunked_same = false;
    }
    xml::SetScanImpl(xml::BestScanImpl());

    if (!base_ok || !whole_same || !chunked_same) *identical = false;
    table.AddRow({corpus.name, base_ok ? "ok" : "FAIL",
                  whole_same ? "identical" : "DIFFERS",
                  chunked_same ? "identical" : "DIFFERS"});
  }
  table.Print();
  return 0;
}

int Main() {
  PrintHeader("Extension: scan loop",
              "SWAR/SIMD byte classification + zero-copy event path");
  std::printf("scan impls: scalar, swar%s (best: %s)\n",
              xml::SimdScanAvailable() ? ", simd" : "",
              ImplName(xml::BestScanImpl()));

  std::vector<Corpus> corpora;
  corpora.push_back({"SHAKE", datagen::GenerateShake(ScaledBytes(4u << 20), 1)});
  corpora.push_back({"NASA", datagen::GenerateNasa(ScaledBytes(6u << 20), 1)});
  corpora.push_back({"DBLP", datagen::GenerateDblp(ScaledBytes(6u << 20), 1)});
  corpora.push_back({"PSD", datagen::GeneratePsd(ScaledBytes(8u << 20), 1)});
  corpora.push_back(
      {"RECURSIVE", datagen::GenerateRecursivePubs(ScaledBytes(4u << 20), 1)});

  bool dblp_ok = false;
  bool replay_ok = false;
  bool identical = false;
  if (ParseThroughput(corpora, &dblp_ok) != 0) return 1;
  if (ReplayAdvantage(corpora[2].xml, &replay_ok) != 0) return 1;
  if (Differential(corpora, &identical) != 0) return 1;

  std::printf(
      "\nExpected shape: the gulp scan loop clears 1.5x over the copying\n"
      "baseline on DBLP (%s); tape replay still clears 2x over the faster\n"
      "parse (%s); every implementation and chunking produces the same\n"
      "event stream (%s).\n",
      dblp_ok ? "PASS" : "FAIL", replay_ok ? "PASS" : "FAIL",
      identical ? "PASS" : "FAIL");
  return dblp_ok && replay_ok && identical ? 0 : 1;
}

}  // namespace
}  // namespace xsq::bench

int main() { return xsq::bench::Main(); }
