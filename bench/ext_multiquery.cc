// Extension experiment (paper Section 5): grouping many HPDTs over one
// parse. The paper argues XSQ's regular HPDT structure allows multiple
// queries to be grouped YFilter-style; this harness quantifies the
// first-order effect - sharing the SAX parse - by comparing N queries
// run through one MultiQueryEngine pass against N independent passes.
#include <chrono>
#include <string>
#include <vector>

#include "core/multi_query.h"
#include "core/result_sink.h"
#include "datagen/generators.h"
#include "fig_util.h"
#include "xml/sax_parser.h"

namespace xsq::bench {
namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::vector<std::string> MakeQueries(int n) {
  // A mix of workloads over the DBLP corpus, cycled to reach n.
  const char* base[] = {
      "/dblp/article/title/text()",
      "/dblp/inproceedings[author]/title/text()",
      "//inproceedings/booktitle/text()",
      "/dblp/article[year>1995]/author/text()",
      "//article/year/count()",
      "/dblp/*/pages/text()",
      "//inproceedings[@key]/year/text()",
      "/dblp/article/journal/text()",
  };
  std::vector<std::string> queries;
  for (int i = 0; i < n; ++i) {
    queries.emplace_back(base[static_cast<size_t>(i) % std::size(base)]);
  }
  return queries;
}

int Main() {
  PrintHeader("Extension: multi-query grouping",
              "one shared parse vs N separate passes (Section 5)");
  const std::string xml = datagen::GenerateDblp(ScaledBytes(6u << 20), 1);

  TablePrinter table({"Queries", "Separate (ms)", "Shared (ms)", "Speedup",
                      "Shared MB/s"});
  for (int n : {1, 2, 4, 8, 16, 32}) {
    std::vector<std::string> queries = MakeQueries(n);

    // N separate passes.
    auto separate_start = std::chrono::steady_clock::now();
    for (const std::string& query : queries) {
      core::CountingSink sink;
      auto parsed = xpath::ParseQuery(query);
      if (!parsed.ok()) return 1;
      auto engine = core::XsqEngine::Create(*parsed, &sink);
      if (!engine.ok()) return 1;
      xml::SaxParser parser(engine->get());
      if (!parser.Parse(xml).ok()) return 1;
    }
    double separate = Seconds(separate_start);

    // One shared pass.
    std::vector<core::CountingSink> sinks(static_cast<size_t>(n));
    core::MultiQueryEngine multi;
    for (int i = 0; i < n; ++i) {
      if (!multi.AddQuery(queries[static_cast<size_t>(i)],
                          &sinks[static_cast<size_t>(i)])
               .ok()) {
        return 1;
      }
    }
    auto shared_start = std::chrono::steady_clock::now();
    xml::SaxParser parser(&multi);
    if (!parser.Parse(xml).ok()) return 1;
    double shared = Seconds(shared_start);

    double mbps =
        static_cast<double>(xml.size()) / (1024.0 * 1024.0) / shared;
    table.AddRow({std::to_string(n), FormatDouble(separate * 1e3, 1),
                  FormatDouble(shared * 1e3, 1),
                  FormatDouble(separate / shared, 2),
                  FormatDouble(mbps, 1)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: the shared pass amortizes parsing, so speedup\n"
      "grows with the query count and approaches the ratio of parse\n"
      "cost to per-query automaton cost.\n");
  return 0;
}

}  // namespace
}  // namespace xsq::bench

int main() { return xsq::bench::Main(); }
