// Extension experiment: router high availability (cluster/gossip.h +
// net::Client multi-endpoint failover), enforced by exit status.
// argv[1] names the xsqd binary, argv[2] the xsq_router binary (the
// ctest registration passes $<TARGET_FILE:...> for both).
//
//   (a) gossip convergence: two routers over the same 3 shards are
//       handed a staged disagreement (each believes a different view
//       of one shard's liveness) plus a key index only one of them
//       has; ONE push-pull exchange round — one gossip interval —
//       leaves both with identical digests, identical liveness masks,
//       and identical ring owners for every key, and the surviving
//       router's sweep universe contains keys it never saw RECORDed;
//   (b) SIGKILL failover: two real xsq_router processes gossiping
//       over --peers, a client listing both endpoints; router A is
//       killed -9 mid-RECORD-workload and 100% of the idempotent
//       requests still complete via client-side failover, with every
//       key resident on exactly one shard — the ring owner BOTH
//       routers computed, i.e. zero duplicate placements — and the
//       survivor's gossip metrics mark the dead peer within a bounded
//       number of intervals;
//   (c) transcript parity: the OPEN/RUNCACHED/CLOSE replay of every
//       key through the surviving endpoint set is byte-identical to
//       the same sequence against a fresh single-router deployment —
//       failover is invisible in the bytes.
//
// Any violated bound fails the run (exit status 1).
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/gossip.h"
#include "cluster/router.h"
#include "cluster/shard_map.h"
#include "datagen/generators.h"
#include "fig_util.h"
#include "net/client.h"
#include "net/line_protocol.h"
#include "net/server.h"

namespace xsq::bench {
namespace {

using cluster::GossipDigest;
using cluster::Router;
using cluster::RouterConfig;
using cluster::ShardAddress;
using cluster::ShardHealth;
using cluster::ShardMap;
using net::LineProtocol;

constexpr const char* kQuery = "/dblp/article/title/text()";
constexpr size_t kDocs = 24;

// One forked child speaking the LISTENING-banner contract (xsqd or
// xsq_router; the argv vector decides). SIGKILL is leg (b)'s failure
// injection.
class ChildProcess {
 public:
  bool Start(const std::vector<std::string>& argv) {
    int pipefd[2];
    if (::pipe(pipefd) != 0) return false;
    pid_ = ::fork();
    if (pid_ < 0) return false;
    if (pid_ == 0) {
      ::dup2(pipefd[1], STDOUT_FILENO);
      ::close(pipefd[0]);
      ::close(pipefd[1]);
      int devnull = ::open("/dev/null", O_RDONLY);
      if (devnull >= 0) ::dup2(devnull, STDIN_FILENO);
      std::vector<char*> args;
      for (const std::string& arg : argv) {
        args.push_back(const_cast<char*>(arg.c_str()));
      }
      args.push_back(nullptr);
      ::execv(args[0], args.data());
      std::_Exit(127);
    }
    ::close(pipefd[1]);
    // Byte-at-a-time: the pipe stays open for the daemon's lifetime,
    // so a buffered reader would block forever.
    std::string banner;
    char ch = 0;
    while (banner.find('\n') == std::string::npos &&
           ::read(pipefd[0], &ch, 1) == 1) {
      banner.push_back(ch);
    }
    out_fd_ = pipefd[0];
    unsigned port = 0;
    if (std::sscanf(banner.c_str(), "LISTENING %u", &port) != 1 ||
        port == 0) {
      Kill(SIGKILL);
      return false;
    }
    port_ = static_cast<uint16_t>(port);
    return true;
  }

  void Kill(int sig) {
    if (pid_ > 0) {
      ::kill(pid_, sig);
      ::waitpid(pid_, nullptr, 0);
      pid_ = -1;
    }
    if (out_fd_ >= 0) {
      ::close(out_fd_);
      out_fd_ = -1;
    }
  }

  ~ChildProcess() { Kill(SIGTERM); }

  uint16_t port() const { return port_; }

 private:
  pid_t pid_ = -1;
  int out_fd_ = -1;
  uint16_t port_ = 0;
};

// Binds an ephemeral port, reads it back, releases it: xsq_router A
// needs B's port on its command line before B exists (and vice versa),
// so both are reserved up front.
uint16_t ReserveEphemeralPort() {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

template <typename Predicate>
bool WaitFor(Predicate predicate, int timeout_ms = 8000) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return predicate();
}

// Scrapes one scalar from a router's METRICS verb reply; -1 on error.
int64_t ScrapeMetric(net::Client& client, const std::string& name) {
  auto reply = client.Request("METRICS");
  if (!reply.ok() || !reply->status.ok()) return -1;
  const std::string needle = "METRIC " + name + " ";
  for (const std::string& line : reply->lines) {
    if (line.rfind(needle, 0) == 0) {
      return std::strtoll(line.c_str() + needle.size(), nullptr, 10);
    }
  }
  return -1;
}

// The shard's resident-document inventory via REPLSTATUS.
bool Inventory(uint16_t port, std::set<std::string>* docs) {
  net::ClientConfig config;
  config.port = port;
  net::Client direct(config);
  auto reply = direct.Request("REPLSTATUS");
  if (!reply.ok() || !reply->status.ok()) return false;
  docs->clear();
  for (const std::string& line : reply->lines) {
    if (line.rfind("DOC ", 0) != 0) continue;
    size_t end = line.find(' ', 4);
    docs->insert(line.substr(4, end - 4));
  }
  return true;
}

std::string DocName(size_t i) { return "hadoc" + std::to_string(i); }

// ------------------------------------------- (a) staged-disagreement merge

int GossipConvergence(const std::vector<ShardAddress>& shards,
                      const std::vector<std::string>& docs,
                      bool* converged) {
  std::printf(
      "\n(a) Gossip: staged disagreement converges in one exchange round\n");
  // Two in-process routers over the same shard set, each behind a real
  // net::Server so the exchange rides the actual GOSSIP verb + TCP.
  auto make = [&shards]() -> std::unique_ptr<Router> {
    RouterConfig config;
    config.shards = shards;
    config.start_prober = false;
    config.gossip.enable = true;
    config.gossip.start = false;  // rounds fire on ExchangeNow only
    auto created = Router::Create(std::move(config));
    if (!created.ok()) return nullptr;
    (*created)->ProbeNow();
    return *std::move(created);
  };
  std::unique_ptr<Router> a = make();
  std::unique_ptr<Router> b = make();
  if (a == nullptr || b == nullptr) return 1;
  auto server_a = net::Server::Create(a->MakeServerApp(), net::ServerConfig());
  auto server_b = net::Server::Create(b->MakeServerApp(), net::ServerConfig());
  if (!server_a.ok() || !server_b.ok()) return 1;
  a->gossip()->AddPeer({"127.0.0.1", (*server_b)->port()});
  b->gossip()->AddPeer({"127.0.0.1", (*server_a)->port()});

  // Router A carries the whole key index (every RECORD went through
  // it); router B has never seen one of these keys.
  auto handler = a->MakeHandler();
  for (size_t i = 0; i < docs.size(); ++i) {
    std::string out;
    handler->HandleLine("RECORD " + DocName(i) + " " +
                            LineProtocol::Escape(docs[i]),
                        &out);
    if (out.rfind("OK ", 0) != 0) {
      std::fprintf(stderr, "RECORD failed: %.200s\n", out.c_str());
      return 1;
    }
  }

  // The staged disagreement: A's prober saw shard 1 die; B's did not.
  const size_t victim = 1;
  a->gossip()->LocalObservation(victim, ShardHealth::kDead);
  bool disagreed = a->gossip()->Snapshot() != b->gossip()->Snapshot();

  // ONE push-pull round — what one jittered gossip interval runs.
  a->gossip()->ExchangeNow();

  GossipDigest digest_a = a->gossip()->Snapshot();
  GossipDigest digest_b = b->gossip()->Snapshot();
  bool digests_equal = digest_a == digest_b;
  bool masks_equal = a->AliveMask() == b->AliveMask();
  bool victim_dead_everywhere =
      a->shard_health(victim) == ShardHealth::kDead &&
      b->shard_health(victim) == ShardHealth::kDead;
  size_t owners_equal = 0;
  for (size_t i = 0; i < docs.size(); ++i) {
    if (a->OwnerOf(DocName(i)) == b->OwnerOf(DocName(i))) ++owners_equal;
  }
  // B learned the key universe it never saw RECORDed — this is what
  // lets a surviving router sweep-repair after its peer dies.
  size_t keys_learned = b->replicator()->known_keys();

  *converged = disagreed && digests_equal && masks_equal &&
               victim_dead_everywhere && owners_equal == docs.size() &&
               keys_learned == docs.size() &&
               b->gossip()->counters().merges >= docs.size() + 1;

  TablePrinter table({"Quantity", "Value"});
  table.AddRow({"staged disagreement", disagreed ? "yes" : "no"});
  table.AddRow({"exchange rounds", "1"});
  table.AddRow({"digests equal after round", digests_equal ? "yes" : "no"});
  table.AddRow({"liveness masks equal", masks_equal ? "yes" : "no"});
  table.AddRow({"ring owners equal", std::to_string(owners_equal) + "/" +
                                         std::to_string(docs.size())});
  table.AddRow({"keys learned by peer", std::to_string(keys_learned) + "/" +
                                            std::to_string(docs.size())});
  table.AddRow(
      {"entries adopted by peer",
       std::to_string(b->gossip()->counters().merges)});
  table.Print();
  std::printf("bound: convergence within one gossip round -> %s\n",
              *converged ? "PASS" : "FAIL");

  (*server_a)->Stop();
  (*server_b)->Stop();
  return 0;
}

// ------------------------------------------------ (b) SIGKILL mid-workload

struct FailoverResult {
  std::vector<std::string> replay_blocks;  // RUNCACHED replies post-kill
  bool passed = false;
};

int KillRouterMidWorkload(const std::string& router_binary,
                          const std::vector<ShardAddress>& shards,
                          const std::vector<std::string>& docs,
                          FailoverResult* result) {
  std::printf("\n(b) SIGKILL one of two routers mid-workload\n");
  uint16_t port_a = ReserveEphemeralPort();
  uint16_t port_b = ReserveEphemeralPort();
  auto spawn = [&](uint16_t listen, uint16_t peer,
                   ChildProcess* process) {
    std::vector<std::string> argv = {
        router_binary,
        "--listen=" + std::to_string(listen),
        "--probe-interval-ms=200",
        "--probe-fail-threshold=2",
        "--gossip-interval-ms=100",
        "--peers=127.0.0.1:" + std::to_string(peer),
    };
    for (const ShardAddress& shard : shards) {
      argv.push_back("--shard=" + shard.host + ":" +
                     std::to_string(shard.port));
    }
    return process->Start(argv);
  };
  ChildProcess router_a;
  ChildProcess router_b;
  if (!spawn(port_a, port_b, &router_a) ||
      !spawn(port_b, port_a, &router_b)) {
    std::fprintf(stderr, "failed to start routers\n");
    return 1;
  }

  net::ClientConfig config;
  config.endpoints = {{"127.0.0.1", router_a.port()},
                      {"127.0.0.1", router_b.port()}};
  config.connect_timeout_ms = 1000;
  config.request_timeout_ms = 5000;
  net::Client client(config);

  // The workload: RECORD every doc, router A murdered halfway through.
  const size_t kill_at = docs.size() / 2;
  size_t completed = 0;
  for (size_t i = 0; i < docs.size(); ++i) {
    if (i == kill_at) router_a.Kill(SIGKILL);
    auto reply = client.Request("RECORD " + DocName(i) + " " +
                                LineProtocol::Escape(docs[i]));
    if (reply.ok() && reply->status.ok()) ++completed;
  }
  const uint64_t failovers = client.counters().failovers;

  // Zero duplicate placements: every key on exactly ONE shard, and it
  // is the ring owner both routers compute (same topology, same vnode
  // count, all shards alive -> identical rings iff no split brain).
  std::vector<std::set<std::string>> resident(shards.size());
  for (size_t s = 0; s < shards.size(); ++s) {
    if (!Inventory(shards[s].port, &resident[s])) return 1;
  }
  ShardMap ring(shards.size(), RouterConfig().vnodes);
  size_t exact = 0;
  for (size_t i = 0; i < docs.size(); ++i) {
    std::string name = DocName(i);
    size_t owner = *ring.Owner(name);
    bool ok = true;
    for (size_t s = 0; s < shards.size(); ++s) {
      ok = ok && resident[s].count(name) == (s == owner ? 1u : 0u);
    }
    if (ok) ++exact;
  }

  // The survivor's gossip marks the dead peer within a bounded number
  // of intervals (peer_fail_threshold * interval + jitter).
  net::ClientConfig direct_b;
  direct_b.port = router_b.port();
  net::Client survivor(direct_b);
  bool peer_marked_down = WaitFor([&] {
    return ScrapeMetric(survivor, "xsq_router_gossip_peer_down_total") >= 1;
  });
  int64_t rounds = ScrapeMetric(survivor, "xsq_router_gossip_rounds_total");

  // Sticky-session failover: replay every key through the endpoint
  // list (OPEN must re-route to the survivor — A's corpse is first in
  // the list, so the non-idempotent OPEN surfaces a retryable error
  // once and the replay lands on B).
  auto session = [&](net::Client& c,
                     std::vector<std::string>* blocks) -> bool {
    std::string id;
    for (size_t attempt = 0; attempt < 2 && id.empty(); ++attempt) {
      auto open = c.Request(std::string("OPEN ") + kQuery);
      if (open.ok() && open->status.ok()) id = open->ok_payload;
    }
    if (id.empty()) return false;
    for (size_t i = 0; i < docs.size(); ++i) {
      auto reply = c.Request("RUNCACHED " + id + " " + DocName(i));
      if (!reply.ok()) return false;
      std::string block;
      for (const std::string& line : reply->lines) block += line + "\n";
      block += reply->status.ok() ? "OK " + reply->ok_payload + "\n"
                                  : "ERR " + reply->status.ToString() + "\n";
      blocks->push_back(std::move(block));
    }
    (void)c.Request("CLOSE " + id);
    return true;
  };
  net::Client failover_client(config);  // fresh: starts at the corpse
  bool replayed = session(failover_client, &result->replay_blocks);
  size_t replay_ok = 0;
  for (const std::string& block : result->replay_blocks) {
    if (block.find("ERR ") == std::string::npos) ++replay_ok;
  }

  result->passed = completed == docs.size() && failovers >= 1 &&
                   exact == docs.size() && peer_marked_down && rounds >= 1 &&
                   replayed && replay_ok == docs.size();

  TablePrinter table({"Quantity", "Value"});
  table.AddRow({"RECORDs completed", std::to_string(completed) + "/" +
                                         std::to_string(docs.size())});
  table.AddRow({"client failovers", std::to_string(failovers)});
  table.AddRow({"keys on exactly the ring owner",
                std::to_string(exact) + "/" + std::to_string(docs.size())});
  table.AddRow({"survivor gossip rounds", std::to_string(rounds)});
  table.AddRow({"dead peer marked down", peer_marked_down ? "yes" : "no"});
  table.AddRow({"post-kill replays OK", std::to_string(replay_ok) + "/" +
                                            std::to_string(docs.size())});
  table.Print();
  std::printf(
      "bound: 100%% completion, zero duplicate placements, peer marked "
      "down -> %s\n",
      result->passed ? "PASS" : "FAIL");

  router_b.Kill(SIGTERM);
  return 0;
}

// --------------------------------------------------- (c) transcript parity

int TranscriptParity(const std::string& router_binary,
                     const std::vector<ShardAddress>& shards,
                     const std::vector<std::string>& docs,
                     const FailoverResult& failover, bool* identical) {
  std::printf("\n(c) Transcript parity: failover vs single-router bytes\n");
  // A fresh single-router deployment over the same shards (the tapes
  // are resident; RUNCACHED replays deterministically).
  std::vector<std::string> argv = {router_binary, "--listen=0"};
  for (const ShardAddress& shard : shards) {
    argv.push_back("--shard=" + shard.host + ":" +
                   std::to_string(shard.port));
  }
  ChildProcess solo;
  if (!solo.Start(argv)) {
    std::fprintf(stderr, "failed to start the single router\n");
    return 1;
  }
  net::ClientConfig config;
  config.port = solo.port();
  net::Client client(config);
  auto open = client.Request(std::string("OPEN ") + kQuery);
  if (!open.ok() || !open->status.ok()) return 1;
  std::vector<std::string> baseline;
  for (size_t i = 0; i < docs.size(); ++i) {
    auto reply = client.Request("RUNCACHED " + open->ok_payload + " " +
                                DocName(i));
    if (!reply.ok()) return 1;
    std::string block;
    for (const std::string& line : reply->lines) block += line + "\n";
    block += reply->status.ok()
                 ? "OK " + reply->ok_payload + "\n"
                 : "ERR " + reply->status.ToString() + "\n";
    baseline.push_back(std::move(block));
  }
  (void)client.Request("CLOSE " + open->ok_payload);

  size_t matches = 0;
  for (size_t i = 0;
       i < docs.size() && i < failover.replay_blocks.size(); ++i) {
    if (baseline[i] == failover.replay_blocks[i]) ++matches;
  }
  *identical = matches == docs.size();

  TablePrinter table({"Quantity", "Value"});
  table.AddRow({"byte-identical reply blocks",
                std::to_string(matches) + "/" + std::to_string(docs.size())});
  table.Print();
  std::printf("bound: failover invisible in the bytes -> %s\n",
              *identical ? "PASS" : "FAIL");
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: %s <xsqd-binary> <xsq_router-binary>\n",
                 argv[0]);
    return 2;
  }
  PrintHeader("Extension: router high availability",
              "gossiped membership + client-side failover: staged "
              "disagreement converges in one round, SIGKILL one of two "
              "routers costs zero requests and zero duplicate placements");

  std::vector<std::string> docs;
  for (uint64_t seed = 1; seed <= kDocs; ++seed) {
    docs.push_back(datagen::GenerateDblp(ScaledBytes(24u << 10), seed));
  }

  std::vector<std::unique_ptr<ChildProcess>> shards;
  std::vector<ShardAddress> addresses;
  for (size_t i = 0; i < 3; ++i) {
    auto shard = std::make_unique<ChildProcess>();
    // --doc-cache=0: the audit legs inventory every recorded document.
    if (!shard->Start({argv[1], "--listen=0", "--workers=2",
                       "--doc-cache=0"})) {
      std::fprintf(stderr, "failed to start shard %zu\n", i);
      return 1;
    }
    addresses.push_back({"127.0.0.1", shard->port()});
    shards.push_back(std::move(shard));
  }

  bool converged = false;
  FailoverResult failover;
  bool identical = false;
  if (GossipConvergence(addresses, docs, &converged) != 0) return 1;
  if (KillRouterMidWorkload(argv[2], addresses, docs, &failover) != 0) {
    return 1;
  }
  if (TranscriptParity(argv[2], addresses, docs, failover, &identical) != 0) {
    return 1;
  }

  std::printf(
      "\nExpected shape: the digest merge is a total-order join, so one\n"
      "push-pull round makes two disagreeing routers identical; with the\n"
      "masks converged both compute the same ring, so a client failing\n"
      "over mid-workload never creates a duplicate placement and the\n"
      "surviving router's transcript matches a single-router deployment\n"
      "byte for byte.\n");
  return converged && failover.passed && identical ? 0 : 1;
}

}  // namespace
}  // namespace xsq::bench

int main(int argc, char** argv) { return xsq::bench::Main(argc, argv); }
