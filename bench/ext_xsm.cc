// Extension experiment: XSQ vs an XSM-style chained transducer network.
//
// The paper's Section 5 compares the designs qualitatively ("a release
// version of XSM was unavailable at the time of writing, [so] XSM does
// not appear in the empirical studies"). With both architectures
// implemented here, the comparison can finally be run: same queries,
// same corpus, measuring throughput, buffered memory, and inter-stage
// token traffic.
#include <chrono>
#include <string>

#include "core/engine.h"
#include "core/engine_nc.h"
#include "core/result_sink.h"
#include "datagen/generators.h"
#include "fig_util.h"
#include "xml/sax_parser.h"
#include "xsm/xsm_engine.h"

namespace xsq::bench {
namespace {

struct EngineRun {
  double seconds = 0;
  size_t items = 0;
  size_t peak_memory = 0;
  uint64_t tokens = 0;
  bool ok = false;
};

template <typename Engine>
EngineRun RunEngine(const xpath::Query& query, const std::string& xml) {
  core::CountingSink sink;
  auto engine = Engine::Create(query, &sink);
  if (!engine.ok()) return {};
  auto start = std::chrono::steady_clock::now();
  xml::SaxParser parser(engine->get());
  if (!parser.Parse(xml).ok()) return {};
  EngineRun run;
  run.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  run.items = sink.item_count + sink.update_count;
  run.peak_memory = (*engine)->memory().peak_bytes();
  if constexpr (std::is_same_v<Engine, xsm::XsmEngine>) {
    run.tokens = (*engine)->tokens_forwarded();
  }
  run.ok = true;
  return run;
}

int Main() {
  PrintHeader("Extension: XSQ vs XSM-style chained transducers",
              "the comparison Section 5 could not run");
  const std::string dblp = datagen::GenerateDblp(ScaledBytes(8u << 20), 1);
  const std::string ordering =
      datagen::GenerateOrderingDataset(ScaledBytes(4u << 20), 1000);

  const struct {
    const char* label;
    const std::string* xml;
    const char* query;
  } cases[] = {
      {"plain path (DBLP)", &dblp, "/dblp/article/title/text()"},
      {"early predicate (DBLP)", &dblp,
       "/dblp/inproceedings[author]/title/text()"},
      {"late predicate (ordering)", &ordering, "/data/a[posterior=0]"},
      {"aggregation (DBLP)", &dblp, "/dblp/article/year/count()"},
  };

  for (const auto& c : cases) {
    Result<xpath::Query> query = xpath::ParseQuery(c.query);
    if (!query.ok()) return 1;
    EngineRun nc = RunEngine<core::XsqNcEngine>(*query, *c.xml);
    EngineRun f = RunEngine<core::XsqEngine>(*query, *c.xml);
    EngineRun xsm = RunEngine<xsm::XsmEngine>(*query, *c.xml);
    if (!nc.ok || !f.ok || !xsm.ok) return 1;
    if (nc.items != xsm.items) {
      std::fprintf(stderr, "result mismatch on %s\n", c.query);
      return 1;
    }
    std::printf("\n%s: %s  (%zu results)\n", c.label, c.query, nc.items);
    TablePrinter table(
        {"Engine", "MB/s", "Peak buffered", "Stage-copied tokens"});
    double mb = static_cast<double>(c.xml->size()) / (1024.0 * 1024.0);
    table.AddRow({"XSQ-NC", FormatDouble(mb / nc.seconds, 1),
                  FormatBytes(nc.peak_memory), "-"});
    table.AddRow({"XSQ-F", FormatDouble(mb / f.seconds, 1),
                  FormatBytes(f.peak_memory), "-"});
    table.AddRow({"XSM-chain", FormatDouble(mb / xsm.seconds, 1),
                  FormatBytes(xsm.peak_memory), std::to_string(xsm.tokens)});
    table.Print();
  }
  std::printf(
      "\nExpected shape (Section 5's qualitative claims, now measured):\n"
      "the chained network pays for materializing tokens between\n"
      "machines, and a late-deciding predicate forces it to buffer the\n"
      "whole candidate subtree at the stage queue, where XSQ buffers\n"
      "only the potential result items.\n");
  return 0;
}

}  // namespace
}  // namespace xsq::bench

int main() { return xsq::bench::Main(); }
