// Extension experiment: document filtering at scale (the XFilter /
// YFilter workload of the paper's related work). Measures filtering
// throughput as the number of standing path subscriptions grows, and
// the node sharing the combined NFA achieves.
#include <chrono>
#include <string>
#include <vector>

#include "common/strings.h"
#include "datagen/generators.h"
#include "fig_util.h"
#include "filter/filter_engine.h"

namespace xsq::bench {
namespace {

// Subscriptions over the DBLP vocabulary with heavy shared prefixes.
std::vector<std::string> MakeSubscriptions(size_t n, uint64_t seed) {
  static constexpr const char* kRecords[] = {"article", "inproceedings"};
  static constexpr const char* kFields[] = {"title", "author", "year",
                                            "pages", "booktitle", "journal"};
  SplitMix64 rng(seed);
  std::vector<std::string> subscriptions;
  subscriptions.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::string q = "/dblp/";
    q += kRecords[rng.Below(2)];
    if (rng.Chance(0.3)) {
      q += "//";
    } else {
      q += "/";
    }
    q += kFields[rng.Below(6)];
    subscriptions.push_back(std::move(q));
  }
  return subscriptions;
}

int Main() {
  PrintHeader("Extension: filtering scale-up",
              "shared-NFA filtering vs number of subscriptions");
  // A stream of many small documents, as in selective dissemination:
  // each document is a one-record DBLP snippet.
  const size_t doc_count =
      static_cast<size_t>(2000 * BenchScale() < 100 ? 100
                                                    : 2000 * BenchScale());
  std::vector<std::string> documents;
  documents.reserve(doc_count);
  for (size_t i = 0; i < doc_count; ++i) {
    documents.push_back(datagen::GenerateDblp(300, i));
  }
  size_t total_bytes = 0;
  for (const std::string& doc : documents) total_bytes += doc.size();
  std::printf("%zu documents, %s total\n", documents.size(),
              FormatBytes(total_bytes).c_str());

  TablePrinter table({"Subscriptions", "NFA nodes", "Docs/s", "MB/s",
                      "Avg matches/doc"});
  for (size_t n : {10, 50, 250, 1000, 4000}) {
    filter::FilterEngine engine;
    for (const std::string& sub : MakeSubscriptions(n, 42)) {
      if (!engine.AddQuery(sub).ok()) return 1;
    }
    auto start = std::chrono::steady_clock::now();
    size_t matches = 0;
    for (const std::string& doc : documents) {
      Result<std::vector<int>> matched = engine.FilterDocument(doc);
      if (!matched.ok()) return 1;
      matches += matched->size();
    }
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    table.AddRow(
        {std::to_string(n), std::to_string(engine.node_count()),
         FormatDouble(static_cast<double>(documents.size()) / seconds, 0),
         FormatDouble(static_cast<double>(total_bytes) / (1024 * 1024) /
                          seconds, 1),
         FormatDouble(static_cast<double>(matches) /
                          static_cast<double>(documents.size()), 2)});
  }
  table.Print();
  std::printf(
      "\nExpected shape (YFilter): shared prefixes keep NFA nodes well\n"
      "below (subscriptions x path length), and throughput degrades\n"
      "sublinearly in the subscription count.\n");
  return 0;
}

}  // namespace
}  // namespace xsq::bench

int main() { return xsq::bench::Main(); }
