// xsqctl: a command-line client for a listening xsqd, built on
// net::Client — connect/request timeouts, jittered exponential-backoff
// retries for idempotent verbs, protocol escaping handled for you.
//
//   xsqctl [--host=H] [--port=P] [--timeout-ms=N] [--retries=N] <cmd>
//   xsqctl --router=H:P[,H:P...] <cmd>      # multi-endpoint failover
//
// --router lists every front-tier endpoint (e.g. two HA xsq_routers
// over one shard set). A transport failure on an idempotent verb
// retries transparently on the next endpoint; sticky sessions
// (query/cached) are replayed from OPEN on the survivor, so killing
// one router mid-command still yields the single-router transcript.
//
// Commands:
//   stats                      print the server's STATS block
//   metrics                    print the METRICS exposition (verb path)
//   http-metrics               scrape GET /metrics over raw HTTP/1.0
//                              (same bytes a Prometheus scraper sees)
//   query <xpath> [file]       open a session, stream the file (or
//                              stdin) as one document, print ITEM/AGG
//                              results
//   cached <name> <xpath>      RUNCACHED a recorded document
//   record <name> [file]       parse once, cache the tape server-side
//   publish [file]             PUBLISH the file (or stdin) to every
//                              standing subscription on the server
//   follow <xpath> [...]       SUBSCRIBE the given standing queries on
//                              one dedicated connection and stream the
//                              asynchronous EVENT frames to stdout
//                              until the server closes or the process
//                              is killed (raise the daemon's
//                              --idle-timeout-ms for quiet feeds)
//   raw <protocol line>        send one verbatim protocol line
//
// Exit status: 0 on OK, 1 on an ERR reply or transport failure, 2 on
// usage errors.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "net/client.h"
#include "net/line_protocol.h"

namespace {

using xsq::net::Client;
using xsq::net::ClientConfig;
using xsq::net::LineProtocol;
using xsq::net::Response;

int Usage() {
  std::fprintf(stderr,
               "usage: xsqctl [--host=H] [--port=P] [--router=H:P[,H:P...]] "
               "[--timeout-ms=N] [--retries=N] "
               "stats|metrics|http-metrics|query|cached|record|publish|"
               "follow|raw ...\n");
  return 2;
}

// "--router=a:1,b:2" -> endpoint list for net::Client failover.
bool ParseEndpoints(std::string_view arg,
                    std::vector<xsq::net::Endpoint>* out) {
  size_t eq = arg.find('=');
  if (eq == std::string_view::npos) return false;
  std::string_view list = arg.substr(eq + 1);
  while (!list.empty()) {
    size_t comma = list.find(',');
    std::string_view spec = list.substr(0, comma);
    list = comma == std::string_view::npos ? std::string_view()
                                           : list.substr(comma + 1);
    if (spec.empty()) continue;
    size_t colon = spec.rfind(':');
    if (colon == std::string_view::npos || colon == 0 ||
        colon + 1 >= spec.size()) {
      return false;
    }
    xsq::net::Endpoint endpoint;
    endpoint.host.assign(spec.substr(0, colon));
    endpoint.port = static_cast<uint16_t>(
        std::strtoul(std::string(spec.substr(colon + 1)).c_str(), nullptr,
                     10));
    if (endpoint.port == 0) return false;
    out->push_back(std::move(endpoint));
  }
  return !out->empty();
}

// Run a sticky OPEN..CLOSE conversation with session-level failover: a
// transport failure mid-session loses the server-side session, so the
// whole conversation replays against the next endpoint (net::Client has
// already advanced past the dead one). Attempts are bounded by the
// endpoint count — each endpoint gets at most one full replay.
int RunSession(Client& client,
               const std::function<int(Client&, bool*)>& body) {
  const size_t attempts = std::max<size_t>(1, client.endpoint_count());
  int rc = 1;
  for (size_t i = 0; i < attempts; ++i) {
    bool transport_failed = false;
    rc = body(client, &transport_failed);
    if (!transport_failed) return rc;
    if (i + 1 < attempts) {
      std::fprintf(stderr,
                   "xsqctl: transport failure, replaying session on next "
                   "endpoint\n");
    }
  }
  return rc;
}

bool ReadAll(const std::string& path, std::string* out) {
  std::istream* in = &std::cin;
  std::ifstream file;
  if (!path.empty() && path != "-") {
    file.open(path, std::ios::binary);
    if (!file) return false;
    in = &file;
  }
  std::ostringstream buffer;
  buffer << in->rdbuf();
  *out = buffer.str();
  return true;
}

void PrintResponse(const Response& response) {
  for (const std::string& line : response.lines) {
    std::printf("%s\n", line.c_str());
  }
  if (response.status.ok()) {
    if (response.ok_payload.empty()) {
      std::printf("OK\n");
    } else {
      std::printf("OK %s\n", response.ok_payload.c_str());
    }
  } else {
    std::printf("ERR %s\n", response.status.ToString().c_str());
  }
}

int RunOne(Client& client, const std::string& line) {
  auto response = client.Request(line);
  if (!response.ok()) {
    std::fprintf(stderr, "xsqctl: %s\n",
                 response.status().ToString().c_str());
    return 1;
  }
  PrintResponse(*response);
  return response->status.ok() ? 0 : 1;
}

// Raw HTTP/1.0 GET /metrics against the same port the protocol uses,
// proving the scrape path without curl. Prints the response body
// (headers stripped).
int HttpMetrics(const ClientConfig& config) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    std::perror("xsqctl: socket");
    return 1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config.port);
  if (::inet_pton(AF_INET, config.host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::perror("xsqctl: connect");
    ::close(fd);
    return 1;
  }
  const char request[] = "GET /metrics HTTP/1.0\r\n\r\n";
  if (::send(fd, request, sizeof(request) - 1, MSG_NOSIGNAL) < 0) {
    std::perror("xsqctl: send");
    ::close(fd);
    return 1;
  }
  std::string response;
  char buf[64 * 1024];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // server closes after the response
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  size_t body = response.find("\r\n\r\n");
  if (response.rfind("HTTP/1.0 200", 0) != 0 || body == std::string::npos) {
    std::fprintf(stderr, "xsqctl: bad HTTP response\n");
    return 1;
  }
  std::fwrite(response.data() + body + 4, 1, response.size() - body - 4,
              stdout);
  return 0;
}

// Follow mode: one raw long-lived connection (net::Client is
// request/response; EVENT frames arrive unsolicited, so we speak the
// socket directly). Sends one SUBSCRIBE per query, checks each "OK
// <sub-id>" reply, then streams every further line — the EVENT feed —
// to stdout until the server closes the connection.
int Follow(const ClientConfig& config,
           const std::vector<std::string>& queries) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    std::perror("xsqctl: socket");
    return 1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config.port);
  if (::inet_pton(AF_INET, config.host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::perror("xsqctl: connect");
    ::close(fd);
    return 1;
  }
  std::string request;
  for (const std::string& query : queries) {
    request += "SUBSCRIBE " + query + "\n";
  }
  if (::send(fd, request.data(), request.size(), MSG_NOSIGNAL) < 0) {
    std::perror("xsqctl: send");
    ::close(fd);
    return 1;
  }
  size_t replies_pending = queries.size();
  bool subscribe_failed = false;
  std::string buffer;
  char buf[64 * 1024];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    buffer.append(buf, static_cast<size_t>(n));
    size_t begin = 0;
    for (;;) {
      size_t newline = buffer.find('\n', begin);
      if (newline == std::string::npos) break;
      std::string_view line(buffer.data() + begin, newline - begin);
      std::printf("%.*s\n", static_cast<int>(line.size()), line.data());
      if (replies_pending > 0 && line.rfind("EVENT ", 0) != 0) {
        --replies_pending;
        if (line.rfind("OK ", 0) != 0) subscribe_failed = true;
      }
      begin = newline + 1;
    }
    buffer.erase(0, begin);
    std::fflush(stdout);
    if (subscribe_failed) break;
  }
  ::close(fd);
  return subscribe_failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  ClientConfig config;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto value = [&arg](size_t fallback) -> size_t {
      size_t eq = arg.find('=');
      if (eq == std::string_view::npos) return fallback;
      return static_cast<size_t>(std::strtoull(
          std::string(arg.substr(eq + 1)).c_str(), nullptr, 10));
    };
    if (arg.rfind("--host", 0) == 0) {
      size_t eq = arg.find('=');
      if (eq != std::string_view::npos) {
        config.host = std::string(arg.substr(eq + 1));
      }
    } else if (arg.rfind("--port", 0) == 0) {
      config.port = static_cast<uint16_t>(value(0));
    } else if (arg.rfind("--router", 0) == 0) {
      if (!ParseEndpoints(arg, &config.endpoints)) {
        std::fprintf(stderr,
                     "xsqctl: bad --router (want HOST:PORT[,HOST:PORT...])\n");
        return 2;
      }
    } else if (arg.rfind("--timeout-ms", 0) == 0) {
      config.request_timeout_ms = value(config.request_timeout_ms);
      config.connect_timeout_ms = config.request_timeout_ms;
    } else if (arg.rfind("--retries", 0) == 0) {
      config.max_retries = static_cast<int>(value(config.max_retries));
    } else if (arg.rfind("--", 0) == 0) {
      return Usage();
    } else {
      args.emplace_back(arg);
    }
  }
  if (args.empty() || (config.port == 0 && config.endpoints.empty())) {
    return Usage();
  }
  // The raw-socket paths (http-metrics, follow) speak to one address;
  // with --router they use the first endpoint.
  if (config.port == 0 && !config.endpoints.empty()) {
    config.host = config.endpoints[0].host;
    config.port = config.endpoints[0].port;
  }
  const std::string& command = args[0];

  if (command == "http-metrics") {
    return HttpMetrics(config);
  }
  if (command == "follow") {
    if (args.size() < 2) return Usage();
    return Follow(config,
                  std::vector<std::string>(args.begin() + 1, args.end()));
  }

  Client client(config);
  if (command == "stats") {
    return RunOne(client, "STATS");
  } else if (command == "metrics") {
    return RunOne(client, "METRICS");
  } else if (command == "raw") {
    if (args.size() < 2) return Usage();
    return RunOne(client, args[1]);
  } else if (command == "record") {
    if (args.size() < 2) return Usage();
    std::string document;
    if (!ReadAll(args.size() > 2 ? args[2] : "-", &document)) {
      std::fprintf(stderr, "xsqctl: cannot read %s\n", args[2].c_str());
      return 1;
    }
    return RunOne(client,
                  "RECORD " + args[1] + " " + LineProtocol::Escape(document));
  } else if (command == "publish") {
    std::string document;
    if (!ReadAll(args.size() > 1 ? args[1] : "-", &document)) {
      std::fprintf(stderr, "xsqctl: cannot read %s\n", args[1].c_str());
      return 1;
    }
    return RunOne(client, "PUBLISH " + LineProtocol::Escape(document));
  } else if (command == "cached") {
    if (args.size() < 3) return Usage();
    return RunSession(client, [&args](Client& c, bool* transport_failed) {
      auto open = c.Request("OPEN " + args[2]);
      if (!open.ok()) {
        *transport_failed = true;
        std::fprintf(stderr, "xsqctl: %s\n",
                     open.status().ToString().c_str());
        return 1;
      }
      if (!open->status.ok()) {
        std::fprintf(stderr, "xsqctl: OPEN failed\n");
        return 1;
      }
      auto run = c.Request("RUNCACHED " + open->ok_payload + " " + args[1]);
      if (!run.ok()) {
        *transport_failed = true;
        std::fprintf(stderr, "xsqctl: %s\n", run.status().ToString().c_str());
        return 1;
      }
      PrintResponse(*run);
      return run->status.ok() ? 0 : 1;
    });
  } else if (command == "query") {
    if (args.size() < 2) return Usage();
    std::string document;
    if (!ReadAll(args.size() > 2 ? args[2] : "-", &document)) {
      std::fprintf(stderr, "xsqctl: cannot read %s\n", args[2].c_str());
      return 1;
    }
    return RunSession(client, [&args, &document](Client& c,
                                                 bool* transport_failed) {
      auto open = c.Request("OPEN " + args[1]);
      if (!open.ok()) {
        *transport_failed = true;
        std::fprintf(stderr, "xsqctl: %s\n",
                     open.status().ToString().c_str());
        return 1;
      }
      if (!open->status.ok()) {
        PrintResponse(*open);
        return 1;
      }
      const std::string id = open->ok_payload;
      auto push =
          c.Request("PUSH " + id + " " + LineProtocol::Escape(document));
      if (!push.ok()) {
        *transport_failed = true;
        std::fprintf(stderr, "xsqctl: %s\n",
                     push.status().ToString().c_str());
        return 1;
      }
      if (!push->status.ok()) {
        std::fprintf(stderr, "xsqctl: PUSH failed\n");
        return 1;
      }
      auto close = c.Request("CLOSE " + id);
      if (!close.ok()) {
        *transport_failed = true;
        std::fprintf(stderr, "xsqctl: %s\n",
                     close.status().ToString().c_str());
        return 1;
      }
      PrintResponse(*close);
      return close->status.ok() ? 0 : 1;
    });
  }
  return Usage();
}
