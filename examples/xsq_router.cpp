// xsq_router: the cluster front-tier daemon. Speaks the xsqd line
// protocol to clients and fans requests out to N backend xsqd shards
// (see src/cluster/router.h for the routing rules).
//
//   $ xsqd --listen=9101 &   # shard 0
//   $ xsqd --listen=9102 &   # shard 1
//   $ xsqd --listen=9103 &   # shard 2
//   $ xsq_router --listen=9100 --shard=127.0.0.1:9101
//         --shard=127.0.0.1:9102 --shard=127.0.0.1:9103   # one line
//
// Clients connect to the router exactly as they would to one xsqd:
// OPEN/PUSH/CLOSE stream through a least-loaded shard, RECORD and
// RUNCACHED follow the document key's consistent-hash owner, STATS and
// METRICS return the merged cluster view, and GET /metrics on the
// router's port serves the merged exposition plus the router's own
// xsq_router_* section. SUBSCRIBE/PUBLISH are per-shard and answered
// with NotSupported.
//
// Health: every --probe-interval-ms (±20% jitter) the router polls
// each shard's GET /healthz; --probe-fail-threshold consecutive misses
// mark a shard dead and its keys remap to the surviving ring;
// --probe-rise-threshold consecutive good probes bring it back
// (anti-flap hysteresis; default 1 = instantly).
//
// High availability: run N >= 2 routers over the same --shard set and
// point each at the others with --peers=HOST:PORT,... Routers exchange
// gossip digests (per-shard health epochs + the RECORD key index) on a
// jittered --gossip-interval-ms cadence via the GOSSIP verb, so their
// liveness masks converge within one interval and every router
// computes the same ring for every key. Clients list every router
// (xsqctl --router=a:PORT,b:PORT); transport failures fail over to the
// next endpoint. A peer that stops answering is marked down in
// xsq_router_gossip_peer_down_total — client failover is the recovery
// path; routers never proxy for each other.
//
// Replication: --replication-factor=N (default 1 = off) keeps N copies
// of every recorded tape on the key's first N distinct ring owners.
// The primary write stays synchronous; replicas fill from an async
// fanout queue. When the primary dies, RUNCACHED serves byte-identical
// replay from a replica with zero client re-records, and after every
// probe pass that changed the liveness mask an anti-entropy sweep
// re-replicates under-replicated keys (shard-to-shard REPLPULL,
// CRC-verified). REPLSTATUS on the router reports the plane's state.
//
// Flags: --listen=PORT (0 picks an ephemeral port, printed as
//        "LISTENING <port>"), --shard=HOST:PORT (repeat per shard),
//        --vnodes=N (ring points per shard; default 64),
//        --replication-factor=N (tape copies; default 1),
//        --probe-interval-ms=N (default 500),
//        --probe-fail-threshold=N (default 3),
//        --probe-rise-threshold=N (good probes to resurrect; default 1),
//        --peers=HOST:PORT[,HOST:PORT...] (fellow routers to gossip
//        with; repeatable), --gossip-interval-ms=N (default 500),
//        --request-timeout-ms=N (per backend request; default 5000),
//        --pool-conns=N (pooled connections per shard; default 4),
//        --max-connections=N (router accept shed; default 64),
//        --drain-deadline-ms=N (shutdown drain bound; default 2000).
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <string_view>
#include <thread>

#include "cluster/router.h"
#include "net/server.h"

namespace {

std::atomic<int> g_signal{0};

void OnSignal(int sig) { g_signal.store(sig, std::memory_order_relaxed); }

void InstallSignalHandlers() {
  struct sigaction action{};
  action.sa_handler = OnSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
}

size_t FlagValue(std::string_view arg, size_t fallback) {
  size_t eq = arg.find('=');
  if (eq == std::string_view::npos) return fallback;
  return static_cast<size_t>(
      std::strtoull(std::string(arg.substr(eq + 1)).c_str(), nullptr, 10));
}

bool ParseHostPort(std::string_view spec, xsq::cluster::ShardAddress* out) {
  size_t colon = spec.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 >= spec.size()) {
    return false;
  }
  out->host.assign(spec.substr(0, colon));
  out->port = static_cast<uint16_t>(
      std::strtoul(std::string(spec.substr(colon + 1)).c_str(), nullptr, 10));
  return out->port != 0;
}

bool ParseShard(std::string_view arg, xsq::cluster::ShardAddress* out) {
  size_t eq = arg.find('=');
  if (eq == std::string_view::npos) return false;
  return ParseHostPort(arg.substr(eq + 1), out);
}

// "--peers=a:1,b:2" -> appends each HOST:PORT to *out.
bool ParsePeers(std::string_view arg,
                std::vector<xsq::cluster::ShardAddress>* out) {
  size_t eq = arg.find('=');
  if (eq == std::string_view::npos) return false;
  std::string_view list = arg.substr(eq + 1);
  while (!list.empty()) {
    size_t comma = list.find(',');
    std::string_view spec = list.substr(0, comma);
    list = comma == std::string_view::npos ? std::string_view()
                                           : list.substr(comma + 1);
    if (spec.empty()) continue;
    xsq::cluster::ShardAddress peer;
    if (!ParseHostPort(spec, &peer)) return false;
    out->push_back(std::move(peer));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  xsq::cluster::RouterConfig config;
  xsq::net::ServerConfig net_config;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--listen", 0) == 0) {
      net_config.port = static_cast<uint16_t>(FlagValue(arg, 0));
    } else if (arg.rfind("--shard", 0) == 0) {
      xsq::cluster::ShardAddress shard;
      if (!ParseShard(arg, &shard)) {
        std::fprintf(stderr, "bad --shard (want HOST:PORT): %s\n",
                     std::string(arg).c_str());
        return 2;
      }
      config.shards.push_back(std::move(shard));
    } else if (arg.rfind("--vnodes", 0) == 0) {
      config.vnodes = FlagValue(arg, config.vnodes);
    } else if (arg.rfind("--replication-factor", 0) == 0) {
      config.replication.factor = FlagValue(arg, config.replication.factor);
    } else if (arg.rfind("--probe-interval-ms", 0) == 0) {
      config.probe.interval_ms = FlagValue(arg, config.probe.interval_ms);
    } else if (arg.rfind("--probe-fail-threshold", 0) == 0) {
      config.probe.fail_threshold =
          static_cast<int>(FlagValue(arg, config.probe.fail_threshold));
    } else if (arg.rfind("--probe-rise-threshold", 0) == 0) {
      config.probe.rise_threshold =
          static_cast<int>(FlagValue(arg, config.probe.rise_threshold));
    } else if (arg.rfind("--peers", 0) == 0) {
      if (!ParsePeers(arg, &config.gossip.peers)) {
        std::fprintf(stderr, "bad --peers (want HOST:PORT[,HOST:PORT...]): %s\n",
                     std::string(arg).c_str());
        return 2;
      }
      config.gossip.enable = true;
    } else if (arg.rfind("--gossip-interval-ms", 0) == 0) {
      config.gossip.interval_ms = FlagValue(arg, config.gossip.interval_ms);
    } else if (arg.rfind("--request-timeout-ms", 0) == 0) {
      config.backend.request_timeout_ms =
          FlagValue(arg, config.backend.request_timeout_ms);
    } else if (arg.rfind("--pool-conns", 0) == 0) {
      config.backend.max_pool_conns =
          FlagValue(arg, config.backend.max_pool_conns);
    } else if (arg.rfind("--max-connections", 0) == 0) {
      net_config.max_connections = FlagValue(arg, net_config.max_connections);
    } else if (arg.rfind("--drain-deadline-ms", 0) == 0) {
      net_config.drain_deadline_ms =
          FlagValue(arg, net_config.drain_deadline_ms);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", std::string(arg).c_str());
      return 2;
    }
  }
  if (config.shards.empty()) {
    std::fprintf(stderr, "xsq_router needs at least one --shard=HOST:PORT\n");
    return 2;
  }

  auto router = xsq::cluster::Router::Create(std::move(config));
  if (!router.ok()) {
    std::fprintf(stderr, "router init failed: %s\n",
                 router.status().ToString().c_str());
    return 1;
  }
  // Mark shards' initial health before serving, so the first client
  // request does not race the first probe pass.
  (*router)->ProbeNow();

  auto server =
      xsq::net::Server::Create((*router)->MakeServerApp(), net_config);
  if (!server.ok()) {
    std::fprintf(stderr, "listen failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  std::printf("LISTENING %u\n", static_cast<unsigned>((*server)->port()));
  std::fflush(stdout);

  InstallSignalHandlers();
  while (g_signal.load(std::memory_order_relaxed) == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  (*server)->BeginDrain();
  (*server)->Stop();
  return 0;
}
