// Selective dissemination of information, XFilter/YFilter style
// (paper Section 5): thousands of standing path subscriptions, a stream
// of documents, and for each document the set of subscriptions it
// matches. Filtering returns document ids only - contrast with the XSQ
// engines, which return element data and therefore must buffer.
#include <cstdio>
#include <string>
#include <vector>

#include "common/strings.h"
#include "filter/filter_engine.h"

int main() {
  xsq::filter::FilterEngine engine;

  // Standing subscriptions: a few hand-written plus generated ones that
  // share prefixes (YFilter's shared-NFA advantage).
  std::vector<std::string> subscriptions = {
      "/news/sports//headline",
      "/news/politics/headline",
      "//alert",
      "/news/*/breaking",
  };
  for (int i = 0; i < 200; ++i) {
    subscriptions.push_back("/news/feed" + std::to_string(i % 20) +
                            "/item" + std::to_string(i) + "/headline");
  }
  for (const std::string& subscription : subscriptions) {
    xsq::Result<int> id = engine.AddQuery(subscription);
    if (!id.ok()) {
      std::fprintf(stderr, "bad subscription '%s': %s\n",
                   subscription.c_str(), id.status().ToString().c_str());
      return 1;
    }
  }
  std::printf("%zu subscriptions compiled into %zu shared NFA nodes\n",
              engine.query_count(), engine.node_count());

  const char* documents[] = {
      "<news><sports><match><headline>Upset in the final</headline>"
      "</match></sports></news>",
      "<news><politics><headline>Budget passes</headline>"
      "<breaking>vote tally</breaking></politics></news>",
      "<news><feed3><item3><headline>hi</headline></item3></feed3></news>",
      "<sys><alert>disk full</alert></sys>",
      "<news><weather><sunny/></weather></news>",
  };
  for (size_t d = 0; d < std::size(documents); ++d) {
    xsq::Result<std::vector<int>> matched =
        engine.FilterDocument(documents[d]);
    if (!matched.ok()) {
      std::fprintf(stderr, "%s\n", matched.status().ToString().c_str());
      return 1;
    }
    std::printf("document %zu matches %zu subscription(s):", d,
                matched->size());
    for (int id : *matched) {
      std::printf(" %s", subscriptions[static_cast<size_t>(id)].c_str());
    }
    std::printf("\n");
  }
  return 0;
}
