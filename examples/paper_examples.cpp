// Reproduces Examples 1 and 2 of "XPath Queries on Streaming Data"
// (Peng & Chawathe, SIGMOD 2003) end to end, and prints the HPDT of the
// paper's Figure 11 query.
#include <cstdio>
#include <string>

#include "core/engine.h"
#include "core/hpdt.h"
#include "xpath/ast.h"

namespace {

// Figure 1 of the paper.
constexpr const char* kFigure1 = R"(<root>
 <pub>
  <book id="1">
   <price>12.00</price><name>First</name>
   <author>A</author><price type="discount">10.00</price>
  </book>
  <book id="2">
   <price>14.00</price><name>Second</name>
   <author>A</author><author>B</author>
   <price type="discount">12.00</price>
  </book>
  <year>2002</year>
 </pub>
</root>)";

// Figure 2 of the paper: recursive structure (a pub inside a book).
constexpr const char* kFigure2 = R"(<root>
 <pub>
  <book><name>X</name><author>A</author></book>
  <book><name>Y</name>
   <pub>
    <book><name>Z</name><author>B</author></book>
    <year>1999</year>
   </pub>
  </book>
  <year>2002</year>
 </pub>
</root>)";

void RunAndPrint(const char* title, const char* query, const char* document) {
  std::printf("\n=== %s ===\nquery: %s\n", title, query);
  xsq::Result<xsq::core::QueryResult> result =
      xsq::core::RunQuery(query, document);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  if (result->items.empty() && !result->aggregate.has_value()) {
    std::printf("(empty result)\n");
  }
  for (const std::string& item : result->items) {
    std::printf("  %s\n", item.c_str());
  }
  if (result->aggregate.has_value()) {
    std::printf("  aggregate = %g\n", *result->aggregate);
  }
}

}  // namespace

int main() {
  // Example 1: the author A streams past long before [year=2002] and
  // [price<11] can be decided, so it must be buffered; the authors of
  // the second book are buffered and later discarded.
  RunAndPrint("Example 1", "/root/pub[year=2002]/book[price<11]/author",
              kFigure1);

  // Example 2: with closures over recursive data, name Z matches the
  // query three ways; exactly one chain proves both predicates, and X/Z
  // are emitted once each, in document order.
  RunAndPrint("Example 2", "//pub[year=2002]//book[author]//name", kFigure2);

  // The same query with different predicates: nothing survives.
  RunAndPrint("Example 2, failing predicate",
              "//pub[year=1900]//book[author]//name", kFigure2);

  // Aggregation variant from Section 4.4.
  RunAndPrint("Section 4.4 aggregation",
              "//pub[year>2000]//book[author]//name/count()", kFigure2);

  // Print the HPDT of Figure 11.
  xsq::Result<xsq::xpath::Query> query = xsq::xpath::ParseQuery(
      "//pub[year>2000]//book[author]//name/text()");
  if (query.ok()) {
    auto hpdt = xsq::core::Hpdt::Build(*query);
    if (hpdt.ok()) {
      std::printf("\n=== HPDT for the Figure 11 query ===\n%s",
                  (*hpdt)->DebugString().c_str());
    }
  }
  return 0;
}
