// Schema tools: streaming DTD validation and schema-aware query
// optimization (the Section 5 future work of the paper).
//
// Demonstrates:
//   1. validating a stream against a DTD in one pass (pushdown
//      automaton, no materialization),
//   2. proving a query unsatisfiable from the schema alone,
//   3. rewriting closure axes into child axes when the schema admits a
//      unique path, so the faster deterministic engine can run.
#include <cstdio>
#include <string>

#include "core/engine.h"
#include "core/engine_nc.h"
#include "core/result_sink.h"
#include "dtd/dtd.h"
#include "dtd/optimizer.h"
#include "dtd/validator.h"
#include "xml/sax_parser.h"
#include "xpath/ast.h"

namespace {

constexpr const char* kCatalogDtd = R"(
  <!ELEMENT catalog (vendor+)>
  <!ELEMENT vendor (name, product+)>
  <!ATTLIST vendor id CDATA #REQUIRED>
  <!ELEMENT product (name, price, stock?)>
  <!ELEMENT name (#PCDATA)>
  <!ELEMENT price (#PCDATA)>
  <!ELEMENT stock (#PCDATA)>
)";

constexpr const char* kCatalog = R"(<catalog>
  <vendor id="v1">
    <name>Acme</name>
    <product><name>Widget</name><price>9.99</price><stock>4</stock></product>
    <product><name>Sprocket</name><price>19.99</price></product>
  </vendor>
  <vendor id="v2">
    <name>Globex</name>
    <product><name>Gizmo</name><price>4.99</price></product>
  </vendor>
</catalog>)";

}  // namespace

int main() {
  xsq::Result<xsq::dtd::Dtd> dtd = xsq::dtd::Dtd::Parse(kCatalogDtd);
  if (!dtd.ok()) {
    std::fprintf(stderr, "%s\n", dtd.status().ToString().c_str());
    return 1;
  }
  std::printf("parsed DTD with %zu element declarations; recursive: %s\n",
              dtd->element_count(), dtd->IsRecursive() ? "yes" : "no");

  // 1. Streaming validation.
  xsq::Status valid = xsq::dtd::ValidateDocument(*dtd, kCatalog, "catalog");
  std::printf("document validation: %s\n",
              valid.ok() ? "valid" : valid.ToString().c_str());
  xsq::Status invalid = xsq::dtd::ValidateDocument(
      *dtd, "<catalog><vendor id=\"x\"><product/></vendor></catalog>",
      "catalog");
  std::printf("deliberately broken document: %s\n",
              invalid.ToString().c_str());

  // 2. Schema-proven emptiness.
  auto ghost = xsq::xpath::ParseQuery("//vendor/discount/text()");
  auto ghost_analysis = xsq::dtd::AnalyzeQuery(*dtd, "catalog", *ghost);
  if (ghost_analysis.ok() && !ghost_analysis->satisfiable) {
    std::printf("query //vendor/discount/text(): %s\n",
                ghost_analysis->unsatisfiable_reason.c_str());
  }

  // 3. Closure elimination: //product//name would need XSQ-F; the DTD
  // proves product names live at exactly one path.
  auto query = xsq::xpath::ParseQuery("//product/name/text()");
  auto analysis = xsq::dtd::AnalyzeQuery(*dtd, "catalog", *query);
  if (!analysis.ok()) return 1;
  if (analysis->closure_free_rewrite.has_value()) {
    std::printf("rewrite: %s  ->  %s\n", query->ToString().c_str(),
                analysis->closure_free_rewrite->ToString().c_str());
    xsq::core::CollectingSink sink;
    auto engine =
        xsq::core::XsqNcEngine::Create(*analysis->closure_free_rewrite,
                                       &sink);
    if (!engine.ok()) return 1;
    xsq::xml::SaxParser parser(engine->get());
    if (!parser.Parse(kCatalog).ok()) return 1;
    std::printf("results via deterministic XSQ-NC:\n");
    for (const std::string& item : sink.items) {
      std::printf("  %s\n", item.c_str());
    }
  }
  return 0;
}
