// xsq_cli: a command-line streaming XPath processor, the shape of the
// tool the paper released ("the XSQ system, which will be released under
// the GNU GPL license").
//
// Usage:
//   xsq_cli [--engine=f|nc|dom|lazydfa|naive] [--explain] [--stats]
//           [--trace] [--validate] QUERY [FILE]
//
// --validate checks the stream against the DTD carried in its own
// DOCTYPE internal subset, in the same pass as the query.
//
// Reads FILE (or stdin when omitted) and prints one result item per
// line; aggregation queries print running updates and the final value.
// --explain prints the compiled HPDT (Figure 11 style) and exits.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "core/engine.h"
#include "core/trace.h"
#include "core/engine_nc.h"
#include "core/hpdt.h"
#include "core/result_sink.h"
#include "dom/builder.h"
#include "dtd/dtd.h"
#include "dtd/validator.h"
#include "dom/evaluator.h"
#include "lazydfa/lazy_dfa_engine.h"
#include "naive/naive_engine.h"
#include "xml/sax_parser.h"
#include "xpath/ast.h"

namespace {

class StdoutSink : public xsq::core::ResultSink {
 public:
  void OnItem(std::string_view value) override {
    std::fwrite(value.data(), 1, value.size(), stdout);
    std::fputc('\n', stdout);
    ++items;
  }
  void OnAggregateUpdate(double value) override {
    std::printf("update: %g\n", value);
  }
  void OnAggregateFinal(std::optional<double> value) override {
    if (value.has_value()) {
      std::printf("final: %g\n", *value);
    } else {
      std::printf("final: (undefined)\n");
    }
  }
  size_t items = 0;
};

// Validates the stream against the DOCTYPE internal subset it carries,
// in the same pass as the query (--validate).
class AutoValidator : public xsq::xml::SaxHandler {
 public:
  void OnDoctype(std::string_view name,
                 std::string_view internal_subset) override {
    if (internal_subset.empty()) return;
    xsq::Result<xsq::dtd::Dtd> dtd = xsq::dtd::Dtd::Parse(internal_subset);
    if (!dtd.ok()) {
      status_ = dtd.status();
      return;
    }
    dtd_ = std::make_unique<xsq::dtd::Dtd>(*std::move(dtd));
    validator_ =
        std::make_unique<xsq::dtd::DtdValidator>(*dtd_, std::string(name));
    validator_->OnDocumentBegin();
  }
  void OnBegin(std::string_view tag,
               const std::vector<xsq::xml::Attribute>& attributes,
               int depth) override {
    if (validator_) validator_->OnBegin(tag, attributes, depth);
  }
  void OnEnd(std::string_view tag, int depth) override {
    if (validator_) validator_->OnEnd(tag, depth);
  }
  void OnText(std::string_view tag, std::string_view text,
              int depth) override {
    if (validator_) validator_->OnText(tag, text, depth);
  }

  xsq::Status status() const {
    if (!status_.ok()) return status_;
    if (validator_) return validator_->status();
    return xsq::Status::OK();
  }
  bool saw_dtd() const { return validator_ != nullptr; }

 private:
  std::unique_ptr<xsq::dtd::Dtd> dtd_;
  std::unique_ptr<xsq::dtd::DtdValidator> validator_;
  xsq::Status status_;
};

// Prints each buffer operation as it happens (--trace).
class TracePrinter : public xsq::core::TraceListener {
 public:
  void OnBufferOp(const xsq::core::BufferOp& op) override {
    std::fprintf(stderr, "trace: %s\n", op.ToString().c_str());
  }
};

int Fail(const xsq::Status& status) {
  std::fprintf(stderr, "xsq_cli: %s\n", status.ToString().c_str());
  return 1;
}

int StreamThrough(xsq::xml::SaxHandler* handler, std::istream& in,
                  bool validate = false) {
  AutoValidator auto_validator;
  xsq::xml::TeeHandler tee;
  tee.AddTarget(handler);
  if (validate) {
    tee.AddTarget(&auto_validator);
    handler = &tee;
  }
  xsq::xml::SaxParser parser(handler);
  std::string buffer(1 << 16, '\0');
  while (in) {
    in.read(buffer.data(), static_cast<std::streamsize>(buffer.size()));
    std::streamsize got = in.gcount();
    if (got <= 0) break;
    xsq::Status status =
        parser.Feed(std::string_view(buffer.data(), static_cast<size_t>(got)));
    if (!status.ok()) return Fail(status);
  }
  xsq::Status status = parser.Finish();
  if (!status.ok()) return Fail(status);
  if (validate) {
    if (!auto_validator.saw_dtd()) {
      std::fprintf(stderr,
                   "xsq_cli: --validate: no DOCTYPE internal subset found\n");
    } else if (!auto_validator.status().ok()) {
      std::fprintf(stderr, "xsq_cli: %s\n",
                   auto_validator.status().ToString().c_str());
      return 1;
    } else {
      std::fprintf(stderr, "xsq_cli: document valid per its DOCTYPE\n");
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string engine_name = "f";
  bool explain = false;
  bool stats = false;
  bool trace = false;
  bool validate = false;
  std::string query_text;
  std::string file;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--engine=", 0) == 0) {
      engine_name = arg.substr(9);
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--validate") {
      validate = true;
    } else if (query_text.empty()) {
      query_text = arg;
    } else if (file.empty()) {
      file = arg;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (query_text.empty()) {
    std::fprintf(stderr,
                 "usage: xsq_cli [--engine=f|nc|dom|lazydfa|naive] "
                 "[--explain] [--stats] [--trace] [--validate] QUERY "
                 "[FILE]\n");
    return 2;
  }

  xsq::Result<xsq::xpath::Query> query = xsq::xpath::ParseQuery(query_text);
  if (!query.ok()) return Fail(query.status());

  if (explain) {
    auto hpdt = xsq::core::Hpdt::Build(*query);
    if (!hpdt.ok()) return Fail(hpdt.status());
    std::fputs((*hpdt)->DebugString().c_str(), stdout);
    return 0;
  }

  std::ifstream file_stream;
  std::istream* in = &std::cin;
  if (!file.empty()) {
    file_stream.open(file, std::ios::binary);
    if (!file_stream) {
      std::fprintf(stderr, "cannot open %s\n", file.c_str());
      return 1;
    }
    in = &file_stream;
  }

  StdoutSink sink;
  int rc = 0;
  if (engine_name == "f") {
    auto engine = xsq::core::XsqEngine::Create(*query, &sink);
    if (!engine.ok()) return Fail(engine.status());
    TracePrinter tracer;
    if (trace) (*engine)->set_trace(&tracer);
    rc = StreamThrough(engine->get(), *in, validate);
    if (rc == 0 && !(*engine)->status().ok()) return Fail((*engine)->status());
    if (stats) {
      std::fprintf(stderr,
                   "# matches=%llu items=%llu discarded=%llu peak_buffer=%zuB "
                   "hpdt_bpdts=%zu\n",
                   static_cast<unsigned long long>(
                       (*engine)->stats().matches_created),
                   static_cast<unsigned long long>(
                       (*engine)->stats().items_emitted),
                   static_cast<unsigned long long>(
                       (*engine)->stats().items_discarded),
                   (*engine)->memory().peak_bytes(),
                   (*engine)->hpdt().bpdt_count());
    }
  } else if (engine_name == "nc") {
    auto engine = xsq::core::XsqNcEngine::Create(*query, &sink);
    if (!engine.ok()) return Fail(engine.status());
    rc = StreamThrough(engine->get(), *in);
    if (rc == 0 && !(*engine)->status().ok()) return Fail((*engine)->status());
    if (stats) {
      std::fprintf(stderr, "# items=%llu peak_buffer=%zuB\n",
                   static_cast<unsigned long long>((*engine)->items_emitted()),
                   (*engine)->memory().peak_bytes());
    }
  } else if (engine_name == "lazydfa") {
    auto engine = xsq::lazydfa::LazyDfaEngine::Create(*query, &sink);
    if (!engine.ok()) return Fail(engine.status());
    rc = StreamThrough(engine->get(), *in);
    if (stats) {
      std::fprintf(stderr, "# dfa_states=%zu\n",
                   (*engine)->dfa_state_count());
    }
  } else if (engine_name == "naive") {
    auto engine = xsq::naive::NaiveEngine::Create(*query, &sink);
    if (!engine.ok()) return Fail(engine.status());
    rc = StreamThrough(engine->get(), *in);
    if (stats) {
      std::fprintf(stderr, "# peak_buffer=%zuB\n",
                   (*engine)->memory().peak_bytes());
    }
  } else if (engine_name == "dom") {
    std::string content((std::istreambuf_iterator<char>(*in)),
                        std::istreambuf_iterator<char>());
    auto document = xsq::dom::BuildFromString(content);
    if (!document.ok()) return Fail(document.status());
    auto result = xsq::dom::Evaluate(*document, *query);
    if (!result.ok()) return Fail(result.status());
    for (const std::string& item : result->items) {
      std::printf("%s\n", item.c_str());
    }
    if (result->aggregate.has_value()) {
      std::printf("final: %g\n", *result->aggregate);
    }
    if (stats) {
      std::fprintf(stderr, "# dom_bytes=%zu matches=%zu\n",
                   document->ApproxBytes(), result->match_count);
    }
  } else {
    std::fprintf(stderr, "unknown engine '%s'\n", engine_name.c_str());
    return 2;
  }
  return rc;
}
