// Quickstart: evaluate an XPath query over streaming XML with XSQ++.
//
// Build:  cmake --build build --target quickstart
// Run:    ./build/examples/quickstart
#include <cstdio>

#include "core/engine.h"
#include "core/result_sink.h"
#include "xml/sax_parser.h"
#include "xpath/ast.h"

namespace {

// A sink that prints results as soon as the engine can prove membership.
class PrintingSink : public xsq::core::ResultSink {
 public:
  void OnItem(std::string_view value) override {
    std::printf("  result: %.*s\n", static_cast<int>(value.size()),
                value.data());
  }
};

}  // namespace

int main() {
  // 1. Parse the query. The grammar covers the paper's XPath subset:
  //    child (/) and closure (//) axes, the five predicate categories,
  //    and text()/@attr/aggregation outputs.
  const char* query_text = "//book[price<20]/title/text()";
  xsq::Result<xsq::xpath::Query> query = xsq::xpath::ParseQuery(query_text);
  if (!query.ok()) {
    std::fprintf(stderr, "bad query: %s\n", query.status().ToString().c_str());
    return 1;
  }
  std::printf("query: %s\n", query->ToString().c_str());

  // 2. Create the streaming engine (XSQ-F handles every query; use
  //    XsqNcEngine for closure-free queries when throughput matters).
  PrintingSink sink;
  auto engine = xsq::core::XsqEngine::Create(*query, &sink);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }

  // 3. Stream the document. Feed accepts arbitrary chunk boundaries, so
  //    this works over sockets, pipes, or files of any size. Note that
  //    the first book's title is buffered: its price arrives only later,
  //    so membership cannot be decided when the title streams past.
  const char* chunks[] = {
      "<catalog><book><title>Str",          // chunks may split anywhere
      "eaming XML</title><price>18.00</price></book>",
      "<book><title>Expensive Tome</title><price>95.00</price></book>",
      "<book><title>Cheap Thrills</title><price>5.99</price></book>",
      "</catalog>",
  };
  xsq::xml::SaxParser parser(engine->get());
  for (const char* chunk : chunks) {
    xsq::Status status = parser.Feed(chunk);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }
  xsq::Status status = parser.Finish();
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  const xsq::core::EngineStats& stats = (*engine)->stats();
  std::printf("matches created: %llu, items emitted: %llu\n",
              static_cast<unsigned long long>(stats.matches_created),
              static_cast<unsigned long long>(stats.items_emitted));
  std::printf("peak buffered bytes: %zu\n",
              (*engine)->memory().peak_bytes());
  return 0;
}
