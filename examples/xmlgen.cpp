// xmlgen: generates the synthetic corpora used by the benchmark suite,
// so experiments can also be driven by hand with xsq_cli:
//
//   ./xmlgen shake 8 > shake.xml
//   ./xsq_cli --stats QUERY shake.xml
//   (e.g. QUERY = /PLAY/ACT/SCENE/SPEECH[LINE%love]/SPEAKER/text())
//
// Usage: xmlgen CORPUS [SIZE_MB] [SEED]
//   CORPUS: shake | nasa | dblp | psd | recursive | ordering | colors
#include <cstdio>
#include <cstdlib>
#include <string>

#include "datagen/generators.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: xmlgen shake|nasa|dblp|psd|recursive|ordering|colors "
               "[SIZE_MB] [SEED]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string corpus = argv[1];
  const double size_mb = argc > 2 ? std::atof(argv[2]) : 4.0;
  const uint64_t seed =
      argc > 3 ? static_cast<uint64_t>(std::atoll(argv[3])) : 2003;
  if (size_mb <= 0) return Usage();
  const size_t bytes = static_cast<size_t>(size_mb * 1024.0 * 1024.0);

  std::string xml;
  if (corpus == "shake") {
    xml = xsq::datagen::GenerateShake(bytes, seed);
  } else if (corpus == "nasa") {
    xml = xsq::datagen::GenerateNasa(bytes, seed);
  } else if (corpus == "dblp") {
    xml = xsq::datagen::GenerateDblp(bytes, seed);
  } else if (corpus == "psd") {
    xml = xsq::datagen::GeneratePsd(bytes, seed);
  } else if (corpus == "recursive") {
    xml = xsq::datagen::GenerateRecursivePubs(bytes, seed);
  } else if (corpus == "ordering") {
    xml = xsq::datagen::GenerateOrderingDataset(bytes, 10000);
  } else if (corpus == "colors") {
    xml = xsq::datagen::GenerateColorDataset(bytes, seed);
  } else {
    return Usage();
  }

  std::fwrite(xml.data(), 1, xml.size(), stdout);

  xsq::Result<xsq::datagen::DatasetStats> stats =
      xsq::datagen::ComputeStats(xml);
  if (stats.ok()) {
    std::fprintf(stderr,
                 "# %s: %zu bytes, %zu elements, avg depth %.2f, "
                 "max depth %d, text %zu bytes\n",
                 corpus.c_str(), stats->bytes, stats->element_count,
                 stats->avg_depth, stats->max_depth, stats->text_bytes);
  }
  return 0;
}
