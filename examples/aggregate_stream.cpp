// Streaming aggregation over an unbounded feed (paper Section 4.4).
//
// The paper's motivation includes data that exists only in streaming
// form: stock tickers, news feeds, network statistics. This example
// simulates a stock-quote feed arriving in small network packets and
// keeps a live aggregate: the engine emits an updated value every time
// the aggregate changes, long before the document ends.
#include <cstdio>
#include <string>

#include "common/strings.h"
#include "core/engine_nc.h"
#include "core/result_sink.h"
#include "xml/sax_parser.h"
#include "xpath/ast.h"

namespace {

class TickerSink : public xsq::core::ResultSink {
 public:
  void OnItem(std::string_view) override {}
  void OnAggregateUpdate(double value) override {
    ++updates_;
    if (updates_ % 100 == 0) {
      std::printf("  after %5d matching quotes: running value = %.2f\n",
                  updates_, value);
    }
    last_ = value;
  }
  void OnAggregateFinal(std::optional<double> value) override {
    if (value.has_value()) {
      std::printf("final value at end of stream: %.2f (%d updates)\n",
                  *value, updates_);
    }
  }

 private:
  int updates_ = 0;
  double last_ = 0.0;
};

// Produces one <quote> element of the synthetic feed.
std::string MakeQuote(xsq::SplitMix64* rng) {
  static const char* kSymbols[] = {"XSQ", "PDT", "SAX", "XML", "HPT"};
  std::string quote = "<quote symbol=\"";
  quote += kSymbols[rng->Below(5)];
  quote += "\"><price>";
  quote += std::to_string(50 + rng->Below(100));
  quote += ".";
  quote += std::to_string(10 + rng->Below(90));
  quote += "</price><volume>";
  quote += std::to_string(100 + rng->Below(10000));
  quote += "</volume></quote>";
  return quote;
}

}  // namespace

int main() {
  // Average price of XSQ quotes, updated continuously.
  const char* query_text = "/feed/quote[@symbol=XSQ]/price/avg()";
  xsq::Result<xsq::xpath::Query> query = xsq::xpath::ParseQuery(query_text);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }
  std::printf("query: %s\n", query_text);

  TickerSink sink;
  auto engine = xsq::core::XsqNcEngine::Create(*query, &sink);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }

  xsq::xml::SaxParser parser(engine->get());
  xsq::SplitMix64 rng(2003);
  // The feed "never ends"; we simulate 50,000 packets and stop. The
  // engine's memory stays flat no matter how long this runs.
  if (!parser.Feed("<feed>").ok()) return 1;
  for (int packet = 0; packet < 50000; ++packet) {
    std::string quote = MakeQuote(&rng);
    // Deliver in two arbitrary fragments, like TCP would.
    size_t split = quote.size() / 3;
    if (!parser.Feed(std::string_view(quote).substr(0, split)).ok() ||
        !parser.Feed(std::string_view(quote).substr(split)).ok()) {
      std::fprintf(stderr, "parse error\n");
      return 1;
    }
  }
  if (!parser.Feed("</feed>").ok() || !parser.Finish().ok()) return 1;

  std::printf("peak buffered bytes over the whole stream: %zu\n",
              (*engine)->memory().peak_bytes());
  return 0;
}
