// xsqd: a query-service daemon speaking a line-delimited protocol on
// stdin/stdout. It is the thinnest possible front-end over
// service::QueryService — every command maps 1:1 onto a service call —
// which makes the whole concurrent stack scriptable from a shell:
//
//   $ printf 'OPEN //book[price<20]/title/text()\nPUSH 1 <catalog>...\n
//     CLOSE 1\nQUIT\n' | xsqd
//
// Protocol (one command per line, responses flushed per command):
//   OPEN <query>       -> OK <id>                  open a session
//   PUSH <id> <chunk>  -> OK                       feed document bytes
//   DRAIN <id>         -> ITEM <value>... OK       pop available results
//   CLOSE <id>         -> ITEM <value>...          end document; prints the
//                         [AGG <number>] OK        remaining items, the final
//                                                  aggregate if any, then
//                                                  releases the session
//   RECORD <name> <doc>-> OK <events> <bytes>     parse once, cache the tape
//   RUNCACHED <id> <name>                         replay the cached tape into
//                      -> ITEM <value>...         the session; prints items,
//                         [AGG <number>] OK       the aggregate if any, and
//                                                 keeps the session open for
//                                                 the next RUNCACHED
//   EVICT <name>       -> OK                      drop a cached tape
//   CANCEL <id>        -> OK                      cancel the session's
//                                                 in-flight evaluation;
//                                                 it fails kCancelled
//   STATS              -> STAT <name> <value>... OK
//   METRICS            -> METRIC <line>... OK     latency/phase histograms
//                                                 plus counters, Prometheus
//                                                 text format per line
//   QUIT               -> OK (and exit; EOF quits too)
// Any failure answers "ERR <Code>: <message>" instead of OK.
//
// Chunk and item payloads are escaped so arbitrary document bytes fit
// on one line: "\n" = newline, "\t" = tab, "\\" = backslash. Document
// names must not contain spaces.
//
// Malformed input never aborts the daemon: unknown verbs, bad ids and
// oversized lines all answer ERR and the loop keeps serving; EOF in the
// middle of a line processes the partial command, then exits cleanly.
//
// Flags: --workers=N (default 4), --max-sessions=N,
//        --session-memory-budget=BYTES, --plan-cache=N,
//        --doc-cache=N (0 = unlimited), --doc-cache-bytes=BYTES
//        (0 = unlimited), --slow-query-ms=N (log requests at or above
//        N ms to stderr with their parse/automaton/buffer phase split;
//        0 = disabled), --default-deadline-ms=N (deadline applied to
//        every document request; 0 = none), --drain-deadline-ms=N
//        (bound on the shutdown drain; 0 = wait forever),
//        --max-line-bytes=N (protocol lines above N bytes are rejected
//        with ERR and discarded; default 16 MiB).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>

#include "service/query_service.h"

namespace {

using xsq::service::QueryService;
using xsq::service::ServiceConfig;
using xsq::service::SessionId;

std::string Unescape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\\' && i + 1 < text.size()) {
      ++i;
      switch (text[i]) {
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case '\\': out.push_back('\\'); break;
        default: out.push_back(text[i]); break;
      }
    } else {
      out.push_back(text[i]);
    }
  }
  return out;
}

std::string Escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\\': out += "\\\\"; break;
      default: out.push_back(c); break;
    }
  }
  return out;
}

void Reply(const std::string& line) {
  std::fputs(line.c_str(), stdout);
  std::fputc('\n', stdout);
}

void ReplyStatus(const xsq::Status& status) {
  if (status.ok()) {
    Reply("OK");
  } else {
    Reply("ERR " + status.ToString());
  }
}

// "PUSH 7 <abc>" -> id=7, rest="<abc>". Returns nullopt on a bad id.
std::optional<SessionId> ParseId(std::string_view* rest) {
  size_t space = rest->find(' ');
  std::string_view id_text = rest->substr(0, space);
  *rest = space == std::string_view::npos ? std::string_view()
                                          : rest->substr(space + 1);
  if (id_text.empty()) return std::nullopt;
  SessionId id = 0;
  for (char c : id_text) {
    if (c < '0' || c > '9') return std::nullopt;
    id = id * 10 + static_cast<SessionId>(c - '0');
  }
  return id;
}

void PrintItems(QueryService& service, SessionId id) {
  for (const std::string& item : service.Drain(id)) {
    Reply("ITEM " + Escape(item));
  }
}

// "RECORD shake <doc>" -> name="shake", rest="<doc>". Empty on no name.
std::string_view TakeWord(std::string_view* rest) {
  size_t space = rest->find(' ');
  std::string_view word = rest->substr(0, space);
  *rest = space == std::string_view::npos ? std::string_view()
                                          : rest->substr(space + 1);
  return word;
}

size_t FlagValue(std::string_view arg, size_t fallback) {
  size_t eq = arg.find('=');
  if (eq == std::string_view::npos) return fallback;
  return static_cast<size_t>(
      std::strtoull(std::string(arg.substr(eq + 1)).c_str(), nullptr, 10));
}

// One bounded read of a protocol line. Unlike std::getline, a hostile
// or broken client cannot make the daemon buffer an unbounded line:
// once `max_bytes` is exceeded the rest of the line is discarded (not
// stored) and the command is rejected, keeping the daemon serving.
enum class LineRead {
  kLine,       // complete line in *line (newline consumed)
  kPartial,    // EOF mid-line: *line holds the final, unterminated command
  kEof,        // EOF with nothing read
  kOversized,  // line exceeded max_bytes; remainder discarded
};

LineRead ReadLineBounded(std::istream& in, size_t max_bytes,
                         std::string* line) {
  line->clear();
  std::streambuf* buf = in.rdbuf();
  constexpr int kEofChar = std::char_traits<char>::eof();
  for (int c = buf->sbumpc();; c = buf->sbumpc()) {
    if (c == kEofChar) {
      return line->empty() ? LineRead::kEof : LineRead::kPartial;
    }
    if (c == '\n') return LineRead::kLine;
    if (line->size() >= max_bytes) {
      // Swallow the rest of the line without storing it.
      while (c != kEofChar && c != '\n') c = buf->sbumpc();
      return LineRead::kOversized;
    }
    line->push_back(static_cast<char>(c));
  }
}

}  // namespace

int main(int argc, char** argv) {
  ServiceConfig config;
  size_t max_line_bytes = 16u << 20;  // 16 MiB
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--workers", 0) == 0) {
      config.num_workers = static_cast<int>(FlagValue(arg, 4));
    } else if (arg.rfind("--max-sessions", 0) == 0) {
      config.max_sessions = FlagValue(arg, config.max_sessions);
    } else if (arg.rfind("--session-memory-budget", 0) == 0) {
      config.per_session_memory_budget =
          FlagValue(arg, config.per_session_memory_budget);
    } else if (arg.rfind("--plan-cache", 0) == 0) {
      config.plan_cache_capacity = FlagValue(arg, config.plan_cache_capacity);
    } else if (arg.rfind("--doc-cache-bytes", 0) == 0) {
      config.doc_cache_byte_budget =
          FlagValue(arg, config.doc_cache_byte_budget);
    } else if (arg.rfind("--doc-cache", 0) == 0) {
      config.doc_cache_capacity = FlagValue(arg, config.doc_cache_capacity);
    } else if (arg.rfind("--slow-query-ms", 0) == 0) {
      config.slow_query_ms = FlagValue(arg, config.slow_query_ms);
    } else if (arg.rfind("--default-deadline-ms", 0) == 0) {
      config.default_deadline_ms = FlagValue(arg, config.default_deadline_ms);
    } else if (arg.rfind("--drain-deadline-ms", 0) == 0) {
      config.drain_deadline_ms = FlagValue(arg, config.drain_deadline_ms);
    } else if (arg.rfind("--max-line-bytes", 0) == 0) {
      max_line_bytes = FlagValue(arg, max_line_bytes);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", std::string(arg).c_str());
      return 2;
    }
  }

  QueryService service(config);
  std::string line;
  for (;;) {
    LineRead read = ReadLineBounded(std::cin, max_line_bytes, &line);
    if (read == LineRead::kEof) break;
    if (read == LineRead::kOversized) {
      Reply("ERR LimitExceeded: line exceeds --max-line-bytes=" +
            std::to_string(max_line_bytes) + "; command discarded");
      std::fflush(stdout);
      continue;
    }
    const bool eof_after_line = read == LineRead::kPartial;
    std::string_view input = line;
    if (!input.empty() && input.back() == '\r') input.remove_suffix(1);
    size_t space = input.find(' ');
    std::string_view command = input.substr(0, space);
    std::string_view rest = space == std::string_view::npos
                                ? std::string_view()
                                : input.substr(space + 1);

    if (command == "QUIT") {
      Reply("OK");
      break;
    } else if (command == "OPEN") {
      auto id = service.OpenSession(rest);
      if (id.ok()) {
        Reply("OK " + std::to_string(*id));
      } else {
        Reply("ERR " + id.status().ToString());
      }
    } else if (command == "PUSH") {
      std::optional<SessionId> id = ParseId(&rest);
      if (!id.has_value()) {
        Reply("ERR InvalidArgument: bad session id");
      } else {
        ReplyStatus(service.Push(*id, Unescape(rest)));
      }
    } else if (command == "DRAIN") {
      std::optional<SessionId> id = ParseId(&rest);
      if (!id.has_value()) {
        Reply("ERR InvalidArgument: bad session id");
      } else if (!service.HasSession(*id)) {
        Reply("ERR InvalidArgument: unknown session id " +
              std::to_string(*id));
      } else {
        PrintItems(service, *id);
        Reply("OK");
      }
    } else if (command == "CLOSE") {
      std::optional<SessionId> id = ParseId(&rest);
      if (!id.has_value()) {
        Reply("ERR InvalidArgument: bad session id");
      } else {
        xsq::Status status = service.Close(*id);
        PrintItems(service, *id);
        if (status.ok()) {
          if (std::optional<double> agg = service.FinalAggregate(*id)) {
            std::string value = std::to_string(*agg);
            Reply("AGG " + value);
          }
        }
        service.Release(*id);
        ReplyStatus(status);
      }
    } else if (command == "RECORD") {
      std::string_view name = TakeWord(&rest);
      if (name.empty()) {
        Reply("ERR InvalidArgument: missing document name");
      } else {
        auto tape = service.RecordDocument(name, Unescape(rest));
        if (tape.ok()) {
          Reply("OK " + std::to_string((*tape)->event_count()) + " " +
                std::to_string((*tape)->memory_bytes()));
        } else {
          Reply("ERR " + tape.status().ToString());
        }
      }
    } else if (command == "RUNCACHED") {
      std::optional<SessionId> id = ParseId(&rest);
      std::string_view name = TakeWord(&rest);
      if (!id.has_value()) {
        Reply("ERR InvalidArgument: bad session id");
      } else if (name.empty()) {
        Reply("ERR InvalidArgument: missing document name");
      } else {
        xsq::Status status = service.RunCached(*id, name);
        PrintItems(service, *id);
        if (status.ok()) {
          if (std::optional<double> agg = service.FinalAggregate(*id)) {
            Reply("AGG " + std::to_string(*agg));
          }
        }
        ReplyStatus(status);
      }
    } else if (command == "CANCEL") {
      std::optional<SessionId> id = ParseId(&rest);
      if (!id.has_value()) {
        Reply("ERR InvalidArgument: bad session id");
      } else {
        ReplyStatus(service.CancelSession(*id));
      }
    } else if (command == "EVICT") {
      std::string_view name = TakeWord(&rest);
      if (name.empty()) {
        Reply("ERR InvalidArgument: missing document name");
      } else {
        ReplyStatus(service.EvictDocument(name));
      }
    } else if (command == "STATS") {
      xsq::service::StatsSnapshot snap = service.stats();
      std::string text = snap.ToString();
      size_t begin = 0;
      while (begin < text.size()) {
        size_t end = text.find('\n', begin);
        Reply("STAT " + text.substr(begin, end - begin));
        begin = end + 1;
      }
      Reply("OK");
    } else if (command == "METRICS") {
      std::string text = service.MetricsText();
      size_t begin = 0;
      while (begin < text.size()) {
        size_t end = text.find('\n', begin);
        Reply("METRIC " + text.substr(begin, end - begin));
        begin = end + 1;
      }
      Reply("OK");
    } else if (command.empty()) {
      // Blank line: ignore.
      continue;
    } else {
      Reply("ERR InvalidArgument: unknown command '" + std::string(command) +
            "'");
    }
    std::fflush(stdout);
    if (eof_after_line) break;  // EOF mid-line: partial command handled
  }
  service.Shutdown();
  return 0;
}
