// xsqd: the query-service daemon. One process, two transports, one
// protocol:
//
//   stdin/stdout  always on — the whole concurrent stack scriptable
//                 from a shell:
//                   $ printf 'OPEN //book/title/text()\nPUSH 1 <...>\n
//                     CLOSE 1\nQUIT\n' | xsqd
//   TCP           with --listen=PORT — the same line protocol served to
//                 many concurrent connections by net::Server, plus
//                 GET /metrics on the same port for HTTP scrapers.
//
// The protocol itself (verbs, replies, escaping) lives in
// net::LineProtocol; see src/net/line_protocol.h for the grammar. Both
// transports produce byte-identical transcripts for the same commands.
//
// Pub/sub: SUBSCRIBE/UNSUBSCRIBE register standing queries; PUBLISH
// matches a document against all of them in one parse. Matches arrive
// asynchronously as "EVENT <sub-id> ..." lines — on the stdin
// transport they are written to stdout between reply blocks (a mutex
// keeps lines whole); on TCP they are pushed down the subscribing
// connection.
//
// Replication: REPLPULL and REPLSTATUS are the shard-side verbs of the
// router's replication plane — REPLPULL serves a resident tape (or, in
// pull mode, fetches one shard-to-shard and CRC-verifies it on
// ingest), REPLSTATUS inventories resident documents. Grammar in
// src/net/line_protocol.h.
//
// Network behavior (see src/net/server.h): per-connection idle and
// write deadlines, bounded line and output buffers (overrun answers
// ERR and closes), accept-side load shedding at --max-connections or a
// saturated service, and disconnect-driven cancellation — a peer that
// vanishes mid-query has its in-flight evaluations cancelled within
// one engine sampling interval (--cancel-check-events).
//
// Shutdown: SIGTERM or SIGINT begins a graceful drain — the listener
// closes immediately, live connections get --drain-deadline-ms to
// finish, stragglers are cancelled — then the service itself drains
// under the same bound. EOF on stdin exits the same way when no
// listener is active; with --listen the daemon keeps serving sockets
// until a signal arrives.
//
// Flags: --workers=N (default 4), --max-sessions=N,
//        --session-memory-budget=BYTES, --plan-cache=N,
//        --doc-cache=N (0 = unlimited), --doc-cache-bytes=BYTES
//        (0 = unlimited), --slow-query-ms=N (log requests at or above
//        N ms to stderr with their parse/automaton/buffer phase split,
//        and dump per-bucket slow-query exemplars at exit; 0 =
//        disabled), --default-deadline-ms=N (deadline applied to
//        every document request; 0 = none), --drain-deadline-ms=N
//        (bound on the shutdown drain; 0 = wait forever),
//        --max-line-bytes=N (protocol lines above N bytes are rejected
//        with ERR; default 16 MiB), --cancel-check-events=N (engine
//        cancellation sampling interval in SAX events; default 128),
//        --listen=PORT (serve TCP; 0 picks an ephemeral port, printed
//        as "LISTENING <port>"), --max-connections=N (accept-side
//        shedding threshold; default 64), --idle-timeout-ms=N (close
//        idle/half-open connections; 0 = never; default 30000),
//        --max-tape-bytes=N (cap on a serialized tape moved by a
//        REPLPULL shard-to-shard transfer, serve and pull side;
//        oversized fails with ERR LimitExceeded; 0 = unlimited),
//        --replpull-deadline-ms=N (deadline for one REPLPULL fetch
//        from the source peer; default 5000).
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <atomic>
#include <chrono>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

#include "net/line_protocol.h"
#include "net/server.h"
#include "service/query_service.h"

namespace {

using xsq::service::QueryService;
using xsq::service::ServiceConfig;

std::atomic<int> g_signal{0};

void OnSignal(int sig) { g_signal.store(sig, std::memory_order_relaxed); }

// Install without SA_RESTART so a blocking stdin read is interrupted
// and the main loop falls through to the drain path.
void InstallSignalHandlers() {
  struct sigaction action{};
  action.sa_handler = OnSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
}

size_t FlagValue(std::string_view arg, size_t fallback) {
  size_t eq = arg.find('=');
  if (eq == std::string_view::npos) return fallback;
  return static_cast<size_t>(
      std::strtoull(std::string(arg.substr(eq + 1)).c_str(), nullptr, 10));
}

// One bounded read of a protocol line. Unlike std::getline, a hostile
// or broken client cannot make the daemon buffer an unbounded line:
// once `max_bytes` is exceeded the rest of the line is discarded (not
// stored) and the command is rejected, keeping the daemon serving.
enum class LineRead {
  kLine,       // complete line in *line (newline consumed)
  kPartial,    // EOF mid-line: *line holds the final, unterminated command
  kEof,        // EOF with nothing read
  kOversized,  // line exceeded max_bytes; remainder discarded
};

LineRead ReadLineBounded(std::istream& in, size_t max_bytes,
                         std::string* line) {
  line->clear();
  std::streambuf* buf = in.rdbuf();
  constexpr int kEofChar = std::char_traits<char>::eof();
  for (int c = buf->sbumpc();; c = buf->sbumpc()) {
    if (c == kEofChar) {
      return line->empty() ? LineRead::kEof : LineRead::kPartial;
    }
    if (c == '\n') return LineRead::kLine;
    if (line->size() >= max_bytes) {
      // Swallow the rest of the line without storing it.
      while (c != kEofChar && c != '\n') c = buf->sbumpc();
      return LineRead::kOversized;
    }
    line->push_back(static_cast<char>(c));
  }
}

}  // namespace

int main(int argc, char** argv) {
  ServiceConfig config;
  xsq::net::ServerConfig net_config;
  size_t max_line_bytes = 16u << 20;  // 16 MiB
  bool listen = false;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--workers", 0) == 0) {
      config.num_workers = static_cast<int>(FlagValue(arg, 4));
    } else if (arg.rfind("--max-sessions", 0) == 0) {
      config.max_sessions = FlagValue(arg, config.max_sessions);
    } else if (arg.rfind("--session-memory-budget", 0) == 0) {
      config.per_session_memory_budget =
          FlagValue(arg, config.per_session_memory_budget);
    } else if (arg.rfind("--plan-cache", 0) == 0) {
      config.plan_cache_capacity = FlagValue(arg, config.plan_cache_capacity);
    } else if (arg.rfind("--doc-cache-bytes", 0) == 0) {
      config.doc_cache_byte_budget =
          FlagValue(arg, config.doc_cache_byte_budget);
    } else if (arg.rfind("--doc-cache", 0) == 0) {
      config.doc_cache_capacity = FlagValue(arg, config.doc_cache_capacity);
    } else if (arg.rfind("--slow-query-ms", 0) == 0) {
      config.slow_query_ms = FlagValue(arg, config.slow_query_ms);
    } else if (arg.rfind("--default-deadline-ms", 0) == 0) {
      config.default_deadline_ms = FlagValue(arg, config.default_deadline_ms);
    } else if (arg.rfind("--drain-deadline-ms", 0) == 0) {
      config.drain_deadline_ms = FlagValue(arg, config.drain_deadline_ms);
      net_config.drain_deadline_ms = config.drain_deadline_ms;
    } else if (arg.rfind("--max-line-bytes", 0) == 0) {
      max_line_bytes = FlagValue(arg, max_line_bytes);
    } else if (arg.rfind("--cancel-check-events", 0) == 0) {
      config.cancel_check_events = static_cast<uint32_t>(
          FlagValue(arg, config.cancel_check_events));
    } else if (arg.rfind("--listen", 0) == 0) {
      listen = true;
      net_config.port = static_cast<uint16_t>(FlagValue(arg, 0));
    } else if (arg.rfind("--max-connections", 0) == 0) {
      net_config.max_connections =
          FlagValue(arg, net_config.max_connections);
    } else if (arg.rfind("--idle-timeout-ms", 0) == 0) {
      net_config.idle_timeout_ms = FlagValue(arg, net_config.idle_timeout_ms);
    } else if (arg.rfind("--max-tape-bytes", 0) == 0) {
      config.max_tape_bytes = FlagValue(arg, config.max_tape_bytes);
    } else if (arg.rfind("--replpull-deadline-ms", 0) == 0) {
      config.replpull_deadline_ms =
          FlagValue(arg, config.replpull_deadline_ms);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", std::string(arg).c_str());
      return 2;
    }
  }

  QueryService service(config);

  std::unique_ptr<xsq::net::Server> server;
  if (listen) {
    net_config.max_line_bytes = max_line_bytes;
    auto created = xsq::net::Server::Create(&service, net_config);
    if (!created.ok()) {
      std::fprintf(stderr, "listen failed: %s\n",
                   created.status().ToString().c_str());
      return 1;
    }
    server = *std::move(created);
    std::printf("LISTENING %u\n", static_cast<unsigned>(server->port()));
    std::fflush(stdout);
  }
  InstallSignalHandlers();

  xsq::net::LineProtocol protocol(&service);
  // Asynchronous EVENT frames from the service's dispatcher threads
  // share stdout with the reply path; the mutex keeps every line whole.
  std::mutex stdout_mu;
  protocol.SetEventSink([&stdout_mu](std::string_view frame) {
    std::lock_guard<std::mutex> lock(stdout_mu);
    std::fwrite(frame.data(), 1, frame.size(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
  });
  std::string line;
  std::string replies;
  bool quit = false;
  for (;;) {
    if (g_signal.load(std::memory_order_relaxed) != 0) break;
    LineRead read = ReadLineBounded(std::cin, max_line_bytes, &line);
    if (read == LineRead::kEof) break;
    if (read == LineRead::kOversized) {
      // The stdin transport serves one trusted caller: discard the
      // command but keep the conversation (sockets close instead).
      std::string reply =
          xsq::net::LineProtocol::OversizedLineReply(max_line_bytes);
      std::lock_guard<std::mutex> lock(stdout_mu);
      std::fputs(reply.c_str(), stdout);
      std::fputc('\n', stdout);
      std::fflush(stdout);
      continue;
    }
    const bool eof_after_line = read == LineRead::kPartial;
    replies.clear();
    bool keep_going = protocol.HandleLine(line, &replies);
    {
      std::lock_guard<std::mutex> lock(stdout_mu);
      std::fwrite(replies.data(), 1, replies.size(), stdout);
      std::fflush(stdout);
    }
    if (!keep_going) {            // QUIT shuts the whole daemon down
      quit = true;
      break;
    }
    if (eof_after_line) break;    // EOF mid-line: partial command handled
  }

  // With a listener, stdin ending does not end the daemon — sockets are
  // the front door; wait for the drain signal (stdin QUIT still works).
  if (server != nullptr) {
    while (!quit && g_signal.load(std::memory_order_relaxed) == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    server->BeginDrain();
    server->Stop();
  }
  protocol.ReleaseAll();
  service.Shutdown();
  if (config.slow_query_ms > 0) {
    std::string exemplars;
    service.exemplars().RenderComments(&exemplars);
    if (!exemplars.empty()) {
      std::fputs("[xsq] slow-query exemplars:\n", stderr);
      std::fwrite(exemplars.data(), 1, exemplars.size(), stderr);
    }
  }
  return 0;
}
