#!/usr/bin/env bash
# The per-PR verification gate:
#   1. builds the default tree and runs the full tier-1 ctest suite;
#   2. builds a ThreadSanitizer tree and re-runs the suite under TSan so
#      the concurrent service layer is race-checked on every change.
#
# Usage: tools/check.sh [ctest-regex]
#   tools/check.sh              # everything, both builds
#   tools/check.sh Service      # only tests matching 'Service'
# Env: BUILD_DIR (default build), TSAN_BUILD_DIR (default build-tsan),
#      XSQ_SKIP_TSAN=1 to run only the plain build (e.g. no libtsan).
set -eu
cd "$(dirname "$0")/.."

build_dir=${BUILD_DIR:-build}
tsan_dir=${TSAN_BUILD_DIR:-build-tsan}
filter=${1:-}
ctest_args=(--output-on-failure -j "$(nproc)")
if [ -n "$filter" ]; then
  ctest_args+=(-R "$filter")
fi

echo "== plain build ($build_dir)"
cmake -B "$build_dir" -S . >/dev/null
cmake --build "$build_dir" -j "$(nproc)"
(cd "$build_dir" && ctest "${ctest_args[@]}")

if [ "${XSQ_SKIP_TSAN:-0}" = "1" ]; then
  echo "== TSan build skipped (XSQ_SKIP_TSAN=1)"
  exit 0
fi

echo "== ThreadSanitizer build ($tsan_dir)"
cmake -B "$tsan_dir" -S . -DXSQ_SANITIZE=thread >/dev/null
cmake --build "$tsan_dir" -j "$(nproc)"
# halt_on_error turns any reported race into a test failure.
(cd "$tsan_dir" &&
  TSAN_OPTIONS="halt_on_error=1" ctest "${ctest_args[@]}")

echo "check.sh: all green"
