#!/usr/bin/env bash
# The per-PR verification gate:
#   1. builds the default tree and runs the full tier-1 ctest suite;
#   2. builds a ThreadSanitizer tree and re-runs the suite under TSan so
#      the concurrent service layer is race-checked on every change;
#   3. builds an AddressSanitizer tree and re-runs the suite under ASan
#      so the tape subsystem's binary decoding (varints, blob spans,
#      string_views into interned symbols) is overflow- and leak-checked;
#   4. builds an UndefinedBehaviorSanitizer tree and re-runs the suite
#      under UBSan so numeric edge cases (ParseNumber/FormatNumber
#      round-trips, histogram bucket arithmetic, shift-heavy automaton
#      code) are checked for overflow/UB.
#
# Usage: tools/check.sh [ctest-regex]
#   tools/check.sh              # everything, all builds
#   tools/check.sh Service      # only tests matching 'Service'
# Env: BUILD_DIR (default build), TSAN_BUILD_DIR (default build-tsan),
#      ASAN_BUILD_DIR (default build-asan),
#      UBSAN_BUILD_DIR (default build-ubsan),
#      XSQ_SKIP_TSAN=1 to skip the TSan build (e.g. no libtsan),
#      XSQ_SKIP_ASAN=1 to skip the ASan build (e.g. no libasan),
#      XSQ_SKIP_UBSAN=1 to skip the UBSan build (e.g. no libubsan).
set -eu
cd "$(dirname "$0")/.."

build_dir=${BUILD_DIR:-build}
tsan_dir=${TSAN_BUILD_DIR:-build-tsan}
asan_dir=${ASAN_BUILD_DIR:-build-asan}
ubsan_dir=${UBSAN_BUILD_DIR:-build-ubsan}
filter=${1:-}
ctest_args=(--output-on-failure -j "$(nproc)")
if [ -n "$filter" ]; then
  ctest_args+=(-R "$filter")
fi

echo "== plain build ($build_dir)"
cmake -B "$build_dir" -S . >/dev/null
cmake --build "$build_dir" -j "$(nproc)"
(cd "$build_dir" && ctest "${ctest_args[@]}")

if [ "${XSQ_SKIP_TSAN:-0}" = "1" ]; then
  echo "== TSan build skipped (XSQ_SKIP_TSAN=1)"
else
  echo "== ThreadSanitizer build ($tsan_dir)"
  cmake -B "$tsan_dir" -S . -DXSQ_SANITIZE=thread >/dev/null
  cmake --build "$tsan_dir" -j "$(nproc)"
  # halt_on_error turns any reported race into a test failure.
  (cd "$tsan_dir" &&
    TSAN_OPTIONS="halt_on_error=1" ctest "${ctest_args[@]}")
fi

if [ "${XSQ_SKIP_ASAN:-0}" = "1" ]; then
  echo "== ASan build skipped (XSQ_SKIP_ASAN=1)"
else
  echo "== AddressSanitizer build ($asan_dir)"
  cmake -B "$asan_dir" -S . -DXSQ_SANITIZE=address >/dev/null
  cmake --build "$asan_dir" -j "$(nproc)"
  (cd "$asan_dir" &&
    ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" ctest "${ctest_args[@]}")
fi

if [ "${XSQ_SKIP_UBSAN:-0}" = "1" ]; then
  echo "== UBSan build skipped (XSQ_SKIP_UBSAN=1)"
else
  echo "== UndefinedBehaviorSanitizer build ($ubsan_dir)"
  cmake -B "$ubsan_dir" -S . -DXSQ_SANITIZE=undefined >/dev/null
  cmake --build "$ubsan_dir" -j "$(nproc)"
  (cd "$ubsan_dir" &&
    UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" ctest "${ctest_args[@]}")
fi

echo "check.sh: all green"
