#!/usr/bin/env bash
# The per-PR verification gate:
#   1. builds the default tree, runs the full tier-1 ctest suite
#      (including the ext_cluster, ext_replication and ext_router_ha
#      process gates), then the cluster process smoke (forked xsqd
#      shards + xsq_router driven through xsqctl, including SIGKILL
#      failover, an rf=2 kill served entirely from replicas, and a
#      two-router gossip pair where killing router A fails the client
#      over to router B), then builds a
#      -DXSQ_SIMD=OFF tree and runs the scanner differential subset so
#      the scalar/SWAR fallback paths stay event-identical;
#   2. builds a ThreadSanitizer tree and re-runs the suite under TSan so
#      the concurrent service layer is race-checked on every change;
#   3. builds an AddressSanitizer tree and re-runs the suite under ASan
#      so the tape subsystem's binary decoding (varints, blob spans,
#      string_views into interned symbols) is overflow- and leak-checked;
#   4. builds an UndefinedBehaviorSanitizer tree and re-runs the suite
#      under UBSan so numeric edge cases (ParseNumber/FormatNumber
#      round-trips, histogram bucket arithmetic, shift-heavy automaton
#      code) are checked for overflow/UB;
#   5. builds failpoint trees (-DXSQ_FAILPOINTS=ON) under ASan and TSan
#      and runs the fault-injection suite plus the pub/sub fan-out soak
#      with every site armable, so each injected early-return path and
#      the dispatcher's drop/shed paths are leak- and race-checked;
#   6. when clang is on PATH, builds the libFuzzer harnesses
#      (-DXSQ_FUZZ=ON) and runs each target for a bounded stretch over
#      its seed corpus, so the input-facing decoders get continuous
#      coverage-guided probing on every change.
#
# Usage: tools/check.sh [ctest-regex]
#   tools/check.sh              # everything, all builds
#   tools/check.sh Service      # only tests matching 'Service'
# Env: BUILD_DIR (default build), TSAN_BUILD_DIR (default build-tsan),
#      SIMD_OFF_BUILD_DIR (default build-nosimd),
#      XSQ_SKIP_SIMD_OFF=1 to skip the -DXSQ_SIMD=OFF scanner leg,
#      ASAN_BUILD_DIR (default build-asan),
#      UBSAN_BUILD_DIR (default build-ubsan),
#      FP_ASAN_BUILD_DIR (default build-fp-asan),
#      FP_TSAN_BUILD_DIR (default build-fp-tsan),
#      XSQ_SKIP_TSAN=1 to skip the TSan builds (e.g. no libtsan),
#      XSQ_SKIP_ASAN=1 to skip the ASan builds (e.g. no libasan),
#      XSQ_SKIP_UBSAN=1 to skip the UBSan build (e.g. no libubsan),
#      XSQ_SKIP_CLUSTER=1 to skip the cluster process smoke,
#      XSQ_SKIP_FAILPOINTS=1 to skip the failpoint legs,
#      XSQ_SKIP_FUZZ=1 to skip the fuzz leg,
#      FUZZ_BUILD_DIR (default build-fuzz),
#      XSQ_FUZZ_SECONDS per-target fuzz budget (default 30).
set -eu
cd "$(dirname "$0")/.."

build_dir=${BUILD_DIR:-build}
tsan_dir=${TSAN_BUILD_DIR:-build-tsan}
asan_dir=${ASAN_BUILD_DIR:-build-asan}
ubsan_dir=${UBSAN_BUILD_DIR:-build-ubsan}
fp_asan_dir=${FP_ASAN_BUILD_DIR:-build-fp-asan}
fp_tsan_dir=${FP_TSAN_BUILD_DIR:-build-fp-tsan}
filter=${1:-}
ctest_args=(--output-on-failure -j "$(nproc)")
if [ -n "$filter" ]; then
  ctest_args+=(-R "$filter")
fi

echo "== plain build ($build_dir)"
cmake -B "$build_dir" -S . >/dev/null
cmake --build "$build_dir" -j "$(nproc)"
(cd "$build_dir" && ctest "${ctest_args[@]}")

# SIMD-off leg: the scalar/SWAR fallback tree (-DXSQ_SIMD=OFF) must
# produce the same event streams as the vectorized default. Runs the
# scanner differential subset: scan primitives, parser edge cases,
# chunk-split sweeps and the cross-impl corpus differential.
if [ "${XSQ_SKIP_SIMD_OFF:-0}" = "1" ]; then
  echo "== SIMD-off build skipped (XSQ_SKIP_SIMD_OFF=1)"
elif [ -z "$filter" ]; then
  simd_off_dir=${SIMD_OFF_BUILD_DIR:-build-nosimd}
  echo "== SIMD-off build ($simd_off_dir)"
  cmake -B "$simd_off_dir" -S . -DXSQ_SIMD=OFF >/dev/null
  cmake --build "$simd_off_dir" -j "$(nproc)" \
    --target scan_test sax_parser_test parser_edge_test robustness_test
  (cd "$simd_off_dir" &&
    ctest --output-on-failure -j "$(nproc)" \
      -R 'Scan|SaxParser|ParserEdge|ChunkSplit|ExtremeInput')
fi

# Cluster leg: xsqd shards + xsq_router as real processes over TCP,
# driven through xsqctl — a SIGKILL failover on the unreplicated
# cluster, then an rf=2 cluster where a SIGKILL costs zero client
# re-records because replicas hold every tape, then a two-router
# gossip pair where SIGKILLing router A fails xsqctl's --router=A,B
# endpoint list over to router B. (The in-process cluster tests and
# the ext_cluster_smoke / ext_replication_smoke / ext_router_ha_smoke
# bench gates are part of the ctest suite above and rerun under every
# sanitizer tree below.)
if [ "${XSQ_SKIP_CLUSTER:-0}" = "1" ]; then
  echo "== cluster smoke skipped (XSQ_SKIP_CLUSTER=1)"
elif [ -z "$filter" ]; then
  echo "== cluster smoke (3 shards + router)"
  tools/cluster_smoke.sh "$build_dir"/examples/xsqd \
    "$build_dir"/examples/xsq_router "$build_dir"/examples/xsqctl
fi

if [ "${XSQ_SKIP_TSAN:-0}" = "1" ]; then
  echo "== TSan build skipped (XSQ_SKIP_TSAN=1)"
else
  echo "== ThreadSanitizer build ($tsan_dir)"
  cmake -B "$tsan_dir" -S . -DXSQ_SANITIZE=thread >/dev/null
  cmake --build "$tsan_dir" -j "$(nproc)"
  # halt_on_error turns any reported race into a test failure.
  (cd "$tsan_dir" &&
    TSAN_OPTIONS="halt_on_error=1" ctest "${ctest_args[@]}")
fi

if [ "${XSQ_SKIP_ASAN:-0}" = "1" ]; then
  echo "== ASan build skipped (XSQ_SKIP_ASAN=1)"
else
  echo "== AddressSanitizer build ($asan_dir)"
  cmake -B "$asan_dir" -S . -DXSQ_SANITIZE=address >/dev/null
  cmake --build "$asan_dir" -j "$(nproc)"
  (cd "$asan_dir" &&
    ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" ctest "${ctest_args[@]}")
fi

if [ "${XSQ_SKIP_UBSAN:-0}" = "1" ]; then
  echo "== UBSan build skipped (XSQ_SKIP_UBSAN=1)"
else
  echo "== UndefinedBehaviorSanitizer build ($ubsan_dir)"
  cmake -B "$ubsan_dir" -S . -DXSQ_SANITIZE=undefined >/dev/null
  cmake --build "$ubsan_dir" -j "$(nproc)"
  (cd "$ubsan_dir" &&
    UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" ctest "${ctest_args[@]}")
fi

# Failpoint legs: the fault-injection suite only exercises its sites in
# -DXSQ_FAILPOINTS=ON builds (it skips elsewhere), so it gets dedicated
# trees — ASan for leaks on injected early returns, TSan for races in
# the worker pool's failure paths.
if [ "${XSQ_SKIP_FAILPOINTS:-0}" = "1" ]; then
  echo "== failpoint legs skipped (XSQ_SKIP_FAILPOINTS=1)"
else
  # ServicePubSub pulls in the fan-out/shed tests and the
  # 16-subscriber fault-storm soak alongside the failpoint suite;
  # ClusterReplFailPoints arms the replication send site
  # (cluster.repl.fail) and checks the anti-entropy sweep heals the
  # dropped fanouts.
  fp_filter='FaultInjection|FailPoints|ServicePubSub'
  if [ "${XSQ_SKIP_ASAN:-0}" != "1" ]; then
    echo "== failpoints + ASan build ($fp_asan_dir)"
    cmake -B "$fp_asan_dir" -S . -DXSQ_FAILPOINTS=ON \
      -DXSQ_SANITIZE=address >/dev/null
    cmake --build "$fp_asan_dir" -j "$(nproc)" \
      --target fault_injection_test pubsub_test cluster_test
    (cd "$fp_asan_dir" &&
      ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
        ctest --output-on-failure -j "$(nproc)" -R "$fp_filter")
  fi
  if [ "${XSQ_SKIP_TSAN:-0}" != "1" ]; then
    echo "== failpoints + TSan build ($fp_tsan_dir)"
    cmake -B "$fp_tsan_dir" -S . -DXSQ_FAILPOINTS=ON \
      -DXSQ_SANITIZE=thread >/dev/null
    cmake --build "$fp_tsan_dir" -j "$(nproc)" \
      --target fault_injection_test pubsub_test cluster_test
    (cd "$fp_tsan_dir" &&
      TSAN_OPTIONS="halt_on_error=1" \
        ctest --output-on-failure -j "$(nproc)" -R "$fp_filter")
  fi
fi

# Fuzz leg: when clang is available, build the libFuzzer harnesses
# (-DXSQ_FUZZ=ON needs clang) and give each target a bounded run over
# its seed corpus. 30s per target keeps the gate fast while still
# catching shallow regressions in the input-facing decoders.
if [ "${XSQ_SKIP_FUZZ:-0}" = "1" ]; then
  echo "== fuzz leg skipped (XSQ_SKIP_FUZZ=1)"
elif ! command -v clang++ >/dev/null 2>&1; then
  echo "== fuzz leg skipped (no clang++ on PATH)"
else
  fuzz_dir=${FUZZ_BUILD_DIR:-build-fuzz}
  fuzz_seconds=${XSQ_FUZZ_SECONDS:-30}
  echo "== libFuzzer build ($fuzz_dir, ${fuzz_seconds}s per target)"
  cmake -B "$fuzz_dir" -S . -DXSQ_FUZZ=ON \
    -DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++ >/dev/null
  cmake --build "$fuzz_dir" -j "$(nproc)" \
    --target fuzz_sax_parser fuzz_xpath_parser fuzz_tape_load \
      fuzz_subscribe_verb fuzz_gossip_verb
  for target in sax_parser:sax xpath_parser:xpath tape_load:tape \
      subscribe_verb:subscribe gossip_verb:gossip; do
    bin="$fuzz_dir/tests/fuzz/fuzz_${target%%:*}"
    corpus="tests/fuzz/corpus/${target##*:}"
    echo "== fuzz_${target%%:*} over $corpus"
    ASAN_OPTIONS="halt_on_error=1" \
      "$bin" -max_total_time="$fuzz_seconds" -print_final_stats=1 "$corpus"
  done
fi

echo "check.sh: all green"
