#!/usr/bin/env bash
# End-to-end smoke test for the cluster tier as real processes: 3 xsqd
# shards + xsq_router over TCP, driven through xsqctl exactly as a
# client would drive a single node. Covers the placement contract
# (record-then-cached agrees on a shard), the merged STATS/metrics
# view, HTTP probing on the router port, and SIGKILL failover: after a
# shard dies -9, re-recording and re-querying through the router must
# succeed. A second cluster runs with --replication-factor=2 and must
# keep serving every cached read after a SIGKILL with zero client
# re-records. A third cluster runs TWO routers gossiping over --peers:
# after SIGKILL -9 on router A, xsqctl's --router=A,B endpoint list
# must fail over to router B and every cached read must still answer.
# Run by tools/check.sh (cluster leg).
set -u
xsqd=${1:?usage: cluster_smoke.sh /path/to/xsqd /path/to/xsq_router /path/to/xsqctl}
router=${2:?usage: cluster_smoke.sh /path/to/xsqd /path/to/xsq_router /path/to/xsqctl}
xsqctl=${3:?usage: cluster_smoke.sh /path/to/xsqd /path/to/xsq_router /path/to/xsqctl}

workdir=$(mktemp -d)
pids=()
cleanup() {
  for pid in "${pids[@]}"; do kill -TERM "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

# Boot a daemon on an ephemeral port; sets BOOT_PORT from the
# "LISTENING <port>" banner. (Not a command substitution: the launched
# pid must land in the parent shell's pids array.)
boot() { # boot <outfile> <cmd...>
  local out=$1
  shift
  "$@" >"$out" 2>"$out.err" </dev/null &
  pids+=($!)
  for _ in $(seq 1 100); do
    BOOT_PORT=$(sed -n 's/^LISTENING \([0-9]*\)$/\1/p' "$out" 2>/dev/null \
      | head -1)
    if [ -n "$BOOT_PORT" ]; then return 0; fi
    sleep 0.05
  done
  echo "daemon never printed LISTENING: $*" >&2
  cat "$out.err" >&2
  return 1
}

boot "$workdir/s1" "$xsqd" --listen=0 --workers=2 || exit 1
p1=$BOOT_PORT
boot "$workdir/s2" "$xsqd" --listen=0 --workers=2 || exit 1
p2=$BOOT_PORT
boot "$workdir/s3" "$xsqd" --listen=0 --workers=2 || exit 1
p3=$BOOT_PORT
boot "$workdir/r" "$router" --listen=0 \
  --shard=127.0.0.1:"$p1" --shard=127.0.0.1:"$p2" \
  --shard=127.0.0.1:"$p3" --probe-interval-ms=100 \
  --probe-fail-threshold=1 || exit 1
rp=$BOOT_PORT

ctl() { "$xsqctl" --port="$rp" "$@"; }

# Record three documents through the router and read each one back.
for i in 1 2 3; do
  echo "<dblp><article><title>t$i</title></article></dblp>" \
    | ctl record "doc$i" >"$workdir/rec$i" || {
      echo "RECORD doc$i through the router failed" >&2; exit 1; }
done
for i in 1 2 3; do
  got=$(ctl cached "doc$i" '/dblp/article/title/text()')
  expected="ITEM t$i
OK"
  if [ "$got" != "$expected" ]; then
    echo "cached doc$i mismatch: $got" >&2
    exit 1
  fi
done

# The merged STATS view must count the cluster's sessions, and the
# router's own HTTP surface must serve /metrics with both the merged
# shard series and the router's section.
stats=$(ctl stats)
case $stats in
  *"STAT sessions_opened"*) ;;
  *) echo "merged STATS missing sessions_opened: $stats" >&2; exit 1 ;;
esac
metrics=$(ctl http-metrics)
for want in xsq_sessions_opened xsq_router_requests_total \
    xsq_router_shards_serving; do
  case $metrics in
    *"$want"*) ;;
    *) echo "router /metrics missing $want" >&2; exit 1 ;;
  esac
done

# SIGKILL one shard: the cluster must keep answering. Idempotent
# re-records fail over to a live owner; the prober (100ms interval,
# threshold 1) remaps the dead shard's keys.
kill -9 "${pids[0]}"
sleep 0.4
for i in 1 2 3; do
  echo "<dblp><article><title>t$i</title></article></dblp>" \
    | ctl record "doc$i" >/dev/null || {
      echo "post-kill RECORD doc$i failed" >&2; exit 1; }
  got=$(ctl cached "doc$i" '/dblp/article/title/text()')
  expected="ITEM t$i
OK"
  if [ "$got" != "$expected" ]; then
    echo "post-kill cached doc$i mismatch: $got" >&2
    exit 1
  fi
done
metrics=$(ctl http-metrics)
case $metrics in
  *"xsq_router_shards_dead 1"*) ;;
  *) echo "router /metrics did not report the dead shard" >&2; exit 1 ;;
esac

# --- Replication (rf=2): kill a shard, serve from replicas ------------
# A fresh 3-shard cluster with --replication-factor=2: every RECORD
# fans its tape to a second ring owner, so a SIGKILLed shard costs
# ZERO client re-records — every cached read below succeeds without a
# single RECORD after the kill.
boot "$workdir/t1" "$xsqd" --listen=0 --workers=2 || exit 1
q1=$BOOT_PORT
boot "$workdir/t2" "$xsqd" --listen=0 --workers=2 || exit 1
q2=$BOOT_PORT
boot "$workdir/t3" "$xsqd" --listen=0 --workers=2 || exit 1
q3=$BOOT_PORT
boot "$workdir/rr" "$router" --listen=0 \
  --shard=127.0.0.1:"$q1" --shard=127.0.0.1:"$q2" \
  --shard=127.0.0.1:"$q3" --replication-factor=2 \
  --probe-interval-ms=100 --probe-fail-threshold=1 || exit 1
rrp=$BOOT_PORT
ctl2() { "$xsqctl" --port="$rrp" "$@"; }

for i in 1 2 3 4 5 6; do
  echo "<dblp><article><title>r$i</title></article></dblp>" \
    | ctl2 record "rdoc$i" >/dev/null || {
      echo "rf=2 RECORD rdoc$i through the router failed" >&2; exit 1; }
done
# Wait for the fanout queue to drain: REPLSTATUS reports pending=0.
repl=""
for _ in $(seq 1 100); do
  repl=$(ctl2 raw REPLSTATUS)
  case $repl in *" pending=0 "*) break ;; esac
  sleep 0.05
done
case $repl in
  *" pending=0 "*) ;;
  *) echo "replication queue never drained: $repl" >&2; exit 1 ;;
esac

kill -9 "${pids[4]}"
sleep 0.4  # one probe pass (100ms, threshold 1) remaps + starts the sweep
for i in 1 2 3 4 5 6; do
  got=$(ctl2 cached "rdoc$i" '/dblp/article/title/text()')
  expected="ITEM r$i
OK"
  if [ "$got" != "$expected" ]; then
    echo "replicated read rdoc$i after SIGKILL mismatch: $got" >&2
    exit 1
  fi
done

# --- Router HA (two gossiping routers, client failover) ---------------
# Two routers over the SAME two shards, each listing the other in
# --peers so membership gossip runs both ways. RECORDs flow in through
# router A; after SIGKILL -9 on A, the client's --router=A,B endpoint
# list must fail over to B, which serves every cached read (both
# routers computed the same ring, and the key index gossiped across).
# Gossip needs both routers to know the other's port up front, so the
# pair listens on pre-picked ports instead of --listen=0 (with a retry
# loop in case a picked port is taken).
pick_port() { echo $(( (RANDOM % 20000) + 20000 )); }
boot "$workdir/h1" "$xsqd" --listen=0 --workers=2 || exit 1
h1=$BOOT_PORT
boot "$workdir/h2" "$xsqd" --listen=0 --workers=2 || exit 1
h2=$BOOT_PORT
ha_ok=0
for attempt in 1 2 3 4 5; do
  pa=$(pick_port)
  pb=$(pick_port)
  [ "$pa" = "$pb" ] && continue
  boot "$workdir/ra$attempt" "$router" --listen="$pa" \
    --shard=127.0.0.1:"$h1" --shard=127.0.0.1:"$h2" \
    --peers=127.0.0.1:"$pb" --gossip-interval-ms=100 \
    --probe-interval-ms=100 --probe-fail-threshold=1 || continue
  ra_pid=${pids[${#pids[@]}-1]}
  boot "$workdir/rb$attempt" "$router" --listen="$pb" \
    --shard=127.0.0.1:"$h1" --shard=127.0.0.1:"$h2" \
    --peers=127.0.0.1:"$pa" --gossip-interval-ms=100 \
    --probe-interval-ms=100 --probe-fail-threshold=1 || continue
  ha_ok=1
  break
done
if [ "$ha_ok" != 1 ]; then
  echo "could not boot the two-router pair on picked ports" >&2
  exit 1
fi
ctlha() { "$xsqctl" --router=127.0.0.1:"$pa",127.0.0.1:"$pb" "$@"; }

for i in 1 2 3; do
  echo "<dblp><article><title>h$i</title></article></dblp>" \
    | ctlha record "hdoc$i" >/dev/null || {
      echo "HA RECORD hdoc$i through router A failed" >&2; exit 1; }
done
sleep 0.4  # a few 100ms gossip rounds carry the key index to router B

kill -9 "$ra_pid"
for i in 1 2 3; do
  got=$(ctlha cached "hdoc$i" '/dblp/article/title/text()')
  expected="ITEM h$i
OK"
  if [ "$got" != "$expected" ]; then
    echo "HA failover cached hdoc$i mismatch: $got" >&2
    exit 1
  fi
done
# The survivor's own metrics must expose the gossip counters and note
# the dead peer once its exchanges start failing.
metrics=""
for _ in $(seq 1 100); do
  metrics=$("$xsqctl" --port="$pb" http-metrics)
  case $metrics in *"xsq_router_gossip_peer_down_total 1"*) break ;; esac
  sleep 0.05
done
for want in xsq_router_gossip_rounds_total xsq_router_gossip_merges_total \
    "xsq_router_gossip_peer_down_total 1"; do
  case $metrics in
    *"$want"*) ;;
    *) echo "survivor /metrics missing $want" >&2; exit 1 ;;
  esac
done

echo "cluster_smoke: all green"
