#!/usr/bin/env bash
# Regenerates every table/figure of the paper plus the extension
# experiments, writing one .txt per binary into results/ (override with
# $1). Scale corpora with XSQ_BENCH_SCALE (default 1; 16 approximates
# the paper's real dataset sizes).
set -u
cd "$(dirname "$0")/.."
build_dir=${BUILD_DIR:-build}
out_dir=${1:-results}
mkdir -p "$out_dir"

if [ ! -d "$build_dir/bench" ]; then
  echo "error: build first: cmake -B $build_dir -G Ninja && cmake --build $build_dir" >&2
  exit 1
fi

status=0
for bench in "$build_dir"/bench/fig* "$build_dir"/bench/ext_*; do
  name=$(basename "$bench")
  echo "== $name"
  if ! "$bench" > "$out_dir/$name.txt" 2>&1; then
    echo "   FAILED (see $out_dir/$name.txt)" >&2
    status=1
  fi
done

echo "== micro_benchmarks"
"$build_dir/bench/micro_benchmarks" \
    > "$out_dir/micro_benchmarks.txt" 2>&1 || status=1

echo "results written to $out_dir/"
exit $status
