#!/usr/bin/env bash
# End-to-end smoke test for the xsqd daemon's line protocol, run by
# ctest (example_xsqd_smoke). Drives OPEN/PUSH/CLOSE/STATS/METRICS
# through a pipe and diffs the exact responses; the expected ITEM lines
# are what StreamingQuery produces for the same query+document, so this
# pins the daemon to the library's results. The METRICS block also pins
# the exposition names of the serving-path histograms.
set -u
xsqd=${1:?usage: xsqd_smoke.sh /path/to/xsqd}

actual=$("$xsqd" --workers=2 <<'EOF'
OPEN //book[price<20]/title/text()
PUSH 1 <catalog><book><title>Cheap</title><price>10</price></book>
PUSH 1 <book><title>Pricey</title><price>99</price></book></catalog>
CLOSE 1
OPEN /r/x/sum()
PUSH 2 <r><x>1</x><x>2.5</x></r>
CLOSE 2
DRAIN 99
QUIT
EOF
) || { echo "xsqd exited non-zero" >&2; exit 1; }

expected='OK 1
OK
OK
ITEM Cheap
OK
OK 2
OK
AGG 3.500000
OK
ERR InvalidArgument: unknown session id 99
OK'

if [ "$actual" != "$expected" ]; then
  echo "xsqd protocol output mismatch" >&2
  diff <(echo "$expected") <(echo "$actual") >&2
  exit 1
fi

# A malformed query must answer ERR, not kill the daemon.
bad=$(printf 'OPEN not a query\nQUIT\n' | "$xsqd" --workers=1)
case $bad in
  "ERR "*) ;;
  *) echo "expected ERR for a malformed query, got: $bad" >&2; exit 1 ;;
esac

# STATS must report the work done and be line-parseable.
stats=$("$xsqd" --workers=1 <<'EOF'
OPEN //a/text()
PUSH 1 <a>hi</a>
CLOSE 1
STATS
QUIT
EOF
)
for key in sessions_opened chunks_processed items_emitted plan_cache_misses; do
  if ! echo "$stats" | grep -q "^STAT $key "; then
    echo "STATS output missing '$key':" >&2
    echo "$stats" >&2
    exit 1
  fi
done
if ! echo "$stats" | grep -q "^STAT items_emitted 1$"; then
  echo "expected exactly one emitted item in STATS:" >&2
  echo "$stats" >&2
  exit 1
fi

# Cached-document serving: RECORD parses once, RUNCACHED replays the
# tape (twice, same session, auto-rewind), EVICT drops it.
cached=$("$xsqd" --workers=2 <<'EOF'
RECORD doc <r><item>one</item><item>two</item></r>
OPEN //item/text()
RUNCACHED 1 doc
RUNCACHED 1 doc
RUNCACHED 1 missing
EVICT doc
RUNCACHED 1 doc
EVICT doc
STATS
QUIT
EOF
) || { echo "xsqd exited non-zero in cached-serving block" >&2; exit 1; }

# RECORD answers "OK <events> <bytes>"; the event count is pinned by the
# document (docbegin + 3 begin + 3 end + 2 text + docend), the byte
# count is an implementation detail.
record_line=$(echo "$cached" | head -1)
case $record_line in
  "OK 10 "*) ;;
  *) echo "unexpected RECORD reply: $record_line" >&2; exit 1 ;;
esac

cached_expected='OK 1
ITEM one
ITEM two
OK
ITEM one
ITEM two
OK
ERR InvalidArgument: document not recorded: missing
OK
ERR InvalidArgument: document not recorded: doc
ERR InvalidArgument: document not recorded: doc'
cached_actual=$(echo "$cached" | sed -n '2,12p')
if [ "$cached_actual" != "$cached_expected" ]; then
  echo "cached-serving protocol output mismatch" >&2
  diff <(echo "$cached_expected") <(echo "$cached_actual") >&2
  exit 1
fi

# The document-cache counters must reflect the runs above: two replay
# hits, two misses (the RUNCACHEDs after eviction/for an unknown name),
# nothing left resident after EVICT.
for want in "doc_cache_hits 2" "doc_cache_misses 2" "doc_cache_documents 0" \
            "tape_replays 2"; do
  if ! echo "$cached" | grep -q "^STAT $want$"; then
    echo "STATS cache counters wrong; wanted 'STAT $want' in:" >&2
    echo "$cached" | grep "^STAT" >&2
    exit 1
  fi
done
# METRICS must expose the serving-path histograms with non-zero counts
# after a query has run. The names are part of the daemon's interface —
# dashboards scrape them — so this pins them exactly.
metrics=$("$xsqd" --workers=1 <<'EOF'
OPEN //a/text()
PUSH 1 <r><a>hi</a><a>ho</a></r>
CLOSE 1
METRICS
QUIT
EOF
) || { echo "xsqd exited non-zero in METRICS block" >&2; exit 1; }

# Wall-clock histograms populate in every build; the phase histograms
# additionally need the XSQ_OBS hooks compiled in (xsq_obs_enabled 1).
hists="xsq_request_latency_us xsq_queue_wait_us xsq_chunk_latency_us"
if echo "$metrics" | grep -q "^METRIC xsq_obs_enabled 1$"; then
  hists="$hists xsq_phase_parse_us xsq_phase_automaton_us xsq_phase_buffer_us"
fi
for hist in $hists; do
  count=$(echo "$metrics" | sed -n "s/^METRIC ${hist}_count //p")
  if [ -z "$count" ] || [ "$count" -eq 0 ]; then
    echo "METRICS: expected non-zero ${hist}_count, got '${count:-missing}':" >&2
    echo "$metrics" | grep "^METRIC" | grep "_count" >&2
    exit 1
  fi
done
# Scalars from STATS must be re-exposed with the xsq_ prefix.
if ! echo "$metrics" | grep -q "^METRIC xsq_sessions_opened 1$"; then
  echo "METRICS: missing 'xsq_sessions_opened 1' scalar:" >&2
  echo "$metrics" | grep "^METRIC xsq_" | head -20 >&2
  exit 1
fi
# The latency histograms are additionally split by engine kind:
# //a/text() has a closure axis, so it ran on XSQ-F and the labeled
# series must carry the sample (the names+labels are dashboard
# interface, pinned exactly).
for labeled in 'xsq_request_latency_us_count{engine="f"} 1' \
               'xsq_chunk_latency_us_count{engine="f"} 1'; do
  if ! echo "$metrics" | grep -qF "METRIC $labeled"; then
    echo "METRICS: missing engine-labeled series '$labeled':" >&2
    echo "$metrics" | grep "engine=" >&2
    exit 1
  fi
done
# Slow-query exemplars: the slowest query per latency bucket rides
# along as comment lines, carrying the query text.
if ! echo "$metrics" | grep -q '^METRIC # exemplar xsq_request_latency_us bucket{le="'; then
  echo "METRICS: missing slow-query exemplar comments:" >&2
  echo "$metrics" | grep "exemplar" >&2
  exit 1
fi
if ! echo "$metrics" | grep '^METRIC # exemplar' | grep -qF '//a/text()'; then
  echo "METRICS: exemplar comment does not carry the query text:" >&2
  echo "$metrics" | grep "exemplar" >&2
  exit 1
fi
# Net counters are part of the exposition even with no --listen.
if ! echo "$metrics" | grep -q "^METRIC xsq_connections_accepted 0$"; then
  echo "METRICS: missing 'xsq_connections_accepted 0' scalar:" >&2
  echo "$metrics" | grep "^METRIC xsq_conn" >&2
  exit 1
fi

# With --slow-query-ms active, the daemon dumps the per-bucket
# slow-query exemplars to stderr at exit (the offline twin of the
# METRICS comments).
slow=$(printf 'OPEN //a/text()\nPUSH 1 <r><a>hi</a></r>\nCLOSE 1\nQUIT\n' \
       | "$xsqd" --workers=1 --slow-query-ms=10000 2>&1 >/dev/null)
if ! echo "$slow" | grep -q '^\[xsq\] slow-query exemplars:$'; then
  echo "--slow-query-ms: missing exemplar dump header on stderr:" >&2
  echo "$slow" >&2
  exit 1
fi
if ! echo "$slow" | grep '^# exemplar' | grep -qF '//a/text()'; then
  echo "--slow-query-ms: exemplar dump does not carry the query:" >&2
  echo "$slow" >&2
  exit 1
fi

# --- networking: the same protocol served over TCP ---

# --listen=0 picks an ephemeral port and prints it; drive one query
# through the socket and scrape GET /metrics over HTTP from the same
# port, then shut down with SIGTERM (graceful drain, exit 0).
if command -v python3 >/dev/null 2>&1; then
  tcp_out=$(mktemp)
  "$xsqd" --workers=2 --listen=0 > "$tcp_out" < /dev/null &
  xsqd_pid=$!
  port=""
  for _ in $(seq 1 100); do
    port=$(sed -n 's/^LISTENING //p' "$tcp_out")
    [ -n "$port" ] && break
    sleep 0.05
  done
  if [ -z "$port" ]; then
    echo "--listen=0 never printed LISTENING <port>" >&2
    kill "$xsqd_pid" 2>/dev/null
    exit 1
  fi
  socket_reply=$(python3 - "$port" <<'PYEOF'
import socket, sys
s = socket.create_connection(("127.0.0.1", int(sys.argv[1])), timeout=5)
s.sendall(b"OPEN //a/text()\nPUSH 1 <r><a>tcp</a></r>\nCLOSE 1\nQUIT\n")
data = b""
while True:
    chunk = s.recv(4096)
    if not chunk:
        break
    data += chunk
sys.stdout.write(data.decode())
PYEOF
)
  tcp_expected='OK 1
OK
ITEM tcp
OK
OK'
  if [ "$socket_reply" != "$tcp_expected" ]; then
    echo "TCP transcript mismatch" >&2
    diff <(echo "$tcp_expected") <(echo "$socket_reply") >&2
    kill "$xsqd_pid" 2>/dev/null
    exit 1
  fi
  http_body=$(python3 - "$port" <<'PYEOF'
import socket, sys
s = socket.create_connection(("127.0.0.1", int(sys.argv[1])), timeout=5)
s.sendall(b"GET /metrics HTTP/1.0\r\n\r\n")
data = b""
while True:
    chunk = s.recv(4096)
    if not chunk:
        break
    data += chunk
head, _, body = data.partition(b"\r\n\r\n")
if not head.startswith(b"HTTP/1.0 200"):
    sys.stderr.write("bad status: %r\n" % head.split(b"\r\n")[0])
    sys.exit(1)
sys.stdout.write(body.decode())
PYEOF
) || { echo "GET /metrics scrape failed" >&2; kill "$xsqd_pid" 2>/dev/null; exit 1; }
  for want in "xsq_request_latency_us_count" "xsq_connections_accepted"; do
    if ! echo "$http_body" | grep -q "^$want"; then
      echo "GET /metrics body missing '$want':" >&2
      echo "$http_body" | head -20 >&2
      kill "$xsqd_pid" 2>/dev/null
      exit 1
    fi
  done
  kill -TERM "$xsqd_pid"
  wait "$xsqd_pid"
  term_status=$?
  if [ "$term_status" -ne 0 ]; then
    echo "SIGTERM drain: expected exit 0, got $term_status" >&2
    exit 1
  fi
  rm -f "$tcp_out"
fi

# --- pub/sub: standing queries matched per single parse ---

# SUBSCRIBE registers standing queries, PUBLISH matches one document
# against all of them (the reply pins the parse-once bookkeeping:
# survivors/hpdt count predicate work, both 0 for predicate-free subs),
# and matches arrive asynchronously as EVENT frames — hence the sleep
# before STATS/QUIT, which gives the dispatcher time to deliver.
ps=$( { printf 'SUBSCRIBE //book/title/text()\nSUBSCRIBE //book/count()\n'
        printf 'PUBLISH <lib><book><title>XSQ</title></book><book><title>YFilter</title></book></lib>\n'
        sleep 0.5
        printf 'UNSUBSCRIBE 1\nSTATS\nMETRICS\nQUIT\n'
      } | "$xsqd" --workers=1 ) \
  || { echo "xsqd exited non-zero in pub/sub block" >&2; exit 1; }
if ! echo "$ps" | grep -q "^OK matched=2 survivors=0 hpdt=0 enqueued=3 shed=0$"; then
  echo "pub/sub: unexpected PUBLISH reply:" >&2
  echo "$ps" | grep -v "^STAT\|^METRIC" >&2
  exit 1
fi
for frame in "EVENT 1 ITEM XSQ" "EVENT 1 ITEM YFilter" "EVENT 2 AGG 2.000000"; do
  if ! echo "$ps" | grep -qF "$frame"; then
    echo "pub/sub: missing frame '$frame':" >&2
    echo "$ps" | grep -v "^STAT\|^METRIC" >&2
    exit 1
  fi
done
# STATS gauges/counters after one publish, three deliveries, and one
# unsubscribe (the count() subscription is still standing).
for want in "subscriptions_active 1" "publishes 1" "events_delivered 3" \
            "fanout_shed 0"; do
  if ! echo "$ps" | grep -q "^STAT $want$"; then
    echo "pub/sub: expected 'STAT $want':" >&2
    echo "$ps" | grep "^STAT" >&2
    exit 1
  fi
done
# The same scalars re-exposed with the xsq_ prefix, plus the pub/sub
# histograms (names are dashboard interface, pinned exactly).
for want in "xsq_subscriptions_active 1" "xsq_publishes 1" \
            "xsq_events_delivered 3" "xsq_fanout_shed 0" \
            "xsq_publish_latency_us_count 1"; do
  if ! echo "$ps" | grep -q "^METRIC $want$"; then
    echo "pub/sub: expected 'METRIC $want':" >&2
    echo "$ps" | grep "^METRIC xsq_pub\|^METRIC xsq_sub\|^METRIC xsq_event\|^METRIC xsq_fanout" >&2
    exit 1
  fi
done
batches=$(echo "$ps" | sed -n 's/^METRIC xsq_fanout_batch_count //p')
if [ -z "$batches" ] || [ "$batches" -eq 0 ]; then
  echo "pub/sub: expected non-zero xsq_fanout_batch_count, got '${batches:-missing}'" >&2
  exit 1
fi

# --- robustness: malformed input must never abort the daemon ---

# Unknown verbs and bad session ids answer ERR and the loop keeps
# serving; EOF in the middle of the final line (no trailing newline
# after CLOSE 1) still processes that command, then exits 0.
mal=$(printf "FROB\nPUSH x <a/>\nCANCEL notanid\nOPEN //a/text()\nPUSH 1 <a>hi</a>\nCLOSE 1" | "$xsqd" --workers=1)
if [ $? -ne 0 ]; then
  echo "xsqd exited non-zero on malformed input" >&2; exit 1
fi
mal_expected="ERR InvalidArgument: unknown command 'FROB'
ERR InvalidArgument: bad session id
ERR InvalidArgument: bad session id
OK 1
OK
ITEM hi
OK"
if [ "$mal" != "$mal_expected" ]; then
  echo "malformed-input transcript mismatch" >&2
  diff <(echo "$mal_expected") <(echo "$mal") >&2
  exit 1
fi

# An oversized protocol line is rejected with ERR and discarded without
# buffering it; the commands after it are served normally.
junk=$(printf 'J%.0s' $(seq 1 200))
over=$(printf 'OPEN //a/text()\n%s\nPUSH 1 <a>hi</a>\nCLOSE 1\nQUIT\n' "$junk" \
       | "$xsqd" --workers=1 --max-line-bytes=32) \
  || { echo "xsqd exited non-zero on oversized line" >&2; exit 1; }
over_expected='OK 1
ERR LimitExceeded: line exceeds --max-line-bytes=32; command discarded
OK
ITEM hi
OK
OK'
if [ "$over" != "$over_expected" ]; then
  echo "oversized-line transcript mismatch" >&2
  diff <(echo "$over_expected") <(echo "$over") >&2
  exit 1
fi

# CANCEL fails the session's evaluation with kCancelled; the failure is
# counted in STATS and re-exposed as an xsq_ metric scalar.
cx=$("$xsqd" --workers=1 <<'EOF'
OPEN //a/text()
PUSH 1 <r><a>hi</a>
CANCEL 1
CLOSE 1
STATS
METRICS
QUIT
EOF
) || { echo "xsqd exited non-zero in CANCEL block" >&2; exit 1; }
if ! echo "$cx" | grep -q "^ERR Cancelled"; then
  echo "CANCEL: expected an 'ERR Cancelled' reply from CLOSE:" >&2
  echo "$cx" | grep -v "^STAT\|^METRIC" >&2
  exit 1
fi
if ! echo "$cx" | grep -q "^STAT cancelled 1$"; then
  echo "CANCEL: expected 'STAT cancelled 1':" >&2
  echo "$cx" | grep "^STAT" >&2
  exit 1
fi
if ! echo "$cx" | grep -q "^METRIC xsq_cancelled 1$"; then
  echo "CANCEL: expected 'METRIC xsq_cancelled 1':" >&2
  echo "$cx" | grep "^METRIC xsq_" >&2
  exit 1
fi

# --default-deadline-ms: a document still evaluating when the deadline
# expires fails with kDeadlineExceeded at the next chunk boundary.
dl=$( { printf 'OPEN //a/text()\nPUSH 1 <r><a>hi</a>\n'
        sleep 0.4
        printf 'CLOSE 1\nSTATS\nQUIT\n'
      } | "$xsqd" --workers=1 --default-deadline-ms=50 ) \
  || { echo "xsqd exited non-zero in deadline block" >&2; exit 1; }
if ! echo "$dl" | grep -q "^ERR DeadlineExceeded"; then
  echo "deadline: expected an 'ERR DeadlineExceeded' reply from CLOSE:" >&2
  echo "$dl" | grep -v "^STAT" >&2
  exit 1
fi
if ! echo "$dl" | grep -q "^STAT deadline_exceeded 1$"; then
  echo "deadline: expected 'STAT deadline_exceeded 1':" >&2
  echo "$dl" | grep "^STAT" >&2
  exit 1
fi

# Parser hardening: the Serving limits reject a hostile document (here
# 5000-deep nesting) with kLimitExceeded, counted in limit_rejected.
# tape_corrupt is pinned present (and zero: xsqd records tapes in
# memory, it never loads untrusted tape files).
deep=$(printf '<a>%.0s' $(seq 1 5000))
lim=$("$xsqd" --workers=1 <<EOF
OPEN //a/text()
PUSH 1 $deep
CLOSE 1
STATS
QUIT
EOF
) || { echo "xsqd exited non-zero in parser-limits block" >&2; exit 1; }
if ! echo "$lim" | grep -q "^ERR LimitExceeded"; then
  echo "limits: expected an 'ERR LimitExceeded' reply:" >&2
  echo "$lim" | grep -v "^STAT" >&2
  exit 1
fi
for want in "limit_rejected 1" "tape_corrupt 0"; do
  if ! echo "$lim" | grep -q "^STAT $want$"; then
    echo "limits: expected 'STAT $want':" >&2
    echo "$lim" | grep "^STAT" >&2
    exit 1
  fi
done

echo "xsqd smoke OK"
