#!/usr/bin/env bash
# End-to-end smoke test for the xsqd daemon's line protocol, run by
# ctest (example_xsqd_smoke). Drives OPEN/PUSH/CLOSE/STATS through a
# pipe and diffs the exact responses; the expected ITEM lines are what
# StreamingQuery produces for the same query+document, so this pins the
# daemon to the library's results.
set -u
xsqd=${1:?usage: xsqd_smoke.sh /path/to/xsqd}

actual=$("$xsqd" --workers=2 <<'EOF'
OPEN //book[price<20]/title/text()
PUSH 1 <catalog><book><title>Cheap</title><price>10</price></book>
PUSH 1 <book><title>Pricey</title><price>99</price></book></catalog>
CLOSE 1
OPEN /r/x/sum()
PUSH 2 <r><x>1</x><x>2.5</x></r>
CLOSE 2
DRAIN 99
QUIT
EOF
) || { echo "xsqd exited non-zero" >&2; exit 1; }

expected='OK 1
OK
OK
ITEM Cheap
OK
OK 2
OK
AGG 3.500000
OK
ERR InvalidArgument: unknown session id 99
OK'

if [ "$actual" != "$expected" ]; then
  echo "xsqd protocol output mismatch" >&2
  diff <(echo "$expected") <(echo "$actual") >&2
  exit 1
fi

# A malformed query must answer ERR, not kill the daemon.
bad=$(printf 'OPEN not a query\nQUIT\n' | "$xsqd" --workers=1)
case $bad in
  "ERR "*) ;;
  *) echo "expected ERR for a malformed query, got: $bad" >&2; exit 1 ;;
esac

# STATS must report the work done and be line-parseable.
stats=$("$xsqd" --workers=1 <<'EOF'
OPEN //a/text()
PUSH 1 <a>hi</a>
CLOSE 1
STATS
QUIT
EOF
)
for key in sessions_opened chunks_processed items_emitted plan_cache_misses; do
  if ! echo "$stats" | grep -q "^STAT $key "; then
    echo "STATS output missing '$key':" >&2
    echo "$stats" >&2
    exit 1
  fi
done
if ! echo "$stats" | grep -q "^STAT items_emitted 1$"; then
  echo "expected exactly one emitted item in STATS:" >&2
  echo "$stats" >&2
  exit 1
fi
echo "xsqd smoke OK"
